"""Table 7: weak-ordering runtime statistics.

Times the weak-ordering sweep and checks the paper's §4 non-result: the
run-time difference vs sequential consistency is under 1% for every
program, write-hit ratios are high everywhere (the reason bypassing has
so little to chew on), and the contended programs see no benefit at all.
"""

from repro.core.report import render_table7
from repro.workloads.registry import BENCHMARK_ORDER

from .conftest import save_table


def test_table7_runtime_weak(benchmark, cache, output_dir):
    def sweep():
        return {p: cache.run_fresh(p, "queuing", "wo") for p in BENCHMARK_ORDER}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for p, r in results.items():
        cache._runs.setdefault((p, "queuing", "wo"), r)

    sc = [cache.simulate(p, "queuing", "sc") for p in BENCHMARK_ORDER]
    wo = [results[p] for p in BENCHMARK_ORDER]
    text = render_table7(sc, wo)
    save_table(output_dir, "table7_runtime_weak", text)

    for p in BENCHMARK_ORDER:
        s = cache.simulate(p, "queuing", "sc")
        w = results[p]
        diff = (s.run_time - w.run_time) / s.run_time
        # paper: 0.02% to 0.31%, all under 1%
        assert abs(diff) < 0.01, (p, diff)
        # utilization essentially unchanged (the per-processor average
        # moves a touch more than the run-time because WO redistributes
        # stalls across processors)
        assert abs(s.avg_utilization - w.avg_utilization) < 0.05, p

    # write-hit ratios high everywhere (paper: 90.5-99.0%)
    for p in BENCHMARK_ORDER:
        assert results[p].write_hit_ratio > 0.85, p

    # qsort: reads dominate misses, so WO gains ~nothing despite its low
    # utilization (the paper's 'surprisingly low' 0.02%)
    q = results["qsort"]
    assert q.read_misses > 5 * q.write_misses

    # weak ordering actually exercised its machinery: the drains happened
    assert sum(results[p].meta["drains"] for p in BENCHMARK_ORDER) > 0
