"""Table 8: weak-ordering lock contention statistics.

The paper's point: comparing Table 8 with Table 4, "there is no
significant difference in the patterns of locking using the two memory
models".  We assert exactly that, plus the §4.2 buffer observation.
"""

from repro.core.contention import contention_row
from repro.core.report import render_contention_table
from repro.workloads.registry import LOCKING_BENCHMARKS

from .conftest import save_table


def test_table8_contention_weak(benchmark, cache, output_dir):
    results = {p: cache.simulate(p, "queuing", "wo") for p in LOCKING_BENCHMARKS}
    sc = {p: cache.simulate(p, "queuing", "sc") for p in LOCKING_BENCHMARKS}

    def assemble():
        return {p: contention_row(results[p]) for p in LOCKING_BENCHMARKS}

    rows = benchmark.pedantic(assemble, rounds=1, iterations=1)
    text = render_contention_table(
        [results[p] for p in LOCKING_BENCHMARKS], 8, "Weak Ordering"
    )
    save_table(output_dir, "table8_contention_weak", text)

    for p in LOCKING_BENCHMARKS:
        wo_row = rows[p]
        sc_row = contention_row(sc[p])
        # waiters at transfer within 1 of the SC value (paper: 5.19 vs
        # 5.25, 6.18 vs 6.26, ...)
        assert abs(wo_row.waiters_at_transfer - sc_row.waiters_at_transfer) < 1.0, p
        # transfer counts within 15% for the programs with real transfer
        # traffic (below ~100 transfers the relative measure is noise;
        # the paper's own qsort moves 180 -> 151 between Tables 4 and 8)
        if sc_row.transfers >= 100:
            rel = abs(wo_row.transfers - sc_row.transfers) / sc_row.transfers
            assert rel < 0.15, (p, rel)
        else:
            assert abs(wo_row.transfers - sc_row.transfers) <= 20, p
        # hold times within 20%
        if sc_row.time_held:
            rel = abs(wo_row.time_held - sc_row.time_held) / sc_row.time_held
            assert rel < 0.2, (p, rel)

    # §4.2: drains at sync points are nearly free
    for p in LOCKING_BENCHMARKS:
        r = results[p]
        drain = sum(m.stall_drain for m in r.proc_metrics)
        total = sum(m.completion_time for m in r.proc_metrics)
        assert drain / total < 0.01, (p, drain / total)
