"""Extension: the consistency spectrum SC -> TSO -> WO.

The paper measures the endpoints (sequential consistency, weak
ordering) and finds <1% between them on this shared-bus machine.  That
implies the commercially dominant middle point -- total store ordering,
which buffers stores FIFO and needs no synchronization drain -- should
be indistinguishable from both.  This benchmark measures all three
models on the suite and checks the implication.
"""

from repro.consistency import get_model
from repro.machine.config import MachineConfig
from repro.machine.system import System
from repro.sync import get_lock_manager
from repro.workloads.registry import BENCHMARK_ORDER

from .conftest import save_table

MODELS = ["sc", "tso", "wo"]


def test_extension_consistency_spectrum(benchmark, cache, output_dir):
    def sweep():
        out = {}
        for p in BENCHMARK_ORDER:
            ts = cache.trace(p)
            for m in MODELS:
                cfg = MachineConfig(n_procs=ts.n_procs)
                out[(p, m)] = System(
                    ts, cfg, get_lock_manager("queuing"), get_model(m)
                ).run()
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Extension: the consistency spectrum (queuing locks)",
        "",
        f"{'program':<10} {'SC':>11} {'TSO':>11} {'WO':>11} {'TSO vs SC':>10} {'WO vs SC':>9}",
    ]
    for p in BENCHMARK_ORDER:
        sc = results[(p, "sc")].run_time
        tso = results[(p, "tso")].run_time
        wo = results[(p, "wo")].run_time
        lines.append(
            f"{p:<10} {sc:>11,} {tso:>11,} {wo:>11,} "
            f"{100 * (sc - tso) / sc:>+9.2f}% {100 * (sc - wo) / sc:>+8.2f}%"
        )
    save_table(output_dir, "extension_consistency_spectrum", "\n".join(lines))

    for p in BENCHMARK_ORDER:
        sc = results[(p, "sc")]
        tso = results[(p, "tso")]
        wo = results[(p, "wo")]
        # the paper's <1% band extends across the whole spectrum
        assert abs(sc.run_time - tso.run_time) / sc.run_time < 0.01, p
        assert abs(sc.run_time - wo.run_time) / sc.run_time < 0.01, p
        # TSO genuinely never drains; WO does
        assert tso.meta["drains"] == 0, p
        # TSO ~ WO (drains are nearly free, so removing them changes
        # almost nothing)
        assert abs(tso.run_time - wo.run_time) / wo.run_time < 0.005, p
