"""Ablation: the barrier waiter bound.

§3.1: the waiters-at-transfer for Grav and Pdsa is "slightly over half
the number of processors.  This is extremely heavy contention since, by
comparison, a barrier would yield a number less than half the number of
processors."

We build a barrier-synchronized phase workload, measure the average
number of processors seen waiting at each arrival, and check the bound
-- then confirm Grav's lock waiters exceed it.
"""

import numpy as np

from repro.consistency import SEQUENTIAL
from repro.machine.config import MachineConfig
from repro.machine.system import System
from repro.sync import QueuingLockManager
from repro.sync.barrier import BarrierManager
from repro.trace.layout import AddressLayout
from repro.workloads import ProcContext, Workload

from .conftest import save_table

N_PROCS = 10
PHASES = 40


class BarrierPhases(Workload):
    """Compute phases separated by global barriers, with mildly
    imbalanced per-processor work (as real phases are)."""

    name = "barrier-phases"
    default_procs = N_PROCS

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        data = [layout.alloc_private(p, 4096) for p in range(len(ctxs))]
        for bid in range(self.scaled(PHASES)):
            for p, ctx in enumerate(ctxs):
                work = int(rng.integers(40, 120))
                for i in range(work // 10):
                    ctx.step(
                        "phase.work",
                        10,
                        reads=[(data[p] + (i % 32) * 64, 2)],
                    )
                ctx.barrier(bid)


def test_ablation_barrier_waiters(benchmark, cache, output_dir):
    def run():
        ts = BarrierPhases(scale=1.0, seed=3).generate()
        barrier_line = ts.layout.alloc_lock() >> 4
        barriers = BarrierManager(n_procs=ts.n_procs, line=barrier_line)
        system = System(
            ts,
            MachineConfig(n_procs=ts.n_procs),
            QueuingLockManager(),
            SEQUENTIAL,
            barrier_manager=barriers,
        )
        result = system.run()
        return result, barriers.stats

    (result, stats) = benchmark.pedantic(run, rounds=1, iterations=1)

    grav = cache.simulate("grav", "queuing", "sc")
    lines = [
        "Ablation: barrier waiter bound (§3.1)",
        "",
        f"barrier phases: {stats.episodes} episodes, "
        f"{stats.arrivals} arrivals on {N_PROCS} processors",
        f"average processors seen waiting at arrival: {stats.avg_waiters_seen:.2f}",
        f"theoretical bound (P-1)/2 = {(N_PROCS - 1) / 2:.2f}",
        "",
        f"grav lock waiters-at-transfer for comparison: "
        f"{grav.lock_stats.avg_waiters_at_transfer:.2f} on {grav.n_procs} processors",
    ]
    save_table(output_dir, "ablation_barrier_waiters", "\n".join(lines))

    # the barrier bound: strictly less than half the machine
    assert stats.avg_waiters_seen < N_PROCS / 2
    assert stats.avg_waiters_seen > 1.0  # but real waiting does happen
    assert stats.episodes == PHASES
    # grav's lock contention exceeds what any barrier could produce on
    # the same machine size -- the paper's "extremely heavy contention"
    assert grav.lock_stats.avg_waiters_at_transfer > (grav.n_procs - 1) / 2 * 0.7
