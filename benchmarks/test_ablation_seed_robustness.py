"""Ablation: seed robustness.

§2.3: "Grav and Qsort have been simulated with significantly longer
traces with no change in the basic results."  Scale stability is checked
in the test suite; this ablation checks the other axis -- workload
randomness.  The headline metrics must hold for *any* generation seed,
or the reproduction is a fluke of one.
"""

from repro.core.robustness import render_seed_study, seed_study

from .conftest import save_table

SEEDS = (1991, 7, 42)


def test_ablation_seed_robustness(benchmark, output_dir):
    def study():
        return seed_study(seeds=SEEDS, scale=0.5, programs=["grav", "pdsa", "pverify", "qsort"])

    spreads = benchmark.pedantic(study, rounds=1, iterations=1)
    save_table(output_dir, "ablation_seed_robustness", render_seed_study(spreads, SEEDS))

    by = {(s.program, s.metric): s for s in spreads}
    # contended programs stay contended for every seed
    for p in ("grav", "pdsa"):
        assert max(by[(p, "utilization")].values) < 60, p
        assert min(by[(p, "lock stall %")].values) > 80, p
        assert min(by[(p, "waiters")].values) > 3.0, p
    # calm programs stay calm for every seed
    assert min(by[("pverify", "utilization")].values) > 90
    assert max(by[("pverify", "waiters")].values) < 1.0
    assert min(by[("qsort", "utilization")].values) > 55
    # and the metrics are not wildly seed-sensitive (tight relative spread)
    for s in spreads:
        if s.metric in ("utilization", "lock stall %", "write hit %") and s.mean > 5:
            assert s.spread < 0.25, (s.program, s.metric, s.values)
