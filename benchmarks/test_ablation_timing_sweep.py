"""Ablation: bus/memory cycle-time sweep.

§2.1: changes to "system parameters (e.g., bus and memory cycle times)
... did not modify the general trends of our results".  We double and
halve the memory access time and narrow the bus, and check that the
qualitative conclusions (which programs are contended, who wins between
queuing and T&T&S) are invariant.
"""

from dataclasses import replace

import pytest

from repro.consistency import SEQUENTIAL
from repro.machine.config import BusConfig, MachineConfig, MemoryConfig
from repro.machine.system import System
from repro.sync import get_lock_manager

from .conftest import save_table

VARIANTS = {
    "paper": MachineConfig(),
    "slow-memory": MachineConfig(memory=MemoryConfig(access_cycles=6)),
    "fast-memory": MachineConfig(memory=MemoryConfig(access_cycles=1)),
    "narrow-bus": MachineConfig(bus=BusConfig(width_bytes=4)),
}


def run(cache, program, cfg, scheme="queuing"):
    ts = cache.trace(program)
    system = System(
        ts,
        replace(cfg, n_procs=ts.n_procs),
        get_lock_manager(scheme),
        SEQUENTIAL,
    )
    return system.run()


def test_ablation_timing_sweep(benchmark, cache, output_dir):
    programs = ["grav", "pverify"]

    def sweep():
        return {
            (p, name): run(cache, p, cfg)
            for p in programs
            for name, cfg in VARIANTS.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Ablation: bus/memory timing sweep (queuing locks, SC)", ""]
    for (p, name), r in results.items():
        lines.append(
            f"{p:<9} {name:<12} run-time {r.run_time:>10,}  "
            f"util {100 * r.avg_utilization:5.1f}%  lock-stall {r.stall_pct_lock:5.1f}%"
        )
    save_table(output_dir, "ablation_timing_sweep", "\n".join(lines))

    # trends invariant: grav stays lock-bound and low-utilization in
    # every variant; pverify stays miss-bound and high-utilization
    for name in VARIANTS:
        g = results[("grav", name)]
        v = results[("pverify", name)]
        assert g.stall_pct_lock > 80, name
        assert g.avg_utilization < 0.6, name
        assert v.stall_pct_miss > 80, name
        assert v.avg_utilization > 0.85, name
        assert g.avg_utilization < v.avg_utilization, name

    # sanity: the knobs actually move absolute numbers
    assert (
        results[("pverify", "slow-memory")].run_time
        > results[("pverify", "paper")].run_time
        > results[("pverify", "fast-memory")].run_time
    )
