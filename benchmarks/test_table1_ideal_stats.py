"""Table 1: benchmark ideal statistics.

Regenerates the per-processor work-cycle and reference counts for all
six benchmarks and checks the paper's proportions: the reference mix
(data fraction, shared fraction) and the cross-program orderings.
Absolute counts are ~1/20th of the paper's (the reproduction scale).
"""

import pytest

from repro.core.ideal import ideal_stats
from repro.core.report import PAPER_TABLES, render_table1
from repro.workloads.registry import BENCHMARK_ORDER

from .conftest import save_table


@pytest.fixture(scope="module")
def ideals(cache):
    return {p: ideal_stats(cache.trace(p)) for p in BENCHMARK_ORDER}


def test_table1_ideal_stats(benchmark, cache, output_dir, ideals):
    # time the analysis itself (vectorized trace statistics)
    result = benchmark.pedantic(
        lambda: [ideal_stats(cache.trace(p)) for p in BENCHMARK_ORDER],
        rounds=1,
        iterations=1,
    )
    text = render_table1(list(ideals.values()))
    save_table(output_dir, "table1_ideal_stats", text)

    paper = PAPER_TABLES[1]
    for p, ideal in ideals.items():
        # processor counts are the paper's exactly
        assert ideal.n_procs == paper[p]["procs"], p

    # reference-mix proportions: data fraction within a loose band of
    # the paper's.  Qsort gets a wider band: its model trades
    # instructions-per-element for the paper's utilization signature at
    # the reproduction scale (see EXPERIMENTS.md).
    for p, ideal in ideals.items():
        paper_frac = paper[p]["data"] / paper[p]["all"]
        band = 0.25 if p == "qsort" else 0.15
        assert abs(ideal.data_fraction - paper_frac) < band, (
            p,
            ideal.data_fraction,
            paper_frac,
        )

    # shared fraction: Presto programs ~everything shared; C programs ~a third
    for p in ("grav", "pdsa", "fullconn"):
        assert ideals[p].shared_fraction > 0.85, p
    for p in ("pverify", "topopt"):
        assert ideals[p].shared_fraction < 0.75, p

    # cycles per reference in the paper's 2.0-3.0 band
    for p, ideal in ideals.items():
        assert 1.5 < ideal.cycles_per_ref < 3.2, (p, ideal.cycles_per_ref)

    # topopt has the longest trace, as in the paper
    assert ideals["topopt"].all_refs == max(i.all_refs for i in ideals.values())
