"""Ablation: exact queuing lock vs the paper's approximation.

§2.4: "We used the slightly more efficient scheme to minimize the
implementation constraints.  With the results that we have generated so
far, we believe that the two missing bus transactions have no impact on
the validity of our results as applied to queuing locks.  We are
currently modifying our simulator to verify this assumption."

This benchmark is that verification: the exact Graunke-Thakkar scheme
(extra enqueue access; memory hand-off instead of cache-to-cache) is run
on the two contended programs and compared against the approximation.
"""

from repro.workloads.registry import LOCKING_BENCHMARKS

from .conftest import save_table


def test_ablation_exact_queuing(benchmark, cache, output_dir):
    programs = ["grav", "pdsa"]

    def sweep():
        return {p: cache.run_fresh(p, "exact-queuing", "sc") for p in programs}

    exact = benchmark.pedantic(sweep, rounds=1, iterations=1)
    approx = {p: cache.simulate(p, "queuing", "sc") for p in programs}

    lines = ["Ablation: exact queuing lock vs the paper's approximation", ""]
    ok = True
    for p in programs:
        a, e = approx[p], exact[p]
        diff = 100.0 * (e.run_time - a.run_time) / a.run_time
        lines.append(
            f"{p:<6} approx {a.run_time:>10,}  exact {e.run_time:>10,} "
            f"({diff:+.2f}%)  waiters {a.lock_stats.avg_waiters_at_transfer:.2f} "
            f"-> {e.lock_stats.avg_waiters_at_transfer:.2f}  "
            f"handoff {a.lock_stats.avg_handoff:.1f} -> {e.lock_stats.avg_handoff:.1f} cy"
        )
    save_table(output_dir, "ablation_exact_queuing", "\n".join(lines))

    for p in programs:
        a, e = approx[p], exact[p]
        # the exact scheme is somewhat slower (two extra transactions per
        # contended acquisition) but the paper's conclusions survive:
        diff = (e.run_time - a.run_time) / a.run_time
        assert 0 <= diff < 0.10, (p, diff)
        # contention pattern unchanged
        assert (
            abs(
                e.lock_stats.avg_waiters_at_transfer
                - a.lock_stats.avg_waiters_at_transfer
            )
            < 1.2
        ), p
        # and the exact queuing lock still hands off far faster than
        # T&T&S, so the Table 5/6 comparison stands
        t = cache.simulate(p, "ttas", "sc")
        assert e.lock_stats.avg_handoff < 0.7 * t.lock_stats.avg_handoff, p
