"""Simulator performance regression benchmark.

Not a paper artifact: this is the library watching its own hot loop (the
per-record trace interpreter -- see docs/internals.md §8).  It measures
end-to-end simulation throughput in trace records per second on a fixed
mid-size workload, with real rounds so pytest-benchmark can track
regressions across runs.
"""

from repro.consistency import SEQUENTIAL
from repro.machine.config import MachineConfig
from repro.machine.system import System
from repro.sync import QueuingLockManager
from repro.workloads import generate_trace


def test_simulator_throughput(benchmark):
    ts = generate_trace("fullconn", scale=0.3, seed=5)
    records = ts.total_records()

    def simulate_once():
        cfg = MachineConfig(n_procs=ts.n_procs)
        return System(ts, cfg, QueuingLockManager(), SEQUENTIAL).run()

    result = benchmark.pedantic(simulate_once, rounds=3, iterations=1)
    assert result.run_time > 0
    # record throughput for the journal: records per benchmark-second
    benchmark.extra_info["trace_records"] = records
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["records_per_sec"] = round(records / mean)
    # sanity floor: the interpreter should sustain well over 10k rec/s
    assert records / mean > 10_000
