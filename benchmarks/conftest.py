"""Shared machinery for the benchmark harness.

Each ``benchmarks/test_*`` file regenerates one of the paper's tables or
figures (see DESIGN.md §4).  Simulation runs are cached per session so
tables that share a configuration (e.g. Tables 3 and 4 both read the
queuing/SC runs) do not re-simulate; each bench then times the work that
is *distinctive* for its table and asserts the paper's shape on the
results.  Rendered tables are written to ``benchmarks/output/`` so a run
leaves the full reproduction behind as text.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.consistency import get_model
from repro.core.experiment import SuiteResults
from repro.machine.config import MachineConfig
from repro.machine.system import System
from repro.sync import get_lock_manager
from repro.workloads.registry import BENCHMARK_ORDER, generate_trace

#: scale used by the benchmark harness (the library's reproduction scale)
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1991"))

OUTPUT_DIR = Path(__file__).parent / "output"


class RunCache:
    """Session-wide cache of traces and simulation results."""

    def __init__(self) -> None:
        self._traces = {}
        self._runs = {}

    def trace(self, program: str):
        if program not in self._traces:
            self._traces[program] = generate_trace(
                program, scale=BENCH_SCALE, seed=BENCH_SEED
            )
        return self._traces[program]

    def simulate(self, program: str, scheme: str = "queuing", model: str = "sc"):
        key = (program, scheme, model)
        if key not in self._runs:
            self._runs[key] = self.run_fresh(program, scheme, model)
        return self._runs[key]

    def run_fresh(self, program: str, scheme: str = "queuing", model: str = "sc"):
        """Always simulate (this is what benches time)."""
        ts = self.trace(program)
        system = System(
            ts,
            MachineConfig(n_procs=ts.n_procs),
            get_lock_manager(scheme),
            get_model(model),
        )
        return system.run()

    def suite(self, programs=None) -> SuiteResults:
        programs = programs or list(BENCHMARK_ORDER)
        return SuiteResults(
            scale=BENCH_SCALE,
            seed=BENCH_SEED,
            traces={p: self.trace(p) for p in programs},
            queuing_sc={p: self.simulate(p, "queuing", "sc") for p in programs},
            ttas_sc={p: self.simulate(p, "ttas", "sc") for p in programs},
            queuing_wo={p: self.simulate(p, "queuing", "wo") for p in programs},
        )


@pytest.fixture(scope="session")
def cache():
    return RunCache()


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def save_table(output_dir: Path, name: str, text: str) -> None:
    (output_dir / f"{name}.txt").write_text(text + "\n")
