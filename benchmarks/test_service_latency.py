"""Warm-cell HTTP latency benchmark and perf-smoke gate for the sweep
service.

Not a paper artifact: this watches the service's serving overhead.  A
live HTTP front end (the same stdlib server ``repro serve`` boots) is
measured end-to-end over localhost: one cold ``POST /submit`` populates
the content-addressed store, then the *same* cell is submitted
repeatedly and each round trip is answered from the store without
touching the simulator.  The reported figure of merit is the warm
round-trip latency (client wall clock, request written to response
parsed) -- the price of putting the service between a user and an
already-computed result.

The "service" section of the committed ``BENCH_hotpath.json`` at the
repository root is the canonical baseline; this run's report is written
to the scratch file ``benchmarks/output/BENCH_service.json`` (not
tracked).  When ``REPRO_PERF_ENFORCE`` is set, warm throughput must not
regress more than 50% below the committed baseline (HTTP latency on a
shared CI runner jitters far more than the in-process hot loops, hence
the wider tolerance), a warm hit must stay decisively cheaper than
re-simulating the cell, and the scrape of ``GET /metrics`` must stay
well-formed.  Regenerate the baseline on a quiet machine with::

    PYTHONPATH=src python -m pytest benchmarks/test_service_latency.py -q

and copy the scratch report over the root file's "service" section.
"""

from __future__ import annotations

import asyncio
import json
import os
import statistics
import threading
import time
from pathlib import Path

import pytest

from repro.runner import JobSpec, ResultCache
from repro.service import Scheduler, ServiceClient, ServiceServer

ROOT = Path(__file__).resolve().parent.parent
OUTPUT_DIR = Path(__file__).parent / "output"
BASELINE_PATH = ROOT / "BENCH_hotpath.json"

ENFORCE = bool(os.environ.get("REPRO_PERF_ENFORCE"))
#: HTTP round trips on shared runners jitter more than process_time
#: hot loops; the gate is correspondingly wider than their 25%
TOLERANCE = 0.50
#: a warm hit must beat re-simulating the cell by at least this factor
WARM_FLOOR = 2.0

#: the measured cell: small enough to simulate in well under a second,
#: real enough that serving it from the store is a visible win
CELL = JobSpec(program="fullconn", scale=0.05)
WARM_REQUESTS = 200

#: the store-tier cell: a full-scale result, fetched by key from a
#: remote worker store -- the payload whose size the binary framing
#: (PR 10) exists to shrink
FETCH_CELL = JobSpec(program="fullconn", scale=1.0)
FETCH_REQUESTS = 50
#: a binary fetch response must carry at least this many times fewer
#: bytes than the same response in JSON framing; byte counts are
#: deterministic, so this gate is machine-independent
PAYLOAD_REDUCTION_FLOOR = 3.0


@pytest.fixture
def service(tmp_path):
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    scheduler = Scheduler(cache=ResultCache(tmp_path / "cache"))
    server = ServiceServer(scheduler)
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=30)
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


def test_warm_cell_http_latency(service):
    client = ServiceClient(service.url, timeout=120)
    baseline = (
        json.load(open(BASELINE_PATH)).get("service")
        if BASELINE_PATH.exists()
        else None
    )

    # cold: one real simulation through the full HTTP + scheduler path
    t0 = time.perf_counter()
    cold = client.submit(specs=[CELL])
    cold_seconds = time.perf_counter() - t0
    assert [r["status"] for r in cold["results"]] == ["ok"]

    # warm: the same cell, answered from the content-addressed store
    latencies = []
    for _ in range(WARM_REQUESTS):
        t0 = time.perf_counter()
        response = client.submit(specs=[CELL], include_results=False)
        latencies.append(time.perf_counter() - t0)
        assert response["results"][0]["status"] == "hit"

    latencies.sort()
    p50 = statistics.median(latencies)
    p99 = latencies[int(0.99 * (len(latencies) - 1))]
    warm_rps = 1.0 / p50 if p50 else 0.0

    # the scrape must be clean after sustained serving
    metrics_text = client.metrics()
    assert f"repro_requests_total {1 + WARM_REQUESTS}" in metrics_text
    assert f"repro_cache_hits_total {WARM_REQUESTS}" in metrics_text
    for line in metrics_text.strip().splitlines():
        assert line.startswith("#") or len(line.rsplit(" ", 1)) == 2, line

    report = {
        "protocol": (
            f"wall clock over localhost HTTP, one cold POST /submit of "
            f"{CELL.label()} at scale {CELL.scale} then {WARM_REQUESTS} "
            "warm submits of the identical cell answered from the "
            "result store; latency is client-side round trip, "
            "warm_requests_per_sec is 1/p50"
        ),
        "cell": CELL.label(),
        "cold_seconds": round(cold_seconds, 4),
        "warm_p50_ms": round(1000 * p50, 3),
        "warm_p99_ms": round(1000 * p99, 3),
        "warm_mean_ms": round(1000 * statistics.fmean(latencies), 3),
        "warm_requests_per_sec": round(warm_rps, 1),
        "warm_speedup_vs_cold": round(cold_seconds / p50, 1) if p50 else 0.0,
    }

    OUTPUT_DIR.mkdir(exist_ok=True)
    with open(OUTPUT_DIR / "BENCH_service.json", "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")

    # sanity floors that hold on any machine
    assert p50 < 0.25, f"warm round trip took {1000 * p50:.1f} ms"
    assert report["warm_speedup_vs_cold"] > 1, report

    if not ENFORCE:
        return

    problems = []
    if report["warm_speedup_vs_cold"] < WARM_FLOOR:
        problems.append(
            f"warm hit only {report['warm_speedup_vs_cold']}x faster than "
            f"re-simulating the cell (floor {WARM_FLOOR}x)"
        )
    if baseline is not None:
        base = baseline["warm_requests_per_sec"]
        if warm_rps < base * (1 - TOLERANCE):
            problems.append(
                f"warm throughput {report['warm_requests_per_sec']} req/s is "
                f">{TOLERANCE:.0%} below the committed baseline {base}"
            )
    else:
        problems.append(
            f"committed baseline {BASELINE_PATH} has no 'service' section; "
            "copy benchmarks/output/BENCH_service.json into it"
        )
    if problems:
        pytest.fail(
            "sweep-service latency regression:\n  " + "\n  ".join(problems),
            pytrace=False,
        )


def test_remote_warm_fetch_by_key(tmp_path):
    """Store-tier figure of merit: fetch a full-scale result by key
    from a remote worker's store, once over negotiated binary framing
    and once with the client pinned to JSON lines.  Reports the binary
    fetch p50 and the on-wire response bytes under each framing; the
    binary payload must stay at least ``PAYLOAD_REDUCTION_FLOOR`` times
    smaller."""
    from repro.runner.executor import _execute
    from repro.runner.serialize import result_from_dict
    from repro.service import ServiceMetrics, SocketTransport, serve_worker

    cache = ResultCache(tmp_path / "store")
    payload = _execute(FETCH_CELL, None, None)
    assert payload["ok"], payload
    cache.put(FETCH_CELL, result_from_dict(payload["result"]))
    key = FETCH_CELL.cache_key()
    baseline = (
        json.load(open(BASELINE_PATH)).get("service")
        if BASELINE_PATH.exists()
        else None
    )

    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    server, port, agent = asyncio.run_coroutine_threadsafe(
        serve_worker(cache=cache, trace_cache=False, name="bench"), loop
    ).result(timeout=60)

    request = {"op": "fetch", "kind": "result", "key": key}

    async def measure(framing: str):
        metrics = ServiceMetrics()
        transport = SocketTransport(
            "127.0.0.1", port, binary=framing, metrics=metrics
        )
        try:
            # connect, negotiate, and prove the key is warm before timing
            warm = await transport.call(dict(request))
            assert warm["ok"], warm
            base_bytes = metrics.bytes_received
            latencies = []
            for _ in range(FETCH_REQUESTS):
                t0 = time.perf_counter()
                response = await transport.call(dict(request))
                latencies.append(time.perf_counter() - t0)
                assert response["ok"]
            per_fetch = (metrics.bytes_received - base_bytes) / FETCH_REQUESTS
            return sorted(latencies), per_fetch, metrics
        finally:
            await transport.close()

    try:
        bin_lat, bin_bytes, bin_metrics = asyncio.run(measure("auto"))
        json_lat, json_bytes, json_metrics = asyncio.run(measure("never"))
    finally:

        async def teardown():
            server.close()
            await server.wait_closed()
            agent.close()

        asyncio.run_coroutine_threadsafe(teardown(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()

    # the auto client really negotiated binary (one JSON hello, then
    # every fetch in binary frames); the pinned client never did
    assert bin_metrics.frames_binary == 1 + FETCH_REQUESTS
    assert bin_metrics.frames_json == 1
    assert json_metrics.frames_binary == 0

    reduction = json_bytes / bin_bytes
    p50 = statistics.median(bin_lat)
    report = {
        "fetch_protocol": (
            f"wall clock over a localhost socket, {FETCH_REQUESTS} warm "
            f"'fetch' ops of the {FETCH_CELL.label()} scale-"
            f"{FETCH_CELL.scale} result by cache key against a live "
            "worker store, once over negotiated binary framing and once "
            "with the client pinned to JSON lines; bytes are on-wire "
            "response frame sizes"
        ),
        "fetch_cell": f"{FETCH_CELL.label()} @ scale {FETCH_CELL.scale}",
        "fetch_p50_ms": round(1000 * p50, 3),
        "fetch_p99_ms": round(1000 * bin_lat[int(0.99 * (len(bin_lat) - 1))], 3),
        "fetch_json_p50_ms": round(1000 * statistics.median(json_lat), 3),
        "fetch_bytes_binary": round(bin_bytes, 1),
        "fetch_bytes_json": round(json_bytes, 1),
        "payload_reduction_vs_json": round(reduction, 2),
    }

    OUTPUT_DIR.mkdir(exist_ok=True)
    scratch = OUTPUT_DIR / "BENCH_service.json"
    merged = json.load(open(scratch)) if scratch.exists() else {}
    merged.update(report)
    with open(scratch, "w") as fh:
        json.dump(merged, fh, indent=1, sort_keys=True)
        fh.write("\n")

    # deterministic floors: byte counts do not jitter, so the payload
    # gate holds on any machine; the latency floor is a loose sanity
    assert reduction >= PAYLOAD_REDUCTION_FLOOR, (
        f"binary fetch response only {reduction:.2f}x smaller than JSON "
        f"({bin_bytes:.0f} vs {json_bytes:.0f} B, floor "
        f"{PAYLOAD_REDUCTION_FLOOR}x)"
    )
    assert p50 < 0.25, f"warm remote fetch took {1000 * p50:.1f} ms"

    if not ENFORCE:
        return

    problems = []
    if baseline is None or "payload_reduction_vs_json" not in baseline:
        problems.append(
            f"committed baseline {BASELINE_PATH} has no store-tier keys; "
            "copy benchmarks/output/BENCH_service.json into its "
            "'service' section"
        )
    else:
        base_bytes = baseline["fetch_bytes_binary"]
        if bin_bytes > base_bytes * 1.10:
            problems.append(
                f"binary fetch response grew to {bin_bytes:.0f} B "
                f"(committed {base_bytes:.0f} B +10%): the wire format "
                "got fatter"
            )
    if problems:
        pytest.fail(
            "store-tier transport regression:\n  " + "\n  ".join(problems),
            pytrace=False,
        )
