"""Warm-cell HTTP latency benchmark and perf-smoke gate for the sweep
service.

Not a paper artifact: this watches the service's serving overhead.  A
live HTTP front end (the same stdlib server ``repro serve`` boots) is
measured end-to-end over localhost: one cold ``POST /submit`` populates
the content-addressed store, then the *same* cell is submitted
repeatedly and each round trip is answered from the store without
touching the simulator.  The reported figure of merit is the warm
round-trip latency (client wall clock, request written to response
parsed) -- the price of putting the service between a user and an
already-computed result.

The "service" section of the committed ``BENCH_hotpath.json`` at the
repository root is the canonical baseline; this run's report is written
to the scratch file ``benchmarks/output/BENCH_service.json`` (not
tracked).  When ``REPRO_PERF_ENFORCE`` is set, warm throughput must not
regress more than 50% below the committed baseline (HTTP latency on a
shared CI runner jitters far more than the in-process hot loops, hence
the wider tolerance), a warm hit must stay decisively cheaper than
re-simulating the cell, and the scrape of ``GET /metrics`` must stay
well-formed.  Regenerate the baseline on a quiet machine with::

    PYTHONPATH=src python -m pytest benchmarks/test_service_latency.py -q

and copy the scratch report over the root file's "service" section.
"""

from __future__ import annotations

import asyncio
import json
import os
import statistics
import threading
import time
from pathlib import Path

import pytest

from repro.runner import JobSpec, ResultCache
from repro.service import Scheduler, ServiceClient, ServiceServer

ROOT = Path(__file__).resolve().parent.parent
OUTPUT_DIR = Path(__file__).parent / "output"
BASELINE_PATH = ROOT / "BENCH_hotpath.json"

ENFORCE = bool(os.environ.get("REPRO_PERF_ENFORCE"))
#: HTTP round trips on shared runners jitter more than process_time
#: hot loops; the gate is correspondingly wider than their 25%
TOLERANCE = 0.50
#: a warm hit must beat re-simulating the cell by at least this factor
WARM_FLOOR = 2.0

#: the measured cell: small enough to simulate in well under a second,
#: real enough that serving it from the store is a visible win
CELL = JobSpec(program="fullconn", scale=0.05)
WARM_REQUESTS = 200


@pytest.fixture
def service(tmp_path):
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    scheduler = Scheduler(cache=ResultCache(tmp_path / "cache"))
    server = ServiceServer(scheduler)
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=30)
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


def test_warm_cell_http_latency(service):
    client = ServiceClient(service.url, timeout=120)
    baseline = (
        json.load(open(BASELINE_PATH)).get("service")
        if BASELINE_PATH.exists()
        else None
    )

    # cold: one real simulation through the full HTTP + scheduler path
    t0 = time.perf_counter()
    cold = client.submit(specs=[CELL])
    cold_seconds = time.perf_counter() - t0
    assert [r["status"] for r in cold["results"]] == ["ok"]

    # warm: the same cell, answered from the content-addressed store
    latencies = []
    for _ in range(WARM_REQUESTS):
        t0 = time.perf_counter()
        response = client.submit(specs=[CELL], include_results=False)
        latencies.append(time.perf_counter() - t0)
        assert response["results"][0]["status"] == "hit"

    latencies.sort()
    p50 = statistics.median(latencies)
    p99 = latencies[int(0.99 * (len(latencies) - 1))]
    warm_rps = 1.0 / p50 if p50 else 0.0

    # the scrape must be clean after sustained serving
    metrics_text = client.metrics()
    assert f"repro_requests_total {1 + WARM_REQUESTS}" in metrics_text
    assert f"repro_cache_hits_total {WARM_REQUESTS}" in metrics_text
    for line in metrics_text.strip().splitlines():
        assert line.startswith("#") or len(line.rsplit(" ", 1)) == 2, line

    report = {
        "protocol": (
            f"wall clock over localhost HTTP, one cold POST /submit of "
            f"{CELL.label()} at scale {CELL.scale} then {WARM_REQUESTS} "
            "warm submits of the identical cell answered from the "
            "result store; latency is client-side round trip, "
            "warm_requests_per_sec is 1/p50"
        ),
        "cell": CELL.label(),
        "cold_seconds": round(cold_seconds, 4),
        "warm_p50_ms": round(1000 * p50, 3),
        "warm_p99_ms": round(1000 * p99, 3),
        "warm_mean_ms": round(1000 * statistics.fmean(latencies), 3),
        "warm_requests_per_sec": round(warm_rps, 1),
        "warm_speedup_vs_cold": round(cold_seconds / p50, 1) if p50 else 0.0,
    }

    OUTPUT_DIR.mkdir(exist_ok=True)
    with open(OUTPUT_DIR / "BENCH_service.json", "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")

    # sanity floors that hold on any machine
    assert p50 < 0.25, f"warm round trip took {1000 * p50:.1f} ms"
    assert report["warm_speedup_vs_cold"] > 1, report

    if not ENFORCE:
        return

    problems = []
    if report["warm_speedup_vs_cold"] < WARM_FLOOR:
        problems.append(
            f"warm hit only {report['warm_speedup_vs_cold']}x faster than "
            f"re-simulating the cell (floor {WARM_FLOOR}x)"
        )
    if baseline is not None:
        base = baseline["warm_requests_per_sec"]
        if warm_rps < base * (1 - TOLERANCE):
            problems.append(
                f"warm throughput {report['warm_requests_per_sec']} req/s is "
                f">{TOLERANCE:.0%} below the committed baseline {base}"
            )
    else:
        problems.append(
            f"committed baseline {BASELINE_PATH} has no 'service' section; "
            "copy benchmarks/output/BENCH_service.json into it"
        )
    if problems:
        pytest.fail(
            "sweep-service latency regression:\n  " + "\n  ".join(problems),
            pytrace=False,
        )
