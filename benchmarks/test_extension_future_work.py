"""Extension: the paper's §4.2/§5 future-work conjectures.

"Although weak ordering does not appear worthwhile in this architecture,
it does not mean that it is not worth investigating.  If the miss
penalty were greater, e.g., because the memory latency is much higher as
in a multistage interconnection based system, or the number of writes to
memory increased (as in the case of a write-through cache), then the
benefit would be greater and might justify the cost."

This benchmark tests both halves of that sentence on our substrate:

* write-through caches: every write becomes a memory transaction, so
  buffering/bypassing has more to hide -- weak ordering's benefit grows;
* higher memory latency (a stand-in for a multistage network): the same.
"""

from dataclasses import replace

from repro.consistency import SEQUENTIAL, WEAK
from repro.machine.config import CacheConfig, MachineConfig, MemoryConfig
from repro.machine.system import System
from repro.sync import QueuingLockManager

from .conftest import save_table

PROGRAMS = ["pverify", "topopt"]  # the miss-bound, write-carrying programs


def wo_benefit(ts, cfg):
    sc = System(ts, cfg, QueuingLockManager(), SEQUENTIAL).run()
    wo = System(ts, cfg, QueuingLockManager(), WEAK).run()
    return (sc.run_time - wo.run_time) / sc.run_time


def test_extension_future_work(benchmark, cache, output_dir):
    def sweep():
        out = {}
        for p in PROGRAMS:
            ts = cache.trace(p)
            base_cfg = MachineConfig(n_procs=ts.n_procs)
            out[(p, "writeback")] = wo_benefit(ts, base_cfg)
            out[(p, "writethrough")] = wo_benefit(
                ts, replace(base_cfg, cache=CacheConfig(write_policy="writethrough"))
            )
            out[(p, "high-latency")] = wo_benefit(
                ts, replace(base_cfg, memory=MemoryConfig(access_cycles=20))
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Extension: weak-ordering benefit under the paper's future-work scenarios",
        "",
        f"{'program':<10} {'write-back':>11} {'write-through':>14} {'memory x6.7':>12}",
    ]
    for p in PROGRAMS:
        lines.append(
            f"{p:<10} {100 * results[(p, 'writeback')]:>10.2f}% "
            f"{100 * results[(p, 'writethrough')]:>13.2f}% "
            f"{100 * results[(p, 'high-latency')]:>11.2f}%"
        )
    save_table(output_dir, "extension_future_work", "\n".join(lines))

    # write-through raises the WO benefit for both programs
    for p in PROGRAMS:
        assert results[(p, "writethrough")] > results[(p, "writeback")], p
    # high memory latency raises it for the read-miss-heavy program
    assert results[("topopt", "high-latency")] > results[("topopt", "writeback")]
    # and the baseline stays in the paper's sub-1% regime
    for p in PROGRAMS:
        assert abs(results[(p, "writeback")]) < 0.01, p
