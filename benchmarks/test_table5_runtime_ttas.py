"""Table 5: benchmark runtime statistics under test-and-test-and-set.

Times the T&T&S sweep and checks the paper's headline: the contended
programs slow down by several percent relative to queuing locks; the
others are untouched.
"""

from repro.core.report import render_runtime_table
from repro.workloads.registry import LOCKING_BENCHMARKS

from .conftest import save_table


def test_table5_runtime_ttas(benchmark, cache, output_dir):
    def sweep():
        return {p: cache.run_fresh(p, "ttas", "sc") for p in LOCKING_BENCHMARKS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for p, r in results.items():
        cache._runs.setdefault((p, "ttas", "sc"), r)

    rows = [results[p] for p in LOCKING_BENCHMARKS]
    text = render_runtime_table(rows, 5, "T&T&S")
    save_table(output_dir, "table5_runtime_ttas", text)

    # the paper's Table 5 vs Table 3 comparison
    for p in LOCKING_BENCHMARKS:
        q = cache.simulate(p, "queuing", "sc")
        slow = (results[p].run_time - q.run_time) / q.run_time
        if p in ("grav", "pdsa"):
            # paper: +8.0% and +8.1%
            assert 0.02 < slow < 0.15, (p, slow)
        else:
            # paper: <= 0.2% either way
            assert abs(slow) < 0.02, (p, slow)

    # utilization drops slightly for the contended programs (paper:
    # 32.6 -> 30.7 and 40.3 -> 37.9)
    for p in ("grav", "pdsa"):
        q = cache.simulate(p, "queuing", "sc")
        assert results[p].avg_utilization < q.avg_utilization, p

    # stall causes keep their shape
    assert results["grav"].stall_pct_lock > 85
    assert results["pdsa"].stall_pct_lock > 85
    assert results["qsort"].stall_pct_miss > 85
