"""Figure 1: the model architecture diagram.

Regenerates the architecture figure from the machine configuration and
checks that every parameter the paper states in §2.2 appears.
"""

from repro.core.report import render_architecture
from repro.machine.config import MachineConfig

from .conftest import save_table


def test_figure1_architecture(benchmark, output_dir):
    cfg = MachineConfig(n_procs=12)
    text = benchmark(render_architecture, cfg)
    save_table(output_dir, "figure1_architecture", text)

    # §2.2 parameters, verbatim
    assert "64KB" in text
    assert "2-way set assoc." in text
    assert "16B lines" in text
    assert "write-back" in text
    assert "Illinois" in text
    assert "buf x4" in text
    assert "split-transaction" in text
    assert "round-robin" in text
    assert "in buf x2" in text and "out buf x2" in text
    assert "access: 3 cycles" in text
    # "a cache read miss causes the processor to stall for six cycles"
    assert "1 (request) + 3 (memory) + 2 (data) = 6 cycles" in text
