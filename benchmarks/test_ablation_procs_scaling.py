"""Ablation: contention scaling with machine size.

The paper runs its programs on 9-12 of the Sequent's 20 processors and
observes waiters-at-transfer "slightly over half the number of
processors" for the contended pair.  This ablation asks the natural
follow-up: is that *half-the-machine* law a property of the program or
of the particular machine size?  We re-partition Grav across 2-16
processors and track utilization, waiters and the lock-wait share.

Expected shape: the scheduler lock saturates once the machine is larger
than the ratio of work to critical-section time, after which waiters
scale linearly with processors (staying near or above P/2) and
utilization decays like a serialized program's (Amdahl on the scheduler
lock).
"""

from repro.core.sweep import render_sweep, sweep_procs

from .conftest import BENCH_SCALE, BENCH_SEED, save_table

PROCS = [2, 4, 8, 12, 16]


def test_ablation_procs_scaling(benchmark, output_dir):
    def sweep():
        return sweep_procs(
            "grav", PROCS, scale=min(BENCH_SCALE, 1.0), seed=BENCH_SEED
        )

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_table(
        output_dir,
        "ablation_procs_scaling",
        render_sweep(points, title="Ablation: grav contention vs machine size"),
    )

    by_n = {p.value: p.result for p in points}

    # utilization decays monotonically with machine size once contended
    utils = [by_n[n].avg_utilization for n in PROCS]
    assert utils[0] > utils[-1]
    for a, b in zip(utils[1:], utils[2:]):
        assert b <= a + 0.03  # allow small non-monotonic jitter

    # waiters grow with machine size and stay near half the machine for
    # the saturated sizes (the paper's observation generalizes)
    for n in (8, 12, 16):
        w = by_n[n].lock_stats.avg_waiters_at_transfer
        assert w > 0.35 * n, (n, w)
    assert (
        by_n[16].lock_stats.avg_waiters_at_transfer
        > by_n[4].lock_stats.avg_waiters_at_transfer
    )

    # with 2 processors there is barely a queue to stand in
    assert by_n[2].lock_stats.avg_waiters_at_transfer < 1.0

    # lock-wait share of stalls rises toward saturation
    assert by_n[16].stall_pct_lock > by_n[2].stall_pct_lock
