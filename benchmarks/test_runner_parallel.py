"""Throughput of the parallel experiment runner.

The full Tables 3-8 grid is 18 independent simulations; the job runner
(`repro.runner`) fans them across worker processes and memoizes every
result in a content-addressed cache.  This bench times the parallel
grid, then demonstrates the cache making a second invocation free --
the two properties the orchestration layer exists to provide.  Results
must be identical to the serial harness runs whichever way they are
produced.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.core.experiment import run_suite
from repro.runner import ResultCache

from .conftest import BENCH_SCALE, BENCH_SEED, save_table

JOBS = min(4, os.cpu_count() or 1)


def test_runner_parallel_suite(benchmark, cache, output_dir):
    with tempfile.TemporaryDirectory() as tmp:
        rc = ResultCache(tmp)

        def run():
            return run_suite(
                scale=BENCH_SCALE, seed=BENCH_SEED, jobs=JOBS, cache=rc
            )

        suite = benchmark.pedantic(run, rounds=1, iterations=1)
        assert suite.batch.stats.failed == 0
        assert suite.batch.stats.executed == 18

        # warm pass: everything from the cache, zero simulations
        t0 = time.perf_counter()
        warm = run_suite(scale=BENCH_SCALE, seed=BENCH_SEED, jobs=JOBS, cache=rc)
        warm_s = time.perf_counter() - t0
        assert warm.batch.stats.executed == 0
        assert warm.batch.stats.cached == 18

        # identical results to the serial harness path
        serial = cache.simulate("grav", "queuing", "sc")
        assert suite.queuing_sc["grav"] == serial
        assert warm.queuing_sc["grav"] == serial

        save_table(
            output_dir,
            "runner_parallel",
            "Parallel experiment runner (Tables 3-8 grid)\n"
            f"  workers            : {JOBS}\n"
            f"  jobs               : {suite.batch.stats.total}\n"
            f"  cold pass          : {suite.batch.stats.summary()}\n"
            f"  warm pass          : {warm.batch.stats.summary()}\n"
            f"  warm wall time     : {warm_s:.3f} s\n"
            f"  cache              : {rc.stats.summary()}",
        )
