"""Trace-generation throughput benchmark and perf-smoke gate.

Not a paper artifact: this watches the two trace-generation fast paths
(see docs/performance.md).  Every registry program is generated at scale
1.0 through the bulk emission path (``bulk=True``, the default: chunked
ndarray appends through :class:`repro.trace.builder.TraceBuilder`'s
vector APIs) and through the scalar reference path (``bulk=False``: the
same workload logic replayed record-by-record through the per-record
API), timed paired-adjacent; and one program is additionally timed
against a warm :class:`repro.trace.cache.TraceCache` (the second fast
path: don't generate at all -- memory-map the records a previous run
stored).

Measurement protocol matches test_hotpath_throughput: adjacent runs,
``time.process_time``, best-of-N per mode, because wall-clock drift
between separated runs easily exceeds the effect measured.

The report is written to the scratch file
``benchmarks/output/BENCH_tracegen.json`` (not tracked); the canonical
copy lives under the ``"tracegen"`` key of the committed
``BENCH_hotpath.json`` at the repository root.  Regenerate on a quiet
machine with::

    PYTHONPATH=src python -m pytest benchmarks/test_tracegen_throughput.py -q

and copy the scratch report over the root file's ``"tracegen"`` section.

Perf smoke: when ``REPRO_PERF_ENFORCE`` is set (the CI perf-smoke job
does this), the test fails if the bulk path stops paying for itself
(aggregate speedup below 1 - tolerance vs its own scalar reference), if
a warm cache load is not at least 3x faster than regenerating, or if
aggregate bulk records/sec regresses more than 25% below the committed
baseline.
"""

from __future__ import annotations

import gc
import json
import os
import tempfile
import time
from pathlib import Path

import pytest

import numpy as np

from repro.trace.builder import TraceBuilder
from repro.trace.cache import TraceCache
from repro.trace.encode import dumps_traceset
from repro.trace.records import IBLOCK, LOCK, READ, UNLOCK, WRITE
from repro.workloads.registry import WORKLOADS

ROOT = Path(__file__).resolve().parent.parent
OUTPUT_DIR = Path(__file__).parent / "output"
BASELINE_PATH = ROOT / "BENCH_hotpath.json"

REPS = int(os.environ.get("REPRO_PERF_REPS", "3"))
ENFORCE = bool(os.environ.get("REPRO_PERF_ENFORCE"))
TOLERANCE = 0.25
#: a warm cache hit must beat regenerating by at least this factor
CACHE_FLOOR = 3.0

SCALE = 1.0
SEED = 1991
CACHE_PROGRAM = "qsort"


def _timed(fn):
    gc.collect()
    t0 = time.process_time()
    out = fn()
    return time.process_time() - t0, out


def _measure_program(name: str):
    """Best-of-REPS bulk and scalar generation, interleaved."""
    factory = WORKLOADS[name]

    def gen(bulk: bool):
        return factory(scale=SCALE, seed=SEED).generate(bulk=bulk)

    gen(True)  # warm: imports, allocator pools
    gen(False)
    best = {True: 9e9, False: 9e9}
    records = None
    for _ in range(REPS):
        for bulk in (True, False):
            seconds, ts = _timed(lambda: gen(bulk))
            best[bulk] = min(best[bulk], seconds)
            records = ts.total_records()
    return {
        "records": records,
        "bulk_seconds": round(best[True], 4),
        "scalar_seconds": round(best[False], 4),
        "bulk_records_per_sec": round(records / best[True]),
        "speedup": round(best[False] / best[True], 3),
    }


def _measure_emission(ts):
    """The emission layer in isolation: stream one real traceset's
    records through the scalar per-record API and through one bulk
    append per processor.  This is the path the chunked builder
    replaced; end-to-end program cells dilute it with model compute."""
    layout = ts.layout
    per_proc = [np.asarray(t.records) for t in ts.traces]
    rows = [
        [(int(r["kind"]), int(r["addr"]), int(r["arg"]), int(r["cycles"])) for r in recs]
        for recs in per_proc
    ]

    def scalar():
        for proc, proc_rows in enumerate(rows):
            b = TraceBuilder(proc, layout, program=ts.program, check=False)
            for kind, addr, arg, cycles in proc_rows:
                if kind == IBLOCK:
                    b.block(arg, cycles, addr)
                elif kind == READ:
                    b.read(addr, arg)
                elif kind == WRITE:
                    b.write(addr, arg)
                elif kind == LOCK:
                    b.lock(arg, addr)
                elif kind == UNLOCK:
                    b.unlock(arg, addr)
                else:
                    b.barrier(arg)
            b.finish()

    def bulk():
        # check=False bulk emission defers the *full* validator to
        # finish(); that cost is charged to the bulk side, as in
        # production generation
        for proc, recs in enumerate(per_proc):
            b = TraceBuilder(proc, layout, program=ts.program, check=False)
            b.append_records(recs)
            b.finish()

    scalar()  # warm
    bulk()
    best = {"scalar": 9e9, "bulk": 9e9}
    for _ in range(REPS):
        for mode, fn in (("bulk", bulk), ("scalar", scalar)):
            seconds, _ = _timed(fn)
            best[mode] = min(best[mode], seconds)
    records = ts.total_records()
    return {
        "program": ts.program,
        "records": records,
        "scalar_seconds": round(best["scalar"], 4),
        "bulk_seconds": round(best["bulk"], 5),
        "scalar_records_per_sec": round(records / best["scalar"]),
        "bulk_records_per_sec": round(records / best["bulk"]),
        "speedup": round(best["scalar"] / best["bulk"], 1),
    }


def _measure_suite_warm(tmp: Path):
    """Cold (generate + store) vs warm (mmap load) for the whole
    registry: the trace-side wall-clock a warm-cache ``run_suite``
    saves."""
    cache = TraceCache(tmp / "suite-traces")

    def cold():
        for name in sorted(WORKLOADS):
            ts = WORKLOADS[name](scale=SCALE, seed=SEED).generate()
            cache.put(ts, scale=SCALE, seed=SEED)

    def warm():
        for name in sorted(WORKLOADS):
            assert cache.get(name, scale=SCALE, seed=SEED) is not None

    cold_seconds, _ = _timed(cold)
    warm()  # touch pages once
    best_warm = 9e9
    for _ in range(max(REPS, 3)):
        seconds, _ = _timed(warm)
        best_warm = min(best_warm, seconds)
    return {
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(best_warm, 5),
        "ratio": round(cold_seconds / best_warm, 1),
    }


def _measure_cache_cell(name: str, tmp: Path):
    """Fresh generation vs a warm mmap load of the same traceset."""
    cache = TraceCache(tmp / "traces")
    factory = WORKLOADS[name]

    def gen():
        return factory(scale=SCALE, seed=SEED).generate()

    ts = gen()
    cache.put(ts, scale=SCALE, seed=SEED)
    hit = cache.get(name, scale=SCALE, seed=SEED)
    # the cache must be byte-neutral before its timings mean anything
    assert dumps_traceset(hit) == dumps_traceset(ts)

    best_gen = best_load = 9e9
    for _ in range(max(REPS, 3)):
        seconds, _ = _timed(gen)
        best_gen = min(best_gen, seconds)
        seconds, loaded = _timed(
            lambda: cache.get(name, scale=SCALE, seed=SEED)
        )
        assert loaded is not None
        best_load = min(best_load, seconds)
    return {
        "program": name,
        "records": ts.total_records(),
        "generate_seconds": round(best_gen, 4),
        "warm_load_seconds": round(best_load, 5),
        "warm_speedup": round(best_gen / best_load, 1),
    }


def test_tracegen_throughput():
    baseline = None
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH) as fh:
            baseline = json.load(fh).get("tracegen")

    programs = {}
    for name in sorted(WORKLOADS):
        programs[name] = _measure_program(name)

    total_records = sum(c["records"] for c in programs.values())
    total_bulk = sum(c["bulk_seconds"] for c in programs.values())
    total_scalar = sum(c["scalar_seconds"] for c in programs.values())
    emission = _measure_emission(
        WORKLOADS[CACHE_PROGRAM](scale=SCALE, seed=SEED).generate()
    )
    with tempfile.TemporaryDirectory() as tmp:
        cache_cell = _measure_cache_cell(CACHE_PROGRAM, Path(tmp))
        suite_warm = _measure_suite_warm(Path(tmp))

    aggregate = {
        "records": total_records,
        "bulk_seconds": round(total_bulk, 4),
        "scalar_seconds": round(total_scalar, 4),
        "bulk_records_per_sec": round(total_records / total_bulk),
        "speedup": round(total_scalar / total_bulk, 3),
    }
    # the frozen pre-bulk generation time (whole registry, per-record
    # emission *and* pre-vectorization model loops), measured once at
    # the commit that introduced the bulk path and carried forward
    # unchanged in the committed baseline -- the bus cells' pattern
    if baseline is not None:
        frozen = baseline.get("aggregate", {}).get("pre_bulk_seconds")
        if frozen is not None:
            aggregate["pre_bulk_seconds"] = frozen
            aggregate["speedup_vs_pre_bulk"] = round(frozen / total_bulk, 3)

    report = {
        "protocol": (
            f"process_time, adjacent bulk/scalar runs, best of {REPS}; "
            f"every registry program generated at scale {SCALE} seed "
            f"{SEED}; bulk is the default chunked-ndarray emission path, "
            "scalar replays the same workload record-by-record through "
            "the per-record builder API; the emission cell streams one "
            "real traceset's records through both builder APIs in "
            "isolation (bulk side pays its deferred finish-time "
            "validation); the cache cells time fresh generation against "
            "warm mmap loads from a TraceCache; pre_bulk_seconds is the "
            "frozen pre-bulk-path generation time, carried forward"
        ),
        "programs": programs,
        "aggregate": aggregate,
        "emission": emission,
        "cache": cache_cell,
        "suite_warm": suite_warm,
    }

    OUTPUT_DIR.mkdir(exist_ok=True)
    with open(OUTPUT_DIR / "BENCH_tracegen.json", "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")

    # sanity floors that hold on any machine
    assert report["aggregate"]["bulk_records_per_sec"] > 100_000, report
    assert cache_cell["warm_speedup"] > 1, cache_cell

    if not ENFORCE:
        return

    problems = []
    # the bulk path must still pay for itself against its own reference...
    if report["aggregate"]["speedup"] < 1 - TOLERANCE:
        problems.append(
            f"aggregate: bulk emission {report['aggregate']['speedup']}x "
            "vs the scalar reference"
        )
    # ...the emission layer itself must stay decisively vectorized...
    if emission["speedup"] < 3.0:
        problems.append(
            f"emission: bulk append only {emission['speedup']}x the "
            "per-record API (floor 3x)"
        )
    # ...a warm cache hit must stay decisively cheaper than regenerating...
    if cache_cell["warm_speedup"] < CACHE_FLOOR:
        problems.append(
            f"cache/{cache_cell['program']}: warm load only "
            f"{cache_cell['warm_speedup']}x faster than regenerating "
            f"(floor {CACHE_FLOOR}x)"
        )
    # ...and nothing may regress vs the committed baseline
    if baseline is not None:
        base = baseline["aggregate"]["bulk_records_per_sec"]
        got = report["aggregate"]["bulk_records_per_sec"]
        if got < base * (1 - TOLERANCE):
            problems.append(
                f"aggregate: {got} records/sec is >{TOLERANCE:.0%} below "
                f"the committed baseline {base}"
            )
        missing = sorted(set(report["programs"]) - set(baseline.get("programs", {})))
        stale = sorted(set(baseline.get("programs", {})) - set(report["programs"]))
        if missing or stale:
            problems.append(
                "committed tracegen baseline is out of sync with the "
                f"registry (missing: {missing or 'none'}, stale: "
                f"{stale or 'none'}); regenerate it and copy "
                "benchmarks/output/BENCH_tracegen.json over the root "
                "file's 'tracegen' section"
            )
    else:
        problems.append(
            f"committed baseline {BASELINE_PATH} has no 'tracegen' section"
        )
    if problems:
        pytest.fail(
            "trace-generation throughput regression:\n  "
            + "\n  ".join(problems),
            pytrace=False,
        )
