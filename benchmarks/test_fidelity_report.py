"""The fidelity scorecard: every compared cell of Tables 3-8 against the
published numbers, with honest tolerance bands.

This is the machine-checkable core of EXPERIMENTS.md: the benchmark
renders the full cell-by-cell report to ``benchmarks/output/`` and
asserts that (a) a large majority of cells sit inside their bands and
(b) the specific cells the paper's conclusions rest on are among them.
"""

from repro.core.comparison import fidelity_checks, render_fidelity_report

from .conftest import save_table


def test_fidelity_report(benchmark, cache, output_dir):
    suite = cache.suite()

    def check():
        return fidelity_checks(suite)

    checks = benchmark.pedantic(check, rounds=1, iterations=1)
    save_table(output_dir, "fidelity_report", render_fidelity_report(checks))

    assert len(checks) > 60  # broad coverage of the tables
    ok = sum(1 for c in checks if c.ok)
    assert ok / len(checks) >= 0.85, f"only {ok}/{len(checks)} cells in band"

    # the cells the conclusions rest on must be inside their bands
    by_key = {(c.table, c.program, c.metric): c for c in checks}
    critical = [
        (3, "grav", "utilization %"),
        (3, "pdsa", "utilization %"),
        (3, "grav", "lock stall %"),
        (3, "topopt", "miss stall %"),
        (4, "grav", "waiters at transfer"),
        (4, "pdsa", "waiters at transfer"),
        (4, "pverify", "waiters at transfer"),
        (4, "grav", "transfers (scaled)"),
        (5, "grav", "utilization %"),
        (6, "grav", "waiters at transfer"),
        (7, "grav", "WO difference %"),
        (7, "qsort", "WO difference %"),
        (7, "qsort", "write hit %"),
        (8, "grav", "waiters at transfer"),
    ]
    for key in critical:
        assert key in by_key, key
        assert by_key[key].ok, (key, by_key[key])
