"""Hot-path throughput benchmark and perf-smoke gate.

Not a paper artifact: this watches the private-window fast path (see
docs/performance.md).  Two synthetic single-processor "hot loop" traces
-- all-private, bus-free after the cold pass, so nearly every record is
fast-path eligible -- are simulated with ``fast_path`` on and off, and
each suite program's (queuing, SC) cell is timed with the fast path on.
Throughput is reported as trace references per second and engine events
per second, and the full report is written to
``benchmarks/output/BENCH_hotpath.json``.

Measurement protocol: the fast/reference runs of each trace are timed
*adjacently* (same process, alternating) with ``time.process_time`` and
best-of-N is kept per mode, because wall-clock drift between separated
runs on a shared machine easily exceeds the effect being measured.

Perf smoke: when ``REPRO_PERF_ENFORCE`` is set (the CI perf-smoke job
does this), the measured fast-path refs/sec for both hot-loop traces is
compared against the committed baseline ``BENCH_hotpath.json`` at the
repository root and the test fails on a regression of more than 25%,
and also fails if the fast path is more than 25% *slower* than the
reference path on its own home turf.  Regenerate the root baseline on a
quiet machine with::

    PYTHONPATH=src python -m pytest benchmarks/test_hotpath_throughput.py -q
    cp benchmarks/output/BENCH_hotpath.json BENCH_hotpath.json
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.consistency import SEQUENTIAL
from repro.machine.config import MachineConfig
from repro.machine.system import System
from repro.sync import QueuingLockManager
from repro.trace.layout import PRIVATE_BASE, AddressLayout
from repro.trace.records import IBLOCK, READ, RECORD_DTYPE, WRITE, Trace, TraceSet
from repro.workloads.registry import BENCHMARK_ORDER, generate_trace

ROOT = Path(__file__).resolve().parent.parent
OUTPUT_DIR = Path(__file__).parent / "output"
BASELINE_PATH = ROOT / "BENCH_hotpath.json"

#: paired repetitions per (trace, mode); raise for quieter numbers
REPS = int(os.environ.get("REPRO_PERF_REPS", "5"))
ENFORCE = bool(os.environ.get("REPRO_PERF_ENFORCE"))
#: allowed refs/sec regression vs the committed baseline
TOLERANCE = 0.25

HOTLOOP_RECORDS = 400_000
HOTLOOP_LINES = 512
HOTLOOP_SEED = 7


def _make_hotloop(name: str, ib_args: tuple[int, int], d_args: tuple[int, int]):
    """A single-processor trace whose working set (512 data + 512 code
    lines at 16 bytes/line) fits the default cache: after the cold pass
    every access hits, no bus traffic, all fast-path eligible."""
    rng = np.random.default_rng(HOTLOOP_SEED)
    n, lines, lb = HOTLOOP_RECORDS, HOTLOOP_LINES, 16
    rec = np.zeros(n, dtype=RECORD_DTYPE)
    kinds = rng.choice([IBLOCK, READ, WRITE], size=n, p=[0.5, 0.3, 0.2])
    is_ib = kinds == IBLOCK
    arg = np.where(
        is_ib,
        rng.integers(ib_args[0], ib_args[1] + 1, size=n),
        rng.integers(d_args[0], d_args[1] + 1, size=n),
    )
    line_idx = rng.integers(0, lines, size=n)
    rec["kind"] = kinds
    rec["addr"] = np.where(is_ib, PRIVATE_BASE + lines * lb, PRIVATE_BASE) + line_idx * lb
    rec["arg"] = arg
    rec["cycles"] = np.where(is_ib, arg, 0)
    return TraceSet(
        [Trace(rec, proc=0, program=name)], AddressLayout(n_procs=1), program=name
    )


#: word-granular accesses only: every record stays within one line, so
#: the fast path's packed single-line codes carry the whole trace
def _single_line():
    return _make_hotloop("hotloop-single", ib_args=(4, 4), d_args=(4, 4))


#: instruction blocks span 2-4 lines: exercises the tuple (span) codes
def _mixed():
    return _make_hotloop("hotloop-mixed", ib_args=(8, 16), d_args=(1, 4))


def _timed_run(ts, fast: bool):
    cfg = MachineConfig(n_procs=ts.n_procs, fast_path=fast)
    system = System(ts, cfg, QueuingLockManager(), SEQUENTIAL)
    gc.collect()
    t0 = time.process_time()
    result = system.run()
    seconds = time.process_time() - t0
    return seconds, result, system.engine.dispatched_total


def _measure_pair(make_ts):
    """Best-of-REPS for fast and reference, interleaved so both modes
    see the same machine conditions."""
    ts = make_ts()
    _timed_run(ts, True)  # warm: imports, fast-path table build
    _timed_run(ts, False)
    best = {True: (9e9, None, 0), False: (9e9, None, 0)}
    for _ in range(REPS):
        for fast in (True, False):
            seconds, result, events = _timed_run(ts, fast)
            if seconds < best[fast][0]:
                best[fast] = (seconds, result, events)
    refs = sum(m.refs_processed for m in best[True][1].proc_metrics)
    assert refs == sum(m.refs_processed for m in best[False][1].proc_metrics)

    def mode(fast):
        seconds, _result, events = best[fast]
        return {
            "seconds": round(seconds, 4),
            "refs_per_sec": round(refs / seconds),
            "events_per_sec": round(events / seconds),
        }

    report = {
        "records": HOTLOOP_RECORDS,
        "refs": refs,
        "fast": mode(True),
        "reference": mode(False),
    }
    report["speedup"] = round(
        report["fast"]["refs_per_sec"] / report["reference"]["refs_per_sec"], 3
    )
    return report


def _measure_audit_cell(program: str):
    """One suite cell timed with and without the runtime invariant
    auditor (repro.audit).  The auditor's contract is <2x overhead: it
    must stay cheap enough to leave on in every CI simulation."""
    ts = generate_trace(program, scale=1.0, seed=1991)

    def run(audited: bool) -> float:
        cfg = MachineConfig(n_procs=ts.n_procs, audit=audited)
        system = System(ts, cfg, QueuingLockManager(), SEQUENTIAL)
        gc.collect()
        t0 = time.process_time()
        system.run()
        return time.process_time() - t0

    run(True)  # warm
    run(False)
    best = {True: 9e9, False: 9e9}
    for _ in range(3):
        for audited in (True, False):
            best[audited] = min(best[audited], run(audited))
    return {
        "program": program,
        "seconds_plain": round(best[False], 4),
        "seconds_audited": round(best[True], 4),
        "overhead": round(best[True] / best[False], 3),
    }


def _measure_suite_cell(program: str):
    ts = generate_trace(program, scale=1.0, seed=1991)
    _timed_run(ts, True)  # warm
    best = 9e9
    result = events = None
    for _ in range(3):
        seconds, r, e = _timed_run(ts, True)
        if seconds < best:
            best, result, events = seconds, r, e
    refs = sum(m.refs_processed for m in result.proc_metrics)
    return {
        "seconds": round(best, 4),
        "refs_per_sec": round(refs / best),
        "events_per_sec": round(events / best),
    }


def test_hotpath_throughput():
    report = {
        "protocol": (
            f"process_time, adjacent fast/reference runs, best of {REPS}; "
            "hot loops are 400k-record private working sets (single-line "
            "word accesses / mixed with 8-16 word iblocks); suite cells "
            "are (queuing, SC) at scale 1.0 with the fast path on; the "
            "audit cell times the same run with the invariant auditor "
            "attached (raise mode), best of 3"
        ),
        "hotloop_single": _measure_pair(_single_line),
        "hotloop_mixed": _measure_pair(_mixed),
        "suite": {p: _measure_suite_cell(p) for p in BENCHMARK_ORDER},
        "audit": _measure_audit_cell("pverify"),
    }

    OUTPUT_DIR.mkdir(exist_ok=True)
    out = OUTPUT_DIR / "BENCH_hotpath.json"
    with open(out, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")

    # sanity floors that hold on any machine
    for key in ("hotloop_single", "hotloop_mixed"):
        assert report[key]["fast"]["refs_per_sec"] > 100_000, report[key]

    if not ENFORCE:
        return

    # perf smoke (CI): the fast path must still pay for itself at home...
    problems = []
    for key in ("hotloop_single", "hotloop_mixed"):
        if report[key]["speedup"] < 1 - TOLERANCE:
            problems.append(
                f"{key}: fast path {report[key]['speedup']}x vs reference"
            )
    # ...the auditor must stay within its advertised overhead budget...
    if report["audit"]["overhead"] > 2.0:
        problems.append(
            f"audit: {report['audit']['overhead']}x overhead exceeds the 2x budget"
        )
    # ...and absolute throughput must not regress vs the committed baseline
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH) as fh:
            baseline = json.load(fh)
        for key in ("hotloop_single", "hotloop_mixed"):
            base = baseline[key]["fast"]["refs_per_sec"]
            got = report[key]["fast"]["refs_per_sec"]
            if got < base * (1 - TOLERANCE):
                problems.append(
                    f"{key}: {got} refs/sec is >{TOLERANCE:.0%} below the "
                    f"committed baseline {base}"
                )
    else:
        problems.append(f"committed baseline {BASELINE_PATH} is missing")
    if problems:
        pytest.fail(
            "hot-path throughput regression:\n  " + "\n  ".join(problems),
            pytrace=False,
        )
