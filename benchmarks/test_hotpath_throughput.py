"""Hot-path throughput benchmark and perf-smoke gate.

Not a paper artifact: this watches the four differentially-verified
fast paths (see docs/performance.md).  Two synthetic single-processor
"hot loop" traces -- all-private, bus-free after the cold pass, so
nearly every record is fast-path eligible -- are simulated with
``fast_path`` on and off; each suite program's (queuing, SC) cell is
timed with the window fast path on; the two most bus-bound suite cells
(qsort, pdsa) are additionally timed with ``bus_fast_path`` on and off
(the *contended path* cells); and the same two hot loops are timed in
three interleaved modes -- full production, production minus the
kernel, and the reference interpreter -- (the *kernel* cells, where the
quiet machine lets the columnar kernel collapse nearly the whole
trace).  Four *spin cells* time contended 4-processor hot loops (two
shapes, under ticket and backoff) with the spin-phase collapse kernel
on and off, paired-adjacent; they live in the ``locks`` section next to
the lock-zoo sweep.  Throughput is reported as trace references per
second and engine events per second.

Axis isolation: every section except the kernel and audit cells pins
``segment_kernel=False``, so the hot-loop pair still measures the window
fast path alone (with the kernel at its default the quiet hot loop
would be collapsed columnar on *both* sides) and the suite/bus numbers
stay comparable to the pre-kernel committed baselines.  The kernel
cells report two paired ratios: ``speedup_vs_reference`` (the
end-to-end claim, held to a 5x floor) and ``speedup_vs_fastpath`` (the
kernel's own contribution over the already-optimized interpreter).

Measurement protocol: the fast/reference runs of each trace are timed
*adjacently* (same process, alternating) with ``time.process_time`` and
best-of-N is kept per mode, because wall-clock drift between separated
runs on a shared machine easily exceeds the effect being measured.  For
the bus cells the reference mode restores the committed-baseline
implementation of the whole contended-path bundle (arbiter, event
chaining, engine dispatch, LRU touch, issue path), so the paired ratio
*is* the end-to-end speedup of the bundle vs the committed baseline,
measured under identical machine conditions.

The committed ``BENCH_hotpath.json`` at the repository root is the ONE
canonical baseline; the run's report is written to the scratch file
``benchmarks/output/BENCH_hotpath.json`` (not tracked), and the enforce
mode fails if the scratch report's structure has drifted from the
committed baseline (a reminder to re-sync it).

Perf smoke: when ``REPRO_PERF_ENFORCE`` is set (the CI perf-smoke job
does this), the measured fast-path refs/sec for both hot-loop traces is
compared against the committed baseline at the repository root and the
test fails on a regression of more than 25%; it also fails if either
fast path is more than 25% *slower* than its reference mode on its own
home turf, if the bus cells' paired speedup regresses more than 25%
below the baseline's recorded speedup, or if a kernel cell's speedup
over the reference interpreter drops below the 5x design floor (or
more than 25% below its baseline, or under 90% quiet-trace coverage,
or under break-even vs the window fast path), or if a spin cell's
paired speedup drops below the 3x design floor (or never collapses a
phase).  Regenerate the root baseline on a quiet machine with::

    PYTHONPATH=src python -m pytest benchmarks/test_hotpath_throughput.py -q
    cp benchmarks/output/BENCH_hotpath.json BENCH_hotpath.json
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.consistency import SEQUENTIAL
from repro.machine.config import MachineConfig
from repro.machine.system import System
from repro.sync import QueuingLockManager
from repro.trace.layout import PRIVATE_BASE, AddressLayout
from repro.trace.records import IBLOCK, READ, RECORD_DTYPE, WRITE, Trace, TraceSet
from repro.workloads.registry import BENCHMARK_ORDER, generate_trace

ROOT = Path(__file__).resolve().parent.parent
OUTPUT_DIR = Path(__file__).parent / "output"
BASELINE_PATH = ROOT / "BENCH_hotpath.json"

#: paired repetitions per (trace, mode); raise for quieter numbers
REPS = int(os.environ.get("REPRO_PERF_REPS", "5"))
ENFORCE = bool(os.environ.get("REPRO_PERF_ENFORCE"))
#: allowed refs/sec regression vs the committed baseline
TOLERANCE = 0.25

#: the two most bus-bound suite cells: the contended-path (bus fast
#: path) cells time exactly these
BUS_CELLS = ("qsort", "pdsa")

HOTLOOP_RECORDS = 400_000
HOTLOOP_LINES = 512
HOTLOOP_SEED = 7


def _make_hotloop(name: str, ib_args: tuple[int, int], d_args: tuple[int, int]):
    """A single-processor trace whose working set (512 data + 512 code
    lines at 16 bytes/line) fits the default cache: after the cold pass
    every access hits, no bus traffic, all fast-path eligible."""
    rng = np.random.default_rng(HOTLOOP_SEED)
    n, lines, lb = HOTLOOP_RECORDS, HOTLOOP_LINES, 16
    rec = np.zeros(n, dtype=RECORD_DTYPE)
    kinds = rng.choice([IBLOCK, READ, WRITE], size=n, p=[0.5, 0.3, 0.2])
    is_ib = kinds == IBLOCK
    arg = np.where(
        is_ib,
        rng.integers(ib_args[0], ib_args[1] + 1, size=n),
        rng.integers(d_args[0], d_args[1] + 1, size=n),
    )
    line_idx = rng.integers(0, lines, size=n)
    rec["kind"] = kinds
    rec["addr"] = np.where(is_ib, PRIVATE_BASE + lines * lb, PRIVATE_BASE) + line_idx * lb
    rec["arg"] = arg
    rec["cycles"] = np.where(is_ib, arg, 0)
    return TraceSet(
        [Trace(rec, proc=0, program=name)], AddressLayout(n_procs=1), program=name
    )


#: word-granular accesses only: every record stays within one line, so
#: the fast path's packed single-line codes carry the whole trace
def _single_line():
    return _make_hotloop("hotloop-single", ib_args=(4, 4), d_args=(4, 4))


#: instruction blocks span 2-4 lines: exercises the tuple (span) codes
def _mixed():
    return _make_hotloop("hotloop-mixed", ib_args=(8, 16), d_args=(1, 4))


def _timed_run(ts, fast: bool):
    # segment_kernel pinned off: these pairs isolate the window fast
    # path, and the suite/bus seconds stay comparable to pre-kernel
    # committed baselines; the kernel has its own paired cells below
    cfg = MachineConfig(n_procs=ts.n_procs, fast_path=fast, segment_kernel=False)
    system = System(ts, cfg, QueuingLockManager(), SEQUENTIAL)
    gc.collect()
    t0 = time.process_time()
    result = system.run()
    seconds = time.process_time() - t0
    return seconds, result, system.engine.dispatched_total


def _measure_pair(make_ts):
    """Best-of-REPS for fast and reference, interleaved so both modes
    see the same machine conditions."""
    ts = make_ts()
    _timed_run(ts, True)  # warm: imports, fast-path table build
    _timed_run(ts, False)
    best = {True: (9e9, None, 0), False: (9e9, None, 0)}
    for _ in range(REPS):
        for fast in (True, False):
            seconds, result, events = _timed_run(ts, fast)
            if seconds < best[fast][0]:
                best[fast] = (seconds, result, events)
    refs = sum(m.refs_processed for m in best[True][1].proc_metrics)
    assert refs == sum(m.refs_processed for m in best[False][1].proc_metrics)

    def mode(fast):
        seconds, _result, events = best[fast]
        return {
            "seconds": round(seconds, 4),
            "refs_per_sec": round(refs / seconds),
            "events_per_sec": round(events / seconds),
        }

    report = {
        "records": HOTLOOP_RECORDS,
        "refs": refs,
        "fast": mode(True),
        "reference": mode(False),
    }
    report["speedup"] = round(
        report["fast"]["refs_per_sec"] / report["reference"]["refs_per_sec"], 3
    )
    return report


def _measure_audit_cell(program: str):
    """One suite cell timed with and without the runtime invariant
    auditor (repro.audit).  The auditor's contract is <2x overhead: it
    must stay cheap enough to leave on in every CI simulation."""
    ts = generate_trace(program, scale=1.0, seed=1991)

    def run(audited: bool) -> float:
        cfg = MachineConfig(n_procs=ts.n_procs, audit=audited)
        system = System(ts, cfg, QueuingLockManager(), SEQUENTIAL)
        gc.collect()
        t0 = time.process_time()
        system.run()
        return time.process_time() - t0

    run(True)  # warm
    run(False)
    best = {True: 9e9, False: 9e9}
    for _ in range(3):
        for audited in (True, False):
            best[audited] = min(best[audited], run(audited))
    return {
        "program": program,
        "seconds_plain": round(best[False], 4),
        "seconds_audited": round(best[True], 4),
        "overhead": round(best[True] / best[False], 3),
    }


def _measure_bus_cell(program: str, baseline: dict | None):
    """One bus-bound suite cell timed with the contended-path fast path
    (``MachineConfig.bus_fast_path``) on and off, paired-adjacent.

    Off restores the committed-baseline implementation of the whole
    contended-path bundle, so ``speedup_paired`` is the end-to-end
    speedup of the bundle vs the committed baseline under identical
    machine conditions.  ``speedup_vs_baseline`` additionally compares
    against the frozen pre-bundle wall time recorded in the committed
    baseline (carried forward unchanged across regenerations); it spans
    machine windows, so it is reported but enforced only through the
    paired number."""
    ts = generate_trace(program, scale=1.0, seed=1991)

    def run(fast_bus: bool) -> float:
        cfg = MachineConfig(
            n_procs=ts.n_procs, bus_fast_path=fast_bus, segment_kernel=False
        )
        system = System(ts, cfg, QueuingLockManager(), SEQUENTIAL)
        gc.collect()
        t0 = time.process_time()
        system.run()
        return time.process_time() - t0

    run(True)  # warm
    run(False)
    best = {True: 9e9, False: 9e9}
    for _ in range(REPS):
        for fast_bus in (True, False):
            best[fast_bus] = min(best[fast_bus], run(fast_bus))

    # the frozen pre-bundle time: carried forward from the committed
    # baseline's bus cell if it has one, else seeded from the committed
    # suite cell seconds (the pre-bundle measurement of this program)
    frozen = None
    if baseline is not None:
        try:
            frozen = baseline["bus"][program]["baseline_seconds"]
        except KeyError:
            try:
                frozen = baseline["suite"][program]["seconds"]
            except KeyError:
                pass
    cell = {
        "program": program,
        "seconds_fast": round(best[True], 4),
        "seconds_reference": round(best[False], 4),
        "speedup_paired": round(best[False] / best[True], 3),
    }
    if frozen is not None:
        cell["baseline_seconds"] = frozen
        cell["speedup_vs_baseline"] = round(frozen / best[True], 3)
    return cell


#: the three kernel-cell modes: full production, production minus the
#: kernel (the window fast path still batch-retires the quiet loop),
#: and the record-by-record reference interpreter
_KERNEL_MODES = {
    "kernel": {},
    "fastpath": {"segment_kernel": False},
    "reference": {
        "fast_path": False,
        "bus_fast_path": False,
        "segment_kernel": False,
    },
}


def _measure_kernel_pair(make_ts):
    """One hot-loop trace timed in the three ``_KERNEL_MODES``,
    interleaved.  ``speedup_vs_reference`` (kernel vs the reference
    interpreter) is the end-to-end claim the 5x design floor enforces;
    ``speedup_vs_fastpath`` (kernel vs the already-optimized window
    fast path) isolates the kernel's own contribution on its home turf
    (a machine-quiet private loop it collapses nearly whole)."""
    ts = make_ts()

    def run(mode: str):
        cfg = MachineConfig(n_procs=ts.n_procs, **_KERNEL_MODES[mode])
        system = System(ts, cfg, QueuingLockManager(), SEQUENTIAL)
        gc.collect()
        t0 = time.process_time()
        result = system.run()
        seconds = time.process_time() - t0
        return seconds, result, system.kernel

    for mode in _KERNEL_MODES:  # warm: imports, table builds
        run(mode)
    best = {mode: (9e9, None, None) for mode in _KERNEL_MODES}
    for _ in range(REPS):
        for mode in _KERNEL_MODES:
            out = run(mode)
            if out[0] < best[mode][0]:
                best[mode] = out
    refs = {
        mode: sum(m.refs_processed for m in best[mode][1].proc_metrics)
        for mode in _KERNEL_MODES
    }
    assert len(set(refs.values())) == 1, refs
    kernel = best["kernel"][2]
    total = sum(len(t.records) for t in ts)
    cell = {
        "records": total,
        "segments": kernel.segments,
        "records_collapsed": kernel.records,
        "coverage": round(kernel.records / total, 4),
    }
    for mode in _KERNEL_MODES:
        cell[f"seconds_{mode}"] = round(best[mode][0], 4)
    t_kern = best["kernel"][0]
    cell["speedup_vs_reference"] = round(best["reference"][0] / t_kern, 3)
    cell["speedup_vs_fastpath"] = round(best["fastpath"][0] / t_kern, 3)
    return cell


#: the lock-zoo sweep: the most lock-bound suite program timed under
#: every scheme on the differential grid's lock axis (repro.testing.
#: LOCK_SCHEMES), full production configuration.  Watches for a manager
#: whose per-grant bookkeeping quietly turns contended cells quadratic.
LOCK_SWEEP_PROGRAM = "qsort"

#: contended-workload cells for the spin-phase collapse kernel: four
#: processors hammering one shared lock, each critical section a
#: private hit loop.  Two shapes -- grav-shaped (few long critical
#: sections) and pdsa-shaped (many short ones) -- under the two
#: spin-heavy signature kinds the kernel certifies: ticket (idle
#: signature, queue-parked waiters) and backoff (timer signature,
#: backed-off retries).  Each cell is a paired spin-on/off measurement;
#: the ENFORCE floor for ``speedup_spin`` is 3x.
SPIN_FLOOR = 3.0
SPIN_CELLS = {
    "spin_grav_ticket": ("spin-grav", "ticket", 20, 2000, 7),
    "spin_grav_backoff": ("spin-grav", "backoff", 20, 2000, 7),
    "spin_pdsa_ticket": ("spin-pdsa", "ticket", 40, 1000, 9),
    "spin_pdsa_backoff": ("spin-pdsa", "backoff", 40, 1000, 9),
}

SPIN_PROCS = 4
SPIN_SPAN = 64  # private working-set lines per processor


def _make_contended(name: str, iters: int, hot: int, reads: int):
    """Four processors contending on one shared lock; the critical
    sections are dense private hit loops (compact addresses keep the
    kernel's columnar retirement on its dense-scatter path)."""
    from repro.trace.builder import TraceBuilder

    layout = AddressLayout(n_procs=SPIN_PROCS)
    lock = layout.alloc_lock()
    traces = []
    for p in range(SPIN_PROCS):
        b = TraceBuilder(p, layout, program=name, check=False)
        base = layout.alloc_private(p, (SPIN_SPAN + 16) * 16)
        code = base + SPIN_SPAN * 16
        for j in range(SPIN_SPAN):  # warm: later reads all hit
            b.read(base + 16 * j)
        for _ in range(iters):
            b.lock(0, lock)
            for j in range(hot):
                b.block(1, 1, code + 16 * (j % 16))
                for k in range(reads):
                    b.read(base + 16 * ((j * reads + k) % SPIN_SPAN))
            b.unlock(0, lock)
        traces.append(b.finish())
    return TraceSet(traces, layout, program=name)


def _measure_spin_cell(program: str, scheme: str, iters: int, hot: int, reads: int):
    """One contended cell timed with ``spin_kernel`` on and off,
    paired-adjacent best of 3.  Off is the full pre-spin production
    configuration (window fast path, bus fast path and segment kernel
    all on), so ``speedup_spin`` isolates the spin-phase collapse
    kernel's own contribution on a lock-wait-bound workload."""
    from repro.sync import get_lock_manager

    ts = _make_contended(program, iters, hot, reads)

    def run(spin: bool):
        cfg = MachineConfig(n_procs=SPIN_PROCS, spin_kernel=spin)
        system = System(ts, cfg, get_lock_manager(scheme), SEQUENTIAL)
        gc.collect()
        t0 = time.process_time()
        result = system.run()
        seconds = time.process_time() - t0
        return seconds, result, system.kernel

    run(True)  # warm
    run(False)
    best = {True: (9e9, None, None), False: (9e9, None, None)}
    for _ in range(3):
        for spin in (True, False):
            out = run(spin)
            if out[0] < best[spin][0]:
                best[spin] = out
    refs = sum(m.refs_processed for m in best[True][1].proc_metrics)
    assert refs == sum(m.refs_processed for m in best[False][1].proc_metrics)
    kernel = best[True][2]
    return {
        "program": program,
        "scheme": scheme,
        "refs": refs,
        "seconds": round(best[True][0], 4),
        "seconds_nospin": round(best[False][0], 4),
        "refs_per_sec": round(refs / best[True][0]),
        "speedup_spin": round(best[False][0] / best[True][0], 3),
        "spin_segments": kernel.spin_segments,
        "spin_waiters": kernel.spin_waiters,
    }


def _measure_lock_cells():
    """The lock-zoo sweep plus the paired spin-kernel contended cells;
    every cell carries ``refs_per_sec`` so the generic no-regression
    check covers the whole section."""
    from repro.sync import get_lock_manager
    from repro.testing import LOCK_SCHEMES

    ts = generate_trace(LOCK_SWEEP_PROGRAM, scale=1.0, seed=1991)

    def run(scheme: str):
        cfg = MachineConfig(n_procs=ts.n_procs)
        system = System(ts, cfg, get_lock_manager(scheme), SEQUENTIAL)
        gc.collect()
        t0 = time.process_time()
        result = system.run()
        return time.process_time() - t0, result

    cells = {}
    for scheme in LOCK_SCHEMES:
        run(scheme)  # warm
        best, result = 9e9, None
        for _ in range(3):
            seconds, r = run(scheme)
            if seconds < best:
                best, result = seconds, r
        refs = sum(m.refs_processed for m in result.proc_metrics)
        cells[scheme] = {
            "seconds": round(best, 4),
            "refs_per_sec": round(refs / best),
            "transfers": result.lock_stats.transfers,
        }
    for name, (program, scheme, iters, hot, reads) in SPIN_CELLS.items():
        cells[name] = _measure_spin_cell(program, scheme, iters, hot, reads)
    return cells


def _measure_suite_cell(program: str):
    ts = generate_trace(program, scale=1.0, seed=1991)
    _timed_run(ts, True)  # warm
    best = 9e9
    result = events = None
    for _ in range(3):
        seconds, r, e = _timed_run(ts, True)
        if seconds < best:
            best, result, events = seconds, r, e
    refs = sum(m.refs_processed for m in result.proc_metrics)
    return {
        "seconds": round(best, 4),
        "refs_per_sec": round(refs / best),
        "events_per_sec": round(events / best),
    }


def test_hotpath_throughput():
    baseline = None
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH) as fh:
            baseline = json.load(fh)

    report = {
        "protocol": (
            f"process_time, adjacent fast/reference runs, best of {REPS}; "
            "hot loops are 400k-record private working sets (single-line "
            "word accesses / mixed with 8-16 word iblocks); suite cells "
            "are (queuing, SC) at scale 1.0 with the fast path on; bus "
            "cells time the same (queuing, SC) cell with bus_fast_path "
            "on/off paired-adjacent; kernel cells time the hot loops "
            "in three interleaved modes (production / no kernel / "
            "reference interpreter); the audit cell times the same run "
            "with the invariant auditor attached (raise mode), best of 3; "
            "lock cells time the qsort (SC, scale 1.0) cell under every "
            "scheme on the differential grid's lock axis, best of 3; "
            "spin cells time 4-processor contended hot loops (grav-shaped "
            "20x2000 and pdsa-shaped 40x1000 critical sections) under "
            "ticket and backoff with spin_kernel on/off paired-adjacent, "
            "best of 3"
        ),
        "hotloop_single": _measure_pair(_single_line),
        "hotloop_mixed": _measure_pair(_mixed),
        "suite": {p: _measure_suite_cell(p) for p in BENCHMARK_ORDER},
        "bus": {p: _measure_bus_cell(p, baseline) for p in BUS_CELLS},
        "locks": _measure_lock_cells(),
        "kernel": {
            "hotloop_single": _measure_kernel_pair(_single_line),
            "hotloop_mixed": _measure_kernel_pair(_mixed),
        },
        "audit": _measure_audit_cell("pverify"),
    }

    OUTPUT_DIR.mkdir(exist_ok=True)
    out = OUTPUT_DIR / "BENCH_hotpath.json"
    with open(out, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")

    # sanity floors that hold on any machine
    for key in ("hotloop_single", "hotloop_mixed"):
        assert report[key]["fast"]["refs_per_sec"] > 100_000, report[key]

    if not ENFORCE:
        return

    # perf smoke (CI): the fast paths must still pay for themselves at home...
    problems = []
    for key in ("hotloop_single", "hotloop_mixed"):
        if report[key]["speedup"] < 1 - TOLERANCE:
            problems.append(
                f"{key}: fast path {report[key]['speedup']}x vs reference"
            )
    for prog, cell in report["bus"].items():
        if cell["speedup_paired"] < 1 - TOLERANCE:
            problems.append(
                f"bus/{prog}: contended fast path {cell['speedup_paired']}x "
                "vs its reference mode"
            )
    # ...the segment kernel must hold its 5x design floor on quiet loops
    # (paired ratios are machine-insensitive: same process, adjacent),
    # must pay for itself over the window fast path alone, and must keep
    # collapsing nearly the whole quiet trace...
    for name, cell in report["kernel"].items():
        if cell["speedup_vs_reference"] < 5.0:
            problems.append(
                f"kernel/{name}: {cell['speedup_vs_reference']}x vs the "
                "reference interpreter is below the 5x design floor"
            )
        if cell["speedup_vs_fastpath"] < 1 - TOLERANCE:
            problems.append(
                f"kernel/{name}: {cell['speedup_vs_fastpath']}x vs the "
                "window fast path -- the kernel no longer pays for itself"
            )
        if cell["coverage"] < 0.9:
            problems.append(
                f"kernel/{name}: collapsed only {cell['coverage']:.0%} of a "
                "machine-quiet trace"
            )
    # ...the spin-phase collapse kernel must hold its 3x design floor on
    # the contended cells (paired ratios: same process, adjacent runs)
    # and must actually be collapsing waiter-bearing phases...
    for name in SPIN_CELLS:
        cell = report["locks"][name]
        if cell["speedup_spin"] < SPIN_FLOOR:
            problems.append(
                f"locks/{name}: {cell['speedup_spin']}x vs the spin-off "
                f"production configuration is below the {SPIN_FLOOR}x "
                "design floor"
            )
        if cell["spin_segments"] == 0:
            problems.append(
                f"locks/{name}: the spin kernel never collapsed a phase "
                "on a lock-wait-bound workload"
            )
    # ...the auditor must stay within its advertised overhead budget...
    if report["audit"]["overhead"] > 2.0:
        problems.append(
            f"audit: {report['audit']['overhead']}x overhead exceeds the 2x budget"
        )
    # ...and nothing may regress vs the committed baseline
    if baseline is not None:
        for key in ("hotloop_single", "hotloop_mixed"):
            base = baseline[key]["fast"]["refs_per_sec"]
            got = report[key]["fast"]["refs_per_sec"]
            if got < base * (1 - TOLERANCE):
                problems.append(
                    f"{key}: {got} refs/sec is >{TOLERANCE:.0%} below the "
                    f"committed baseline {base}"
                )
        for prog, cell in report["bus"].items():
            base_cell = baseline.get("bus", {}).get(prog)
            if base_cell is not None:
                base = base_cell["speedup_paired"]
                if cell["speedup_paired"] < base * (1 - TOLERANCE):
                    problems.append(
                        f"bus/{prog}: paired speedup {cell['speedup_paired']}x "
                        f"is >{TOLERANCE:.0%} below the committed baseline "
                        f"{base}x"
                    )
        for name, cell in report["kernel"].items():
            base_cell = baseline.get("kernel", {}).get(name)
            if base_cell is not None:
                base = base_cell["speedup_vs_reference"]
                if cell["speedup_vs_reference"] < base * (1 - TOLERANCE):
                    problems.append(
                        f"kernel/{name}: speedup vs reference "
                        f"{cell['speedup_vs_reference']}x is >{TOLERANCE:.0%} "
                        f"below the committed baseline {base}x"
                    )
        # ...no lock scheme may regress on the contended sweep cell
        for scheme, cell in report["locks"].items():
            base_cell = baseline.get("locks", {}).get(scheme)
            if base_cell is not None:
                base = base_cell["refs_per_sec"]
                if cell["refs_per_sec"] < base * (1 - TOLERANCE):
                    problems.append(
                        f"locks/{scheme}: {cell['refs_per_sec']} refs/sec is "
                        f">{TOLERANCE:.0%} below the committed baseline {base}"
                    )
        # canonical-baseline sync check: the committed file must carry the
        # same sections/cells this benchmark produces (one canonical file;
        # benchmarks/output/ is scratch).  "tracegen" belongs to
        # test_tracegen_throughput.py and "service" to
        # test_service_latency.py; each syncs its own section.
        missing = sorted(set(report) - set(baseline))
        stale = sorted(set(baseline) - set(report) - {"tracegen", "service"})
        for section in ("suite", "bus", "kernel", "locks"):
            missing += [
                f"{section}.{k}"
                for k in sorted(
                    set(report[section]) - set(baseline.get(section, {}))
                )
            ]
            stale += [
                f"{section}.{k}"
                for k in sorted(
                    set(baseline.get(section, {})) - set(report[section])
                )
            ]
        if missing or stale:
            problems.append(
                "committed baseline BENCH_hotpath.json is out of sync with "
                f"this benchmark (missing: {missing or 'none'}, stale: "
                f"{stale or 'none'}); regenerate it on a quiet machine and "
                "copy benchmarks/output/BENCH_hotpath.json over the root file"
            )
    else:
        problems.append(f"committed baseline {BASELINE_PATH} is missing")
    if problems:
        pytest.fail(
            "hot-path throughput regression:\n  " + "\n  ".join(problems),
            pytrace=False,
        )
