"""Table 3: benchmark runtime statistics under queuing locks.

Times the full queuing/SC simulation sweep and checks the utilization
and stall-cause shape of the paper's central table.
"""

from repro.core.report import render_runtime_table
from repro.workloads.registry import BENCHMARK_ORDER

from .conftest import save_table


def test_table3_runtime_queuing(benchmark, cache, output_dir):
    def sweep():
        return {p: cache.run_fresh(p, "queuing", "sc") for p in BENCHMARK_ORDER}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # seed the shared cache so Tables 4/7 reuse these runs
    for p, r in results.items():
        cache._runs.setdefault((p, "queuing", "sc"), r)

    rows = [results[p] for p in BENCHMARK_ORDER]
    text = render_runtime_table(rows, 3, "Queuing Lock Implementation")
    save_table(output_dir, "table3_runtime_queuing", text)

    util = {p: r.avg_utilization for p, r in results.items()}
    # paper: 32.6 / 40.3 / 95.5 / 96.1 / 67.8 / 99.3
    assert util["grav"] < 0.55
    assert util["pdsa"] < 0.55
    assert 0.55 < util["qsort"] < 0.88
    for p in ("fullconn", "pverify", "topopt"):
        assert util[p] > 0.90, p
    # ordering: contended << qsort << the rest
    assert max(util["grav"], util["pdsa"]) < util["qsort"]
    assert util["qsort"] < min(util["fullconn"], util["pverify"], util["topopt"])

    # stall causes: lock-dominated vs miss-dominated split
    assert results["grav"].stall_pct_lock > 85
    assert results["pdsa"].stall_pct_lock > 85
    for p in ("pverify", "qsort", "topopt"):
        assert results[p].stall_pct_miss > 85, p
    assert results["fullconn"].stall_pct_miss > 70

    # run-time ordering: topopt is the longest run (paper: 13.8M cycles,
    # ~40% above the next)
    runtimes = {p: r.run_time for p, r in results.items()}
    assert runtimes["topopt"] == max(runtimes.values())
