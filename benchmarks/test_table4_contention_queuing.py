"""Table 4: lock contention statistics under queuing locks.

Checks the paper's contention fingerprint: Grav/Pdsa with more than half
the machine waiting at every transfer, Pverify with none despite holding
locks a third of the time, and transfer holds exceeding overall holds
for the contended programs.
"""

from repro.core.contention import contention_row
from repro.core.report import render_contention_table
from repro.workloads.registry import LOCKING_BENCHMARKS

from .conftest import save_table


def test_table4_contention_queuing(benchmark, cache, output_dir):
    results = {p: cache.simulate(p, "queuing", "sc") for p in LOCKING_BENCHMARKS}

    def assemble():
        return {p: contention_row(results[p]) for p in LOCKING_BENCHMARKS}

    rows = benchmark.pedantic(assemble, rounds=1, iterations=1)
    text = render_contention_table(
        [results[p] for p in LOCKING_BENCHMARKS], 4, "Queuing Lock Implementation"
    )
    save_table(output_dir, "table4_contention_queuing", text)

    # waiters at transfer (paper: 5.19, 6.18, 0.40, 0.00, 0.89)
    assert rows["grav"].waiters_at_transfer > 10 * 0.35
    assert rows["pdsa"].waiters_at_transfer > 12 * 0.35
    assert rows["pverify"].waiters_at_transfer < 0.2
    assert rows["fullconn"].waiters_at_transfer < 1.5
    assert rows["qsort"].waiters_at_transfer < 2.5

    # transfer counts ordering (paper: 28725 > 16977 >> 344 > 180 > 28)
    assert rows["grav"].transfers > rows["pdsa"].transfers
    assert rows["pdsa"].transfers > 10 * rows["fullconn"].transfers
    assert rows["pverify"].transfers < 20

    # contended programs: nearly every release is a transfer (paper:
    # ~45% of acquisitions for grav); pverify: nearly none
    assert rows["grav"].contended_fraction > 0.3
    assert rows["pverify"].contended_fraction < 0.05

    # hold times: transferring locks are held longer than average
    for p in ("grav", "pdsa"):
        assert rows[p].transfer_time_held > rows[p].time_held, p
    # pverify's simulated holds stay in the thousands of cycles
    assert rows["pverify"].time_held > 2000
    # qsort's stay the shortest
    assert rows["qsort"].time_held == min(r.time_held for r in rows.values())

    # the queuing hand-off is a few cycles (paper: 1.2-1.5; ours is a
    # 3-cycle cache-to-cache transfer plus arbitration)
    for p in ("grav", "pdsa"):
        assert rows[p].handoff_cycles < 8, (p, rows[p].handoff_cycles)
