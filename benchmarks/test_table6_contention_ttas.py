"""Table 6: lock contention statistics under T&T&S, plus the §3.2
decomposition of the slowdown.

The paper's two observations here: (a) the contention *pattern* (number
of transfers, waiters at transfer) is essentially the same as under
queuing locks -- contention is a program property, not a lock-scheme
property; (b) the run-time difference is explained by hand-off latency
(21-25 vs 1.2-1.5 cycles, ~78% of the increase), longer holds (~17%) and
extra bus load (the remainder; bus utilization doubles for Grav).
"""

from repro.core.contention import contention_row
from repro.core.decomposition import decompose_ttas_slowdown
from repro.core.report import render_contention_table, render_decomposition
from repro.workloads.registry import LOCKING_BENCHMARKS

from .conftest import save_table


def test_table6_contention_ttas(benchmark, cache, output_dir):
    results = {p: cache.simulate(p, "ttas", "sc") for p in LOCKING_BENCHMARKS}
    queuing = {p: cache.simulate(p, "queuing", "sc") for p in LOCKING_BENCHMARKS}

    def assemble():
        rows = {p: contention_row(results[p]) for p in LOCKING_BENCHMARKS}
        decomp = [
            decompose_ttas_slowdown(queuing[p], results[p]) for p in ("grav", "pdsa")
        ]
        return rows, decomp

    rows, decomps = benchmark.pedantic(assemble, rounds=1, iterations=1)
    text = render_contention_table(
        [results[p] for p in LOCKING_BENCHMARKS], 6, "T&T&S"
    )
    save_table(output_dir, "table6_contention_ttas", text)
    save_table(output_dir, "section32_decomposition", render_decomposition(decomps))

    # (a) contention pattern unchanged vs Table 4
    for p in ("grav", "pdsa"):
        qrow = contention_row(queuing[p])
        assert abs(rows[p].waiters_at_transfer - qrow.waiters_at_transfer) < 1.2, p
        assert abs(rows[p].transfers - qrow.transfers) / qrow.transfers < 0.1, p

    # (b) the hand-off gap: T&T&S in the paper's 21-25 cycle region,
    # many times the queuing hand-off
    for p in ("grav", "pdsa"):
        assert 12 < rows[p].handoff_cycles < 40, (p, rows[p].handoff_cycles)
        assert rows[p].handoff_cycles > 4 * contention_row(queuing[p]).handoff_cycles

    # transferring-lock hold times stay within a few percent of the
    # queuing values (paper: 336 -> 343 and 356 -> 363, a +2% shift; our
    # models land within +/-10%): holds are a program property
    for p in ("grav", "pdsa"):
        q_hold = contention_row(queuing[p]).transfer_time_held
        assert abs(rows[p].transfer_time_held - q_hold) / q_hold < 0.10, p

    # decomposition: hand-off is a large attributed factor; bus load grows
    for d in decomps:
        assert d.slowdown_pct > 2
        assert d.handoff_pct > 40
        assert d.handoff_ratio > 4
        assert d.bus_util_growth > 0.25
