"""Ablation: cache--bus buffer depth.

§4.2: "we found that there were almost never any uncompleted shared
accesses when a lock or unlock was done.  Therefore it is debatable
whether cache-bus buffers should be as deep as those we simulated."

We sweep the buffer depth from 1 to 8 under weak ordering (the model
the deep buffers were provisioned for) and check that depth beyond 2
buys essentially nothing.
"""

from dataclasses import replace

from repro.consistency import WEAK
from repro.machine.config import MachineConfig
from repro.machine.system import System
from repro.sync import QueuingLockManager

from .conftest import save_table

DEPTHS = [1, 2, 4, 8]


def test_ablation_buffer_depth(benchmark, cache, output_dir):
    program = "grav"  # the most sync-dense program: worst case for drains
    ts = cache.trace(program)

    def sweep():
        out = {}
        for depth in DEPTHS:
            cfg = replace(
                MachineConfig(n_procs=ts.n_procs), cachebus_buffer_depth=depth
            )
            out[depth] = System(ts, cfg, QueuingLockManager(), WEAK).run()
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"Ablation: cache-bus buffer depth ({program}, weak ordering)", ""]
    for depth, r in results.items():
        stall_buf = sum(m.stall_buffer for m in r.proc_metrics)
        lines.append(
            f"depth {depth}: run-time {r.run_time:>10,}  "
            f"max occupancy {r.buffer_max_occupancy}  "
            f"buffer-full stall {stall_buf:,} cycles"
        )
    save_table(output_dir, "ablation_buffer_depth", "\n".join(lines))

    base = results[4].run_time  # the paper's provisioned depth
    # going deeper than the paper's 4 buys nothing measurable
    assert abs(results[8].run_time - base) / base < 0.005
    # even depth 2 is within half a percent: the buffers are nearly
    # always empty at sync points, as §4.2 observes
    assert abs(results[2].run_time - base) / base < 0.005
    # occupancies actually observed stay small
    assert results[8].buffer_max_occupancy <= 6
