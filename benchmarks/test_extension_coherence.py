"""Extension: write-invalidate vs write-update coherence on the suite.

The paper's machine uses the Illinois write-invalidate protocol; its own
citation [4] (Archibald & Baer, TOCS'86) is a simulation comparison of
snooping protocols including write-update designs.  This benchmark runs
that comparison on the paper's workloads:

* programs whose shared data is *migratory* (Pdsa's placement swaps,
  the Presto scheduler state) should suffer under update -- every write
  to a shared line broadcasts, so bus load rises;
* programs whose sharing is *read-mostly* (Topopt's circuit description)
  should be indifferent or slightly better (no invalidation misses).

And the anchor check: the paper's qualitative conclusions (who is
lock-bound, who is miss-bound) must not depend on the protocol choice.
"""

from dataclasses import replace

from repro.consistency import SEQUENTIAL
from repro.machine.config import MachineConfig
from repro.machine.system import System
from repro.sync import get_lock_manager

from .conftest import save_table

PROGRAMS = ["pdsa", "qsort", "topopt"]


def run(ts, coherence):
    cfg = replace(MachineConfig(n_procs=ts.n_procs), coherence=coherence)
    return System(ts, cfg, get_lock_manager("queuing"), SEQUENTIAL).run()


def test_extension_coherence(benchmark, cache, output_dir):
    def sweep():
        out = {}
        for p in PROGRAMS:
            ts = cache.trace(p)
            out[(p, "illinois")] = run(ts, "illinois")
            out[(p, "update")] = run(ts, "update")
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Extension: Illinois (write-invalidate) vs write-update coherence",
        "",
        f"{'program':<9} {'protocol':<9} {'run-time':>11} {'util %':>7} "
        f"{'bus %':>6} {'rd misses':>10} {'inval recv':>11}",
    ]
    for p in PROGRAMS:
        for proto in ("illinois", "update"):
            r = results[(p, proto)]
            lines.append(
                f"{p:<9} {proto:<9} {r.run_time:>11,} "
                f"{100 * r.avg_utilization:>7.1f} {100 * r.bus_utilization:>6.1f} "
                f"{r.read_misses:>10,} {r.invalidations_received:>11,}"
            )
    save_table(output_dir, "extension_coherence", "\n".join(lines))

    for p in PROGRAMS:
        inv = results[(p, "illinois")]
        upd = results[(p, "update")]
        # update broadcasts on shared write hits, so invalidations (now
        # only from write misses) drop sharply where sharing is real
        assert upd.invalidations_received <= inv.invalidations_received, p
        # and upgrades never exist to be converted
        assert upd.meta["upgrade_conversions"] == 0, p
        # coherence (invalidation) read misses shrink
        assert upd.read_misses <= inv.read_misses, p
    assert (
        results[("pdsa", "update")].invalidations_received
        < 0.3 * results[("pdsa", "illinois")].invalidations_received
    )

    # the trade-off, both directions:
    from repro.machine.buffers import UPDATE

    # qsort's exchange writes land on freshly-migrated SHARED lines, so
    # update floods the bus and loses outright
    qs_inv = results[("qsort", "illinois")]
    qs_upd = results[("qsort", "update")]
    assert qs_upd.bus_op_counts.get(UPDATE, 0) > 5000
    assert qs_upd.bus_busy_cycles > qs_inv.bus_busy_cycles
    assert qs_upd.run_time > qs_inv.run_time * 1.02
    # pdsa's scheduler/placement sharing is genuinely read-write shared:
    # cheap 2-cycle updates replace 6-cycle invalidation refetches, and
    # update breaks even or better
    assert (
        results[("pdsa", "update")].run_time
        <= results[("pdsa", "illinois")].run_time * 1.02
    )
    # topopt never write-shares: the protocols are indistinguishable
    assert (
        results[("topopt", "update")].run_time
        == results[("topopt", "illinois")].run_time
    )

    # the paper's qualitative picture survives the protocol swap
    assert results[("pdsa", "update")].stall_pct_lock > 80
    assert results[("qsort", "update")].stall_pct_miss > 85
    assert results[("topopt", "update")].avg_utilization > 0.95
