"""Table 2: benchmark ideal lock statistics.

Checks the lock-pattern fingerprints the paper's argument rests on:
pair-count ordering, nesting only in Presto programs, Pverify's
order-of-magnitude hold times, and the %-of-time-held profile.
"""

import pytest

from repro.core.ideal import ideal_stats
from repro.core.report import PAPER_TABLES, render_table2
from repro.workloads.registry import BENCHMARK_ORDER

from .conftest import save_table


@pytest.fixture(scope="module")
def ideals(cache):
    return {p: ideal_stats(cache.trace(p)) for p in BENCHMARK_ORDER}


def test_table2_ideal_locks(benchmark, cache, output_dir, ideals):
    benchmark.pedantic(
        lambda: [ideal_stats(cache.trace(p)) for p in BENCHMARK_ORDER],
        rounds=1,
        iterations=1,
    )
    text = render_table2(list(ideals.values()))
    save_table(output_dir, "table2_ideal_locks", text)

    paper = PAPER_TABLES[2]

    # ordering of lock pairs per processor (the paper's key predictor):
    pairs = {p: ideals[p].lock_pairs for p in BENCHMARK_ORDER}
    assert pairs["grav"] > pairs["pdsa"] > pairs["fullconn"]
    assert pairs["topopt"] == 0
    # Grav leads Pdsa by roughly the paper's 2x
    assert 1.4 < pairs["grav"] / pairs["pdsa"] < 3.0

    # nested locks only in the Presto programs
    for p in ("grav", "pdsa", "fullconn"):
        assert ideals[p].nested_locks > 0, p
    for p in ("pverify", "qsort", "topopt"):
        assert ideals[p].nested_locks == 0, p

    # nesting fraction ~ paper's (nested / pairs ~ 0.4 for grav/pdsa)
    for p in ("grav", "pdsa"):
        frac = ideals[p].nested_locks / ideals[p].lock_pairs
        paper_frac = paper[p]["nested"] / paper[p]["pairs"]
        assert abs(frac - paper_frac) < 0.15, p

    # hold-time profile: Pverify an order of magnitude above the rest
    holds = {p: ideals[p].avg_held for p in BENCHMARK_ORDER if p != "topopt"}
    assert holds["pverify"] > 8 * max(v for k, v in holds.items() if k != "pverify")
    assert holds["qsort"] == min(holds.values())
    # grav/pdsa/fullconn in the paper's 150-450 cycle band
    for p in ("grav", "pdsa", "fullconn"):
        assert 100 < holds[p] < 450, (p, holds[p])

    # % of time held: grav and pverify high, qsort ~0 (paper: 39.8 /
    # 36.5 / 0.3)
    assert ideals["grav"].pct_time_held > 18
    assert ideals["pverify"].pct_time_held > 25
    assert ideals["qsort"].pct_time_held < 3
    assert ideals["topopt"].pct_time_held == 0
    # and crucially pverify's is *comparable* to grav's even though its
    # contention (Table 4) is nil -- the paper's non-predictor
    assert ideals["pverify"].pct_time_held > 0.6 * ideals["grav"].pct_time_held
