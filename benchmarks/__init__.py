"""Benchmark harness: one module per paper table/figure plus ablations.

Run with ``pytest benchmarks/ --benchmark-only``.  Rendered tables land
in ``benchmarks/output/``.
"""
