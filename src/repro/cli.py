"""Command-line front end.

Examples::

    python -m repro figure1
    python -m repro table 3                 # regenerate a paper table
    python -m repro table 4 --scale 0.5
    python -m repro run grav --locks ttas --model sc
    python -m repro suite                   # Tables 3-8 in one pass
    python -m repro generate qsort -o qsort.npz
    python -m repro ideal                   # Tables 1 and 2
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Baer & Zucker, 'On Synchronization Patterns in "
            "Parallel Programs' (ICPP 1991)"
        ),
    )
    p.add_argument("--scale", type=float, default=1.0, help="trace scale factor")
    p.add_argument("--seed", type=int, default=1991, help="workload RNG seed")
    sub = p.add_subparsers(dest="cmd", required=True)

    sub.add_parser("figure1", help="render the Figure 1 architecture diagram")

    t = sub.add_parser("table", help="regenerate one paper table (1-8)")
    t.add_argument("number", type=int, choices=range(1, 9))

    sub.add_parser("ideal", help="Tables 1 and 2 (no simulation)")

    r = sub.add_parser("run", help="simulate one benchmark")
    r.add_argument("workload")
    r.add_argument("--locks", default="queuing", help="queuing|exact-queuing|ttas|tas")
    r.add_argument("--model", default="sc", help="sc|tso|wo")
    r.add_argument("--procs", type=int, default=None)
    r.add_argument(
        "--per-proc", action="store_true", help="also print the per-processor detail"
    )

    sub.add_parser("suite", help="run the full grid and print Tables 3-8")

    g = sub.add_parser("generate", help="generate a trace file")
    g.add_argument("workload")
    g.add_argument("-o", "--out", required=True)

    s = sub.add_parser("simulate", help="simulate a saved trace file")
    s.add_argument("tracefile")
    s.add_argument("--locks", default="queuing")
    s.add_argument("--model", default="sc")

    sub.add_parser("decompose", help="section 3.2 T&T&S slowdown decomposition")

    pr = sub.add_parser("profile", help="per-lock contention profile of one benchmark")
    pr.add_argument("workload")
    pr.add_argument("--locks", default="queuing")
    pr.add_argument("--model", default="sc")
    pr.add_argument("--top", type=int, default=12)

    sub.add_parser(
        "claims", help="evaluate every paper claim against a fresh suite run"
    )

    ins = sub.add_parser("inspect", help="summarize or dump a trace")
    ins.add_argument("target", help="workload name or .npz trace file")
    ins.add_argument("--dump", type=int, metavar="N", help="dump N records of --proc")
    ins.add_argument("--proc", type=int, default=0)
    ins.add_argument("--start", type=int, default=0)

    rep = sub.add_parser(
        "report", help="the full reproduction booklet (figure, tables, claims, fidelity)"
    )
    rep.add_argument("-o", "--out", default=None, help="write to a file instead of stdout")

    fp = sub.add_parser(
        "footprint", help="trace footprint and sharing analysis of one benchmark"
    )
    fp.add_argument("workload")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # imports deferred so `--help` stays snappy
    from . import core
    from .consistency import get_model
    from .machine.system import simulate as _simulate
    from .sync import get_lock_manager
    from .trace import load_traceset, save_traceset
    from .workloads import generate_trace

    if args.cmd == "figure1":
        text, _ = core.figure1()
        print(text)
    elif args.cmd == "table":
        print(core.render_any(args.number, scale=args.scale, seed=args.seed))
    elif args.cmd == "ideal":
        for fn in (core.table1, core.table2):
            text, _ = fn(scale=args.scale, seed=args.seed)
            print(text)
            print()
    elif args.cmd == "run":
        ts = generate_trace(
            args.workload, scale=args.scale, seed=args.seed, n_procs=args.procs
        )
        result = _simulate(
            ts,
            lock_manager=get_lock_manager(args.locks),
            model=get_model(args.model),
        )
        print(result.summary())
        if args.per_proc:
            print()
            print(core.render_per_proc(result))
    elif args.cmd == "suite":
        suite = core.run_suite(scale=args.scale, seed=args.seed)
        for fn in (core.table3, core.table4, core.table5, core.table6, core.table7, core.table8):
            text, _ = fn(suite=suite)
            print(text)
            print()
        text, _ = core.section32(suite=suite)
        print(text)
    elif args.cmd == "generate":
        ts = generate_trace(args.workload, scale=args.scale, seed=args.seed)
        save_traceset(ts, args.out)
        print(f"wrote {ts.total_records()} records for {ts.n_procs} processors to {args.out}")
    elif args.cmd == "simulate":
        ts = load_traceset(args.tracefile)
        result = _simulate(
            ts,
            lock_manager=get_lock_manager(args.locks),
            model=get_model(args.model),
        )
        print(result.summary())
    elif args.cmd == "decompose":
        text, _ = core.section32(scale=args.scale, seed=args.seed)
        print(text)
    elif args.cmd == "profile":
        ts = generate_trace(args.workload, scale=args.scale, seed=args.seed)
        result = _simulate(
            ts,
            lock_manager=get_lock_manager(args.locks),
            model=get_model(args.model),
        )
        print(core.render_lock_profile(result, ts, top=args.top))
    elif args.cmd == "claims":
        results = core.check_all_claims(scale=args.scale, seed=args.seed)
        print(core.render_claim_report(results))
        return 0 if all(r.holds for r in results) else 1
    elif args.cmd == "inspect":
        from .trace import dump_records, summarize_traceset

        if args.target.endswith(".npz"):
            ts = load_traceset(args.target)
        else:
            ts = generate_trace(args.target, scale=args.scale, seed=args.seed)
        print(summarize_traceset(ts))
        if args.dump:
            print()
            print(dump_records(ts[args.proc], start=args.start, count=args.dump))
    elif args.cmd == "report":
        text = core.build_booklet(scale=args.scale, seed=args.seed)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            print(f"wrote reproduction booklet to {args.out}")
        else:
            print(text)
    elif args.cmd == "footprint":
        from .trace.footprint import sharing_profile

        ts = generate_trace(args.workload, scale=args.scale, seed=args.seed)
        prof = sharing_profile(ts)
        print(
            f"{ts.program}: {prof.shared_lines:,} shared data lines; "
            f"{prof.actively_shared:,} touched by 2+ processors "
            f"({100 * prof.active_fraction:.1f}%); {prof.write_shared:,} write-shared"
        )
        print(f"{'proc':>4} {'data lines':>11} {'shared':>8} {'code':>6} {'fits 64KB':>10}")
        for f in prof.footprints:
            print(
                f"{f.proc:>4} {f.data_lines:>11,} {f.shared_data_lines:>8,} "
                f"{f.code_lines:>6,} {str(f.fits_in()):>10}"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
