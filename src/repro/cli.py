"""Command-line front end.

Examples::

    python -m repro figure1
    python -m repro table 3                 # regenerate a paper table
    python -m repro table 4 --scale 0.5
    python -m repro run grav --locks ttas --model sc
    python -m repro suite --jobs 8          # Tables 3-8, parallel + cached
    python -m repro batch --locks queuing,ttas --models sc,wo --jobs 4
    python -m repro cache stats
    python -m repro predict qsort --validate  # contention predictor
    python -m repro contention-report qsort --simulate queuing
    python -m repro generate qsort -o qsort.npz
    python -m repro ideal                   # Tables 1 and 2
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def _add_config_options(sp: argparse.ArgumentParser) -> None:
    """``--locks``/``--model`` with upfront name validation."""
    from .consistency import MODEL_NAMES
    from .sync import LOCK_SCHEMES

    sp.add_argument(
        "--locks",
        default="queuing",
        choices=sorted(LOCK_SCHEMES),
        help="lock scheme (default: queuing)",
    )
    sp.add_argument(
        "--model",
        default="sc",
        choices=MODEL_NAMES,
        help="consistency model (default: sc)",
    )
    sp.add_argument(
        "--no-fast-path",
        action="store_true",
        help=(
            "interpret traces record by record instead of through the "
            "private-window fast path (identical results, slower; see "
            "'diff-verify')"
        ),
    )
    sp.add_argument(
        "--no-bus-fast-path",
        action="store_true",
        help=(
            "arbitrate and complete bus transactions through the reference "
            "event cascade instead of the fused contended-path fast path "
            "(identical results, slower; see 'diff-verify' and "
            "docs/performance.md)"
        ),
    )
    sp.add_argument(
        "--no-segment-kernel",
        action="store_true",
        help=(
            "retire machine-quiet trace segments bounce by bounce instead "
            "of through the columnar segment kernel (identical results, "
            "slower; see 'diff-verify' and docs/performance.md)"
        ),
    )
    sp.add_argument(
        "--no-spin-kernel",
        action="store_true",
        help=(
            "replay lock-wait phases event by event instead of collapsing "
            "them through the spin-phase kernel (identical results, "
            "slower; see 'diff-verify' and docs/performance.md)"
        ),
    )
    sp.add_argument(
        "--audit",
        action="store_true",
        help=(
            "attach the runtime invariant auditor (simulator sanitizer): "
            "abort at the first coherence/bus/lock/accounting/kernel/spin "
            "violation (identical results, ~2x slower; see docs/audit.md)"
        ),
    )


def _add_runner_options(sp: argparse.ArgumentParser) -> None:
    sp.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    sp.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    sp.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    _add_trace_cache_options(sp)


def _add_trace_cache_options(sp: argparse.ArgumentParser) -> None:
    sp.add_argument(
        "--trace-cache-dir",
        default=None,
        help=(
            "trace-cache directory (default: $REPRO_TRACE_CACHE_DIR or "
            "<result cache>/traces)"
        ),
    )
    sp.add_argument(
        "--no-trace-cache",
        action="store_true",
        help=(
            "regenerate workload traces instead of memory-mapping them "
            "from the content-addressed trace cache (identical traces "
            "either way; see 'repro trace')"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Baer & Zucker, 'On Synchronization Patterns in "
            "Parallel Programs' (ICPP 1991)"
        ),
    )
    p.add_argument("--scale", type=float, default=1.0, help="trace scale factor")
    p.add_argument("--seed", type=int, default=1991, help="workload RNG seed")
    sub = p.add_subparsers(dest="cmd", required=True)

    sub.add_parser("figure1", help="render the Figure 1 architecture diagram")

    t = sub.add_parser("table", help="regenerate one paper table (1-8)")
    t.add_argument("number", type=int, choices=range(1, 9))

    sub.add_parser("ideal", help="Tables 1 and 2 (no simulation)")

    r = sub.add_parser("run", help="simulate one benchmark")
    r.add_argument("workload")
    _add_config_options(r)
    r.add_argument("--procs", type=int, default=None)
    r.add_argument(
        "--per-proc", action="store_true", help="also print the per-processor detail"
    )
    r.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=15,
        default=None,
        metavar="N",
        help=(
            "run the simulation under cProfile and print the top N "
            "functions by total self-time (default N: 15) after the "
            "normal summary"
        ),
    )

    su = sub.add_parser("suite", help="run the full grid and print Tables 3-8")
    _add_runner_options(su)

    b = sub.add_parser(
        "batch",
        help="run an arbitrary experiment grid through the parallel job runner",
    )
    b.add_argument(
        "--programs",
        default="all",
        help="comma-separated workload names, or 'all' (default)",
    )
    b.add_argument(
        "--locks",
        default="queuing",
        help="comma-separated lock schemes (default: queuing)",
    )
    b.add_argument(
        "--models",
        default="sc",
        help="comma-separated consistency models (default: sc)",
    )
    b.add_argument("--procs", type=int, default=None, help="processor-count override")
    b.add_argument(
        "--spec-file",
        default=None,
        help="JSON file with a list of job-spec dicts (overrides the grid options)",
    )
    b.add_argument("--timeout", type=float, default=None, help="per-job seconds")
    b.add_argument("--retries", type=int, default=0, help="extra attempts per job")
    b.add_argument("--manifest", default=None, help="JSONL batch manifest path")
    b.add_argument(
        "--resume",
        action="store_true",
        help="skip jobs already completed in --manifest",
    )
    _add_runner_options(b)

    c = sub.add_parser(
        "cache", help="inspect or clear the result and trace caches"
    )
    c.add_argument("action", choices=["stats", "clear"])
    c.add_argument("--cache-dir", default=None)
    c.add_argument("--trace-cache-dir", default=None)
    c.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="DAYS",
        help="'clear' only: remove objects untouched for at least DAYS days",
    )
    c.add_argument(
        "--json",
        action="store_true",
        help="machine-readable stats (one JSON object over both stores)",
    )

    tr = sub.add_parser(
        "trace", help="pre-generate ('gen') or inspect ('stats') the trace cache"
    )
    tr.add_argument("action", choices=["gen", "stats"])
    tr.add_argument(
        "--programs",
        default="all",
        help="comma-separated workload names, or 'all' (default; 'gen' only)",
    )
    tr.add_argument("--procs", type=int, default=None, help="processor-count override")
    tr.add_argument("--trace-cache-dir", default=None)
    tr.add_argument(
        "--json",
        action="store_true",
        help="machine-readable stats ('stats' only)",
    )

    sv = sub.add_parser(
        "serve",
        help=(
            "run the sweep service: an HTTP front end over the "
            "deduplicating scheduler, or (--worker) a socket worker agent"
        ),
    )
    sv.add_argument("--host", default="127.0.0.1", help="listen address")
    sv.add_argument(
        "--port", type=int, default=8642, help="listen port (0 = ephemeral)"
    )
    sv.add_argument(
        "--worker",
        action="store_true",
        help=(
            "serve the worker-agent socket protocol (binary-framed, with "
            "newline-JSON fallback) instead of the HTTP front end "
            "(the far end of --workers)"
        ),
    )
    sv.add_argument(
        "--workers",
        default=None,
        help=(
            "comma-separated HOST:PORT worker agents; cold cells are then "
            "sharded across them instead of the local process pool"
        ),
    )
    sv.add_argument(
        "--peers",
        default=None,
        help=(
            "comma-separated HOST:PORT peer stores consulted before "
            "simulating (front end: the warm-store tier; --worker: the "
            "stores this agent pre-warms its shards from)"
        ),
    )
    sv.add_argument(
        "--store",
        default=None,
        help=(
            "HOST:PORT of a designated store node, consulted before any "
            "--peers (a worker agent whose cache is the shared warm tier)"
        ),
    )
    sv.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help=(
            "front end only: refuse (HTTP 503 + Retry-After) once this "
            "many jobs are queued behind the running set"
        ),
    )
    sv.add_argument(
        "--json-transport",
        action="store_true",
        help=(
            "disable binary framing: speak newline-JSON only, both as a "
            "--worker server and toward --workers/--peers agents"
        ),
    )
    sv.add_argument("--timeout", type=float, default=None, help="per-attempt seconds")
    sv.add_argument("--retries", type=int, default=0, help="extra attempts per job")
    sv.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        help="base seconds of exponential backoff between retry attempts",
    )
    sv.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-job wall-clock budget across all attempts",
    )
    sv.add_argument(
        "--manifest", default=None, help="JSONL manifest the aggregator appends to"
    )
    sv.add_argument(
        "--resume",
        action="store_true",
        help="replay an existing --manifest into the aggregator at boot",
    )
    _add_runner_options(sv)

    sb = sub.add_parser(
        "submit", help="submit an experiment grid to a running sweep service"
    )
    sb.add_argument(
        "--url", default="http://127.0.0.1:8642", help="service base URL"
    )
    sb.add_argument(
        "--programs",
        default="all",
        help="comma-separated workload names, or 'all' (default)",
    )
    sb.add_argument(
        "--locks",
        default="queuing",
        help="comma-separated lock schemes (default: queuing)",
    )
    sb.add_argument(
        "--models",
        default="sc",
        help="comma-separated consistency models (default: sc)",
    )
    sb.add_argument("--procs", type=int, default=None, help="processor-count override")
    sb.add_argument(
        "--spec-file",
        default=None,
        help="JSON file with a list of job-spec dicts (overrides the grid options)",
    )
    sb.add_argument(
        "--n-shards", type=int, default=None, help="shard-count override"
    )
    sb.add_argument(
        "--priority",
        choices=["normal", "high"],
        default=None,
        help="queue lane (high jumps the normal backlog)",
    )
    sb.add_argument(
        "--http-timeout", type=float, default=600.0, help="client-side seconds"
    )
    sb.add_argument(
        "--json", action="store_true", help="print the raw JSON response"
    )

    st = sub.add_parser(
        "status", help="snapshot a running sweep service (scheduler, stores, metrics)"
    )
    st.add_argument(
        "--url", default="http://127.0.0.1:8642", help="service base URL"
    )
    st.add_argument(
        "--metrics",
        action="store_true",
        help="print the raw Prometheus /metrics exposition instead",
    )
    st.add_argument(
        "--json", action="store_true", help="print the raw JSON snapshot"
    )

    g = sub.add_parser("generate", help="generate a trace file")
    g.add_argument("workload")
    g.add_argument("-o", "--out", required=True)

    s = sub.add_parser("simulate", help="simulate a saved trace file")
    s.add_argument("tracefile")
    _add_config_options(s)

    sub.add_parser("decompose", help="section 3.2 T&T&S slowdown decomposition")

    pr = sub.add_parser("profile", help="per-lock contention profile of one benchmark")
    pr.add_argument("workload")
    _add_config_options(pr)
    pr.add_argument("--top", type=int, default=12)

    sub.add_parser(
        "claims", help="evaluate every paper claim against a fresh suite run"
    )

    ins = sub.add_parser("inspect", help="summarize or dump a trace")
    ins.add_argument("target", help="workload name or .npz trace file")
    ins.add_argument("--dump", type=int, metavar="N", help="dump N records of --proc")
    ins.add_argument("--proc", type=int, default=0)
    ins.add_argument("--start", type=int, default=0)

    rep = sub.add_parser(
        "report", help="the full reproduction booklet (figure, tables, claims, fidelity)"
    )
    rep.add_argument("-o", "--out", default=None, help="write to a file instead of stdout")

    fp = sub.add_parser(
        "footprint", help="trace footprint and sharing analysis of one benchmark"
    )
    fp.add_argument("workload")

    pd = sub.add_parser(
        "predict",
        help=(
            "closed-form contention prediction: per-scheme predicted "
            "lock-cycle and bus-traffic shares from ideal-trace lock "
            "statistics (see docs/locks.md)"
        ),
    )
    pd.add_argument("workload")
    pd.add_argument(
        "--schemes",
        default="all",
        help="comma-separated lock schemes, or 'all' (default: every registered scheme)",
    )
    pd.add_argument(
        "--validate",
        action="store_true",
        help=(
            "also simulate every scheme and print the predictor's "
            "relative error per cell (slower: one full run per scheme)"
        ),
    )
    pd.add_argument(
        "--json",
        action="store_true",
        help=(
            "machine-readable output: one JSON object with the "
            "calibration and per-scheme predictions (or, with "
            "--validate, the predictor-vs-simulation rows)"
        ),
    )
    _add_trace_cache_options(pd)

    cr = sub.add_parser(
        "contention-report",
        help=(
            "replay-based unnecessary-contention report: per-lock "
            "verdicts pinpointing critical sections that hold their "
            "lock longer than the conflicting accesses require"
        ),
    )
    cr.add_argument("workload")
    cr.add_argument(
        "--simulate",
        metavar="SCHEME",
        default=None,
        help=(
            "also simulate under this lock scheme and fold the measured "
            "transfers and waiter populations into the report"
        ),
    )
    cr.add_argument(
        "--json",
        action="store_true",
        help=(
            "machine-readable output: one JSON object with the workload "
            "identity and the per-lock verdicts"
        ),
    )
    _add_trace_cache_options(cr)

    dv = sub.add_parser(
        "diff-verify",
        help=(
            "differentially verify the interpreter fast path: run every "
            "workload/lock/model cell with fast_path on and off and "
            "require byte-identical results"
        ),
    )
    dv.add_argument(
        "--programs",
        default="all",
        help="comma-separated workload names, or 'all' (default)",
    )
    dv.add_argument(
        "--locks",
        default="grid",
        help=(
            "comma-separated lock schemes, 'grid' (default: the "
            "differential grid's six-scheme axis) or 'all' (every "
            "registered scheme)"
        ),
    )
    dv.add_argument(
        "--models",
        default="sc,wo",
        help="comma-separated consistency models (default: sc,wo)",
    )
    dv.add_argument(
        "--audit",
        action="store_true",
        help=(
            "also run the invariant auditor over the fast run of each "
            "cell and require zero violations"
        ),
    )
    dv.add_argument(
        "--vary",
        default="all",
        choices=[
            "all",
            "fast-path",
            "bus-fast-path",
            "segment-kernel",
            "spin-kernel",
        ],
        help=(
            "which fast path(s) to toggle between the two runs of each "
            "cell: 'all' (default) flips the interpreter fast path, the "
            "bus fast path, the segment kernel and the spin kernel "
            "together; the others isolate one knob with the rest left "
            "at their defaults (on)"
        ),
    )
    _add_trace_cache_options(dv)
    return p


def _trace_cache_arg(args):
    """The ``trace_cache`` argument implied by shared CLI flags: a
    handle (cache on), or ``False`` (off, ignoring the environment)."""
    if getattr(args, "no_trace_cache", False):
        return False
    from .trace.cache import TraceCache

    return TraceCache(getattr(args, "trace_cache_dir", None))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # imports deferred so `--help` stays snappy
    from . import core
    from .consistency import get_model
    from .machine.system import simulate as _simulate
    from .sync import get_lock_manager
    from .trace import load_traceset, save_traceset
    from .workloads import generate_trace

    if args.cmd == "figure1":
        text, _ = core.figure1()
        print(text)
    elif args.cmd == "table":
        print(core.render_any(args.number, scale=args.scale, seed=args.seed))
    elif args.cmd == "ideal":
        for fn in (core.table1, core.table2):
            text, _ = fn(scale=args.scale, seed=args.seed)
            print(text)
            print()
    elif args.cmd == "run":
        ts = generate_trace(
            args.workload, scale=args.scale, seed=args.seed, n_procs=args.procs
        )

        def _do_run():
            return _simulate(
                ts,
                config=_machine_config(args, ts),
                lock_manager=get_lock_manager(args.locks),
                model=get_model(args.model),
            )

        if args.profile is not None:
            result, stats_text = _profiled(_do_run, top=args.profile)
        else:
            result, stats_text = _do_run(), None
        print(result.summary())
        if args.per_proc:
            print()
            print(core.render_per_proc(result))
        if stats_text is not None:
            print()
            print(_render_diagnostics(result))
            print()
            print(stats_text, end="")
    elif args.cmd == "suite":
        from .runner import ResultCache

        cache = None if args.no_cache else ResultCache(args.cache_dir)
        tcache = _trace_cache_arg(args)
        suite = core.run_suite(
            scale=args.scale,
            seed=args.seed,
            jobs=args.jobs,
            cache=cache,
            trace_cache=tcache,
        )
        for fn in (core.table3, core.table4, core.table5, core.table6, core.table7, core.table8):
            text, _ = fn(suite=suite)
            print(text)
            print()
        text, _ = core.section32(suite=suite)
        print(text)
        # stats go to stderr so stdout stays byte-identical to the
        # serial, uncached table output
        if suite.batch is not None:
            print(f"[runner] {suite.batch.stats.summary()}", file=sys.stderr)
        if cache is not None:
            print(f"[cache] {cache.stats.summary()}", file=sys.stderr)
        if tcache:
            print(f"[trace-cache] {tcache.stats.summary()}", file=sys.stderr)
    elif args.cmd == "batch":
        return _run_batch(args)
    elif args.cmd == "cache":
        return _run_cache(args)
    elif args.cmd == "trace":
        return _run_trace(args)
    elif args.cmd == "serve":
        return _run_serve(args)
    elif args.cmd == "submit":
        return _run_submit(args)
    elif args.cmd == "status":
        return _run_status(args)
    elif args.cmd == "generate":
        ts = generate_trace(args.workload, scale=args.scale, seed=args.seed)
        save_traceset(ts, args.out)
        print(f"wrote {ts.total_records()} records for {ts.n_procs} processors to {args.out}")
    elif args.cmd == "simulate":
        ts = load_traceset(args.tracefile)
        result = _simulate(
            ts,
            config=_machine_config(args, ts),
            lock_manager=get_lock_manager(args.locks),
            model=get_model(args.model),
        )
        print(result.summary())
    elif args.cmd == "decompose":
        text, _ = core.section32(scale=args.scale, seed=args.seed)
        print(text)
    elif args.cmd == "profile":
        ts = generate_trace(args.workload, scale=args.scale, seed=args.seed)
        result = _simulate(
            ts,
            config=_machine_config(args, ts),
            lock_manager=get_lock_manager(args.locks),
            model=get_model(args.model),
        )
        print(core.render_lock_profile(result, ts, top=args.top))
    elif args.cmd == "claims":
        results = core.check_all_claims(scale=args.scale, seed=args.seed)
        print(core.render_claim_report(results))
        return 0 if all(r.holds for r in results) else 1
    elif args.cmd == "inspect":
        from .trace import dump_records, summarize_traceset

        if args.target.endswith(".npz"):
            ts = load_traceset(args.target)
        else:
            ts = generate_trace(args.target, scale=args.scale, seed=args.seed)
        print(summarize_traceset(ts))
        if args.dump:
            print()
            print(dump_records(ts[args.proc], start=args.start, count=args.dump))
    elif args.cmd == "report":
        text = core.build_booklet(scale=args.scale, seed=args.seed)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            print(f"wrote reproduction booklet to {args.out}")
        else:
            print(text)
    elif args.cmd == "footprint":
        from .trace.footprint import sharing_profile

        ts = generate_trace(args.workload, scale=args.scale, seed=args.seed)
        prof = sharing_profile(ts)
        print(
            f"{ts.program}: {prof.shared_lines:,} shared data lines; "
            f"{prof.actively_shared:,} touched by 2+ processors "
            f"({100 * prof.active_fraction:.1f}%); {prof.write_shared:,} write-shared"
        )
        print(f"{'proc':>4} {'data lines':>11} {'shared':>8} {'code':>6} {'fits 64KB':>10}")
        for f in prof.footprints:
            print(
                f"{f.proc:>4} {f.data_lines:>11,} {f.shared_data_lines:>8,} "
                f"{f.code_lines:>6,} {str(f.fits_in()):>10}"
            )
    elif args.cmd == "predict":
        return _run_predict(args)
    elif args.cmd == "contention-report":
        return _run_contention_report(args)
    elif args.cmd == "diff-verify":
        return _run_diff_verify(args)
    return 0


def _run_cache(args) -> int:
    """``repro cache``: one command over both content-addressed stores."""
    from .runner import ResultCache
    from .trace.cache import TraceCache

    cache = ResultCache(args.cache_dir)
    # an explicit --cache-dir relocates the trace cache alongside it
    # unless --trace-cache-dir pins it elsewhere
    trace_root = args.trace_cache_dir
    if trace_root is None and args.cache_dir is not None:
        trace_root = cache.root / "traces"
    tcache = TraceCache(trace_root)
    if args.action == "stats":
        if args.json:
            import json

            result_stats = cache.stats_dict()
            trace_stats = tcache.stats_dict()
            print(
                json.dumps(
                    {
                        "result_cache": result_stats,
                        "trace_cache": trace_stats,
                        "total_bytes": (
                            result_stats["size_bytes"] + trace_stats["size_bytes"]
                        ),
                    },
                    indent=2,
                )
            )
            return 0
        print(cache.describe())
        print()
        print(tcache.describe())
    else:
        scope = (
            f"result(s) older than {args.older_than:g} day(s)"
            if args.older_than is not None
            else "cached result(s)"
        )
        removed = cache.clear(older_than_days=args.older_than)
        print(f"removed {removed} {scope} from {cache.root}")
        scope = (
            f"traceset(s) older than {args.older_than:g} day(s)"
            if args.older_than is not None
            else "cached traceset(s)"
        )
        removed = tcache.clear(older_than_days=args.older_than)
        print(f"removed {removed} {scope} from {tcache.root}")
    return 0


def _run_trace(args) -> int:
    """``repro trace``: pre-warm or inspect the trace cache."""
    import time

    from .trace.cache import TraceCache, trace_key
    from .workloads.registry import BENCHMARK_ORDER, WORKLOADS, generate_trace

    tcache = TraceCache(args.trace_cache_dir)
    if args.action == "stats":
        if args.json:
            import json

            print(json.dumps(tcache.stats_dict(), indent=2))
        else:
            print(tcache.describe())
        return 0
    if args.programs.strip().lower() == "all":
        programs = list(BENCHMARK_ORDER)
    else:
        programs = [p.strip() for p in args.programs.split(",") if p.strip()]
    for prog in programs:
        if prog not in WORKLOADS:
            print(
                f"error: unknown workload {prog!r}; "
                f"expected one of {sorted(WORKLOADS)}",
                file=sys.stderr,
            )
            return 2
    for prog in programs:
        t0 = time.perf_counter()
        ts = generate_trace(
            prog,
            scale=args.scale,
            seed=args.seed,
            n_procs=args.procs,
            trace_cache=tcache,
        )
        elapsed = time.perf_counter() - t0
        key = trace_key(prog, args.scale, args.seed, args.procs)
        print(
            f"{prog:10s} {ts.total_records():>10,} records  "
            f"key {key[:12]}  {1000 * elapsed:6.0f} ms"
        )
    print(f"[trace-cache] {tcache.stats.summary()}", file=sys.stderr)
    return 0


def _render_diagnostics(result) -> str:
    """The fast-path/kernel counters (``RunResult.diagnostics``) as a
    compact table; never serialized, printed by ``repro run --profile``."""
    d = result.diagnostics
    if not d:
        return "diagnostics: (none collected)"
    width = max(len(k) for k in d)
    lines = ["diagnostics (attempt/rejection counters, compare-excluded):"]
    lines += [f"  {k:<{width}} {v:>12,}" for k, v in d.items()]
    return "\n".join(lines)


def _profiled(fn, top: int = 15):
    """Run ``fn()`` under :mod:`cProfile`; return ``(fn's result, a
    tottime-sorted top-``top`` stats table as text)``."""
    import cProfile
    import io
    import pstats

    prof = cProfile.Profile()
    result = prof.runcall(fn)
    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.sort_stats("tottime").print_stats(top)
    return result, buf.getvalue()


def _run_predict(args) -> int:
    """``repro predict``: the closed-form contention predictor."""
    from .consistency import SEQUENTIAL
    from .machine.system import simulate
    from .sync import LOCK_SCHEMES, get_lock_manager
    from .sync.predict import calibrate, predict, validate
    from .workloads import generate_trace

    if args.schemes.strip().lower() == "all":
        schemes = sorted(LOCK_SCHEMES)
    else:
        schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    for scheme in schemes:
        if scheme not in LOCK_SCHEMES:
            print(
                f"error: unknown lock scheme {scheme!r}; "
                f"expected one of {sorted(LOCK_SCHEMES)}",
                file=sys.stderr,
            )
            return 2
    ts = generate_trace(
        args.workload,
        scale=args.scale,
        seed=args.seed,
        trace_cache=_trace_cache_arg(args),
    )
    if args.validate:
        rows = validate(ts, schemes)
        if args.json:
            import json

            print(json.dumps({"program": ts.program, "rows": rows}, indent=2))
            return 0
        print(
            f"{'scheme':<14} {'pred lock%':>10} {'sim lock%':>10} {'err':>6}"
            f" {'pred bus%':>10} {'sim bus%':>9} {'err':>6}"
        )
        for r in rows:
            print(
                f"{r['scheme']:<14} {r['predicted_lock_share']:>10.2f} "
                f"{r['observed_lock_share']:>10.2f} {r['lock_rel_err']:>6.3f}"
                f" {r['predicted_bus_share']:>10.2f} "
                f"{r['observed_bus_share']:>9.2f} {r['bus_rel_err']:>6.3f}"
            )
        mean_lock = sum(r["lock_rel_err"] for r in rows) / len(rows)
        mean_bus = sum(r["bus_rel_err"] for r in rows) / len(rows)
        print(
            f"\nmean relative error: lock share {mean_lock:.3f}, "
            f"bus share {mean_bus:.3f}"
        )
        return 0
    # one baseline run calibrates the machine factors; every scheme's
    # prediction is then closed form
    base = simulate(ts, None, get_lock_manager("queuing"), SEQUENTIAL)
    cal = calibrate(ts, base)
    if args.json:
        import json
        from dataclasses import asdict

        print(
            json.dumps(
                {
                    "program": ts.program,
                    "calibration": asdict(cal),
                    "predictions": [
                        asdict(predict(ts, scheme, cal)) for scheme in schemes
                    ],
                },
                indent=2,
            )
        )
        return 0
    print(
        f"{ts.program}: calibrated on '{cal.baseline_scheme}' "
        f"(dilation {cal.kappa:.3f})"
    )
    print(f"{'scheme':<14} {'lock stall%':>11} {'bus traffic%':>13} {'stall cycles':>14}")
    for scheme in schemes:
        pred = predict(ts, scheme, cal)
        print(
            f"{scheme:<14} {pred.lock_share:>11.2f} {pred.bus_share:>13.2f} "
            f"{pred.stall_cycles:>14,.0f}"
        )
    return 0


def _run_contention_report(args) -> int:
    """``repro contention-report``: shrinkable critical sections."""
    from .consistency import SEQUENTIAL
    from .machine.system import simulate
    from .sync import LOCK_SCHEMES, get_lock_manager
    from .sync.predict import contention_report
    from .workloads import generate_trace

    result = None
    if args.simulate is not None and args.simulate not in LOCK_SCHEMES:
        print(
            f"error: unknown lock scheme {args.simulate!r}; "
            f"expected one of {sorted(LOCK_SCHEMES)}",
            file=sys.stderr,
        )
        return 2
    ts = generate_trace(
        args.workload,
        scale=args.scale,
        seed=args.seed,
        trace_cache=_trace_cache_arg(args),
    )
    if args.simulate is not None:
        result = simulate(ts, None, get_lock_manager(args.simulate), SEQUENTIAL)
    verdicts = contention_report(ts, result=result)
    if args.json:
        import json
        from dataclasses import asdict

        print(
            json.dumps(
                {
                    "program": ts.program,
                    "simulated_scheme": args.simulate,
                    "verdicts": [asdict(v) for v in verdicts],
                },
                indent=2,
            )
        )
        return 0
    header = (
        f"{'lock':>5} {'acqs':>7} {'procs':>5} {'hold':>8} "
        f"{'conflict lines':>14} {'shrinkable':>10} verdict"
    )
    if result is not None:
        header += f"  {'transfers':>9} {'waiters':>8}"
    print(header)
    for v in verdicts:
        line = (
            f"{v.lock_id:>5} {v.acquisitions:>7,} {v.n_procs:>5} "
            f"{v.mean_hold:>8.1f} {v.conflict_lines:>14,} "
            f"{100 * v.shrinkable_frac:>9.1f}% {v.verdict}"
        )
        if result is not None:
            line += f"  {v.transfers:>9,} {v.sim_waiters:>8.2f}"
        print(line)
    flagged = [v for v in verdicts if v.verdict != "tight"]
    print(
        f"\n{len(verdicts)} lock(s); {len(flagged)} with unnecessary "
        "contention (shrinkable hold time or no shared conflict)"
    )
    return 0


def _run_diff_verify(args) -> int:
    """``repro diff-verify``: fast path vs reference, field for field."""
    from .testing import differential_check
    from .workloads.registry import BENCHMARK_ORDER

    if args.programs.strip().lower() == "all":
        programs = tuple(BENCHMARK_ORDER)
    else:
        programs = tuple(p.strip() for p in args.programs.split(",") if p.strip())
    locks_arg = args.locks.strip().lower()
    if locks_arg == "grid":
        from .testing import LOCK_SCHEMES as lock_schemes
    elif locks_arg == "all":
        from .sync import LOCK_SCHEMES as registry

        lock_schemes = tuple(sorted(registry))
    else:
        lock_schemes = tuple(s.strip() for s in args.locks.split(",") if s.strip())
    from .testing import VARY_ALL

    vary = {
        "all": VARY_ALL,
        "fast-path": ("fast_path",),
        "bus-fast-path": ("bus_fast_path",),
        "segment-kernel": ("segment_kernel",),
        "spin-kernel": ("spin_kernel",),
    }[args.vary]
    reports = differential_check(
        programs=programs,
        lock_schemes=lock_schemes,
        models=tuple(m.strip() for m in args.models.split(",") if m.strip()),
        scale=args.scale,
        seed=args.seed,
        progress=lambda r: print(r.summary(), flush=True),
        audit=args.audit,
        vary=vary,
        trace_cache=_trace_cache_arg(args),
    )
    bad = [r for r in reports if not r.equal or r.violations]
    for r in bad:
        if not r.equal:
            print(f"\n{r.label}: fast path diverged from reference:")
            for line in r.diffs:
                print(f"  {line}")
        if r.violations:
            print(f"\n{r.label}: {r.violations} invariant violation(s)")
    print(
        f"\n{len(reports) - len(bad)}/{len(reports)} cells clean"
        + ("" if not bad else f"; {len(bad)} FAILED")
    )
    return 1 if bad else 0



def _machine_config(args, ts):
    """The machine configuration implied by shared CLI flags (None means
    the paper defaults, letting ``simulate`` choose)."""
    no_fast = getattr(args, "no_fast_path", False)
    no_bus_fast = getattr(args, "no_bus_fast_path", False)
    no_kernel = getattr(args, "no_segment_kernel", False)
    no_spin = getattr(args, "no_spin_kernel", False)
    audit = getattr(args, "audit", False)
    if no_fast or no_bus_fast or no_kernel or no_spin or audit:
        from .machine.config import MachineConfig

        return MachineConfig(
            n_procs=ts.n_procs,
            fast_path=not no_fast,
            bus_fast_path=not no_bus_fast,
            segment_kernel=not no_kernel,
            spin_kernel=not no_spin,
            audit=audit,
        )
    return None


def _run_batch(args) -> int:
    """``repro batch``: an arbitrary grid through the job runner."""
    import json

    from .consistency import MODEL_NAMES
    from .runner import JobFailure, JobSpec, ResultCache, run_jobs
    from .sync import LOCK_SCHEMES
    from .workloads.registry import BENCHMARK_ORDER, WORKLOADS

    if args.spec_file:
        with open(args.spec_file) as fh:
            specs = [JobSpec.from_dict(d) for d in json.load(fh)]
    else:
        if args.programs.strip().lower() == "all":
            programs = list(BENCHMARK_ORDER)
        else:
            programs = [p.strip() for p in args.programs.split(",") if p.strip()]
        locks = [s.strip() for s in args.locks.split(",") if s.strip()]
        models = [m.strip() for m in args.models.split(",") if m.strip()]
        # validate every name up front, before any simulation starts
        for prog in programs:
            if prog not in WORKLOADS:
                print(
                    f"error: unknown workload {prog!r}; "
                    f"expected one of {sorted(WORKLOADS)}",
                    file=sys.stderr,
                )
                return 2
        for scheme in locks:
            if scheme not in LOCK_SCHEMES:
                print(
                    f"error: unknown lock scheme {scheme!r}; "
                    f"expected one of {sorted(LOCK_SCHEMES)}",
                    file=sys.stderr,
                )
                return 2
        for model in models:
            if model not in MODEL_NAMES:
                print(
                    f"error: unknown consistency model {model!r}; "
                    f"expected one of {MODEL_NAMES}",
                    file=sys.stderr,
                )
                return 2
        specs = [
            JobSpec(
                program=prog,
                scale=args.scale,
                seed=args.seed,
                lock_scheme=scheme,
                consistency=model,
                n_procs=args.procs,
            )
            for prog in programs
            for scheme in locks
            for model in models
        ]

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    tcache = _trace_cache_arg(args)
    batch = run_jobs(
        specs,
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        retries=args.retries,
        manifest_path=args.manifest,
        resume=args.resume,
        trace_cache=tcache,
    )
    width = max((len(s.label()) for s in batch.specs), default=0)
    for spec, outcome in zip(batch.specs, batch.outcomes):
        if isinstance(outcome, JobFailure):
            print(f"{spec.label():<{width}}  FAILED   {outcome.kind}: {outcome.message}")
        else:
            print(
                f"{spec.label():<{width}}  ok       run-time {outcome.run_time:>12,}  "
                f"util {100 * outcome.avg_utilization:5.1f}%  "
                f"lock stall {outcome.stall_pct_lock:5.1f}%"
            )
    print(f"[runner] {batch.stats.summary()}", file=sys.stderr)
    if cache is not None:
        print(f"[cache] {cache.stats.summary()}", file=sys.stderr)
    if tcache:
        print(f"[trace-cache] {tcache.stats.summary()}", file=sys.stderr)
    return 0 if batch.ok() else 1


def _run_serve(args) -> int:
    """``repro serve``: boot the sweep service (or a worker agent)."""
    import asyncio

    from .runner import ResultCache
    from .service import (
        Scheduler,
        ServiceServer,
        SocketTransport,
        StreamAggregator,
        serve_worker,
    )

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    tcache = _trace_cache_arg(args)
    framing = "never" if args.json_transport else "auto"

    def _addresses(csv: str | None) -> list:
        return [
            SocketTransport.from_address(a.strip(), binary=framing)
            for a in (csv or "").split(",")
            if a.strip()
        ]

    # the designated store node is just a peer consulted first
    peer_transports = _addresses(args.store) + _addresses(args.peers)

    async def _worker() -> None:
        server, port, agent = await serve_worker(
            jobs=args.jobs,
            cache=cache,
            trace_cache=tcache,
            host=args.host,
            port=args.port,
            peers=peer_transports,
            binary=not args.json_transport,
        )
        print(f"[serve] worker agent {agent.name} on {args.host}:{port}", flush=True)
        if peer_transports:
            print(
                f"[serve] warm-store tier: {len(peer_transports)} peer(s)",
                flush=True,
            )
        try:
            async with server:
                await server.serve_forever()
        finally:
            agent.close()
            await agent.peers.close()

    async def _frontend() -> None:
        transports = _addresses(args.workers)
        scheduler = Scheduler(
            jobs=args.jobs,
            cache=cache,
            trace_cache=tcache,
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            deadline=args.deadline,
            transports=transports,
            peers=peer_transports,
            max_queue=args.max_queue,
        )
        aggregator = StreamAggregator(args.manifest, resume=args.resume)
        server = ServiceServer(
            scheduler, host=args.host, port=args.port, aggregator=aggregator
        )
        await server.start()
        mode = f"{len(transports)} remote worker(s)" if transports else (
            "inline" if scheduler.inline else f"{scheduler.jobs} local worker(s)"
        )
        print(f"[serve] sweep service on {server.url} ({mode})", flush=True)
        if peer_transports:
            print(
                f"[serve] warm-store tier: {len(peer_transports)} peer(s)",
                flush=True,
            )
        if args.max_queue is not None:
            print(
                f"[serve] backpressure: shedding beyond {args.max_queue} "
                "queued job(s)",
                flush=True,
            )
        if aggregator.recovered:
            print(
                f"[serve] resumed {aggregator.recovered} manifest record(s)",
                flush=True,
            )
        try:
            await server.serve_forever()
        finally:
            await server.close()
            for t in (*transports, *peer_transports):
                await t.close()

    try:
        asyncio.run(_worker() if args.worker else _frontend())
    except KeyboardInterrupt:
        pass
    return 0


def _run_submit(args) -> int:
    """``repro submit``: one grid request against a running service."""
    import json

    from .service import ServiceClient
    from .workloads.registry import BENCHMARK_ORDER

    from urllib.error import HTTPError

    client = ServiceClient(args.url, timeout=args.http_timeout)
    if not client.healthy():
        print(f"error: no sweep service answering at {args.url}", file=sys.stderr)
        return 2
    try:
        if args.spec_file:
            with open(args.spec_file) as fh:
                specs = json.load(fh)
            response = client.submit(
                specs=specs, n_shards=args.n_shards, priority=args.priority
            )
        else:
            if args.programs.strip().lower() == "all":
                programs = list(BENCHMARK_ORDER)
            else:
                programs = [p.strip() for p in args.programs.split(",") if p.strip()]
            grid = {
                "programs": programs,
                "locks": [s.strip() for s in args.locks.split(",") if s.strip()],
                "models": [m.strip() for m in args.models.split(",") if m.strip()],
                "scale": args.scale,
                "seed": args.seed,
            }
            if args.procs is not None:
                grid["n_procs"] = args.procs
            response = client.submit(
                grid=grid, n_shards=args.n_shards, priority=args.priority
            )
    except HTTPError as exc:
        if exc.code == 503:
            retry_after = exc.headers.get("Retry-After", "?")
            print(
                f"error: service overloaded (503); retry in {retry_after}s",
                file=sys.stderr,
            )
            return 3
        raise
    if args.json:
        print(json.dumps(response, indent=2))
        return 0 if all(r["ok"] for r in response["results"]) else 1
    width = max((len(r["label"]) for r in response["results"]), default=0)
    for r in response["results"]:
        if r["ok"]:
            rt = r.get("result", {}).get("run_time")
            detail = f"run-time {rt:>12,}" if rt is not None else ""
            print(
                f"{r['label']:<{width}}  {r['status']:<8} {detail}  "
                f"[{r['key'][:12]}]"
            )
        else:
            err = r.get("error", {})
            print(
                f"{r['label']:<{width}}  FAILED   "
                f"{err.get('kind')}: {err.get('message')}  [{r['key'][:12]}]"
            )
    print(f"[service] {response['summary']}", file=sys.stderr)
    m = response.get("metrics", {})
    print(
        f"[service] {m.get('cache_hits', 0)} hit(s), "
        f"{m.get('executed', 0)} executed, "
        f"{m.get('dedup_attached', 0)} dedup-attached",
        file=sys.stderr,
    )
    return 0 if all(r["ok"] for r in response["results"]) else 1


def _run_status(args) -> int:
    """``repro status``: snapshot a running service."""
    import json

    from .service import ServiceClient

    client = ServiceClient(args.url, timeout=30.0)
    if not client.healthy():
        print(f"error: no sweep service answering at {args.url}", file=sys.stderr)
        return 2
    if args.metrics:
        print(client.metrics(), end="")
        return 0
    snap = client.status()
    if args.json:
        print(json.dumps(snap, indent=2))
        return 0
    m = snap.get("metrics", {})
    backend = (
        f"{snap.get('transports')} remote worker(s)"
        if snap.get("transports")
        else ("inline" if snap.get("inline") else f"{snap.get('jobs')} local worker(s)")
    )
    print(f"service    : {args.url} (up {snap.get('uptime_s', 0):.0f}s, {backend})")
    print(
        f"requests   : {m.get('requests', 0)} "
        f"({m.get('cache_hits', 0)} hits / {m.get('cache_misses', 0)} misses, "
        f"{100 * m.get('hit_rate', 0.0):.0f}% hit rate)"
    )
    print(
        f"execution  : {m.get('executed', 0)} executed, "
        f"{m.get('failed', 0)} failed, {m.get('retries', 0)} retries, "
        f"{m.get('dedup_attached', 0)} dedup-attached"
    )
    print(
        f"in flight  : {m.get('in_flight', 0)} job(s), "
        f"queue depth {m.get('queue_depth', 0)}, "
        f"{m.get('shards_dispatched', 0)} shard(s) dispatched"
    )
    if snap.get("peers") or m.get("remote_hits") or m.get("remote_misses"):
        print(
            f"store tier : {snap.get('peers', 0)} peer(s), "
            f"{m.get('remote_hits', 0)} remote hit(s), "
            f"{m.get('remote_misses', 0)} remote miss(es)"
        )
    if snap.get("max_queue") is not None or m.get("shed"):
        bound = snap.get("max_queue")
        print(
            f"backpress. : {m.get('shed', 0)} shed "
            f"(queue bound {bound if bound is not None else 'off'}), "
            f"{m.get('priority_high', 0)} high-priority"
        )
    if m.get("worker_failures") or m.get("shards_replanned"):
        print(
            f"resilience : {m.get('worker_failures', 0)} worker failure(s), "
            f"{m.get('shards_replanned', 0)} shard(s) re-planned"
        )
    if m.get("frames_binary") or m.get("frames_json"):
        print(
            f"transport  : {m.get('frames_binary', 0)} binary / "
            f"{m.get('frames_json', 0)} JSON frame(s), "
            f"{m.get('bytes_sent', 0):,} B out / "
            f"{m.get('bytes_received', 0):,} B in"
        )
    for label in ("cache", "trace_cache"):
        store = snap.get(label)
        if store:
            s = store.get("session", {})
            print(
                f"{label:<11}: {store.get('count', 0)} object(s), "
                f"{store.get('size_bytes', 0) / 1024:.0f} KiB at {store.get('root')} "
                f"({s.get('hits', 0)} hits / {s.get('misses', 0)} misses this session)"
            )
    agg = snap.get("aggregator") or {}
    if agg:
        statuses = ", ".join(
            f"{v} {k}" for k, v in sorted(agg.get("statuses", {}).items())
        ) or "none yet"
        print(f"aggregator : {agg.get('cells', 0)} cell(s): {statuses}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
