"""Cell-by-cell fidelity comparison against the published tables.

EXPERIMENTS.md narrates paper-vs-measured; :mod:`repro.core.claims`
checks the paper's *conclusions*; this module checks the *numbers*: each
cell of Tables 3-8 is compared against :data:`repro.core.report.PAPER_TABLES`
with a per-metric tolerance band, yielding a structured list of
:class:`CellCheck` rows and a rendered scorecard
(``benchmarks/test_fidelity_report.py``).

Bands are deliberately honest rather than generous: cells outside the
band render as DEVIATES and stay visible (EXPERIMENTS.md's "deviations"
section is generated from exactly these).  Absolute cycle counts are
never compared (our traces are ~1/20th scale); event *counts* are
compared after multiplying by the scale factor, and ratios/percentages
are compared directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.metrics import RunResult
from .contention import contention_row
from .report import PAPER_TABLES, render_table

__all__ = [
    "SCALE_FACTOR",
    "CellCheck",
    "compare_ideal_tables",
    "compare_runtime_table",
    "compare_contention_table",
    "compare_weak_ordering_table",
    "fidelity_checks",
    "render_fidelity_report",
]

#: the paper's traces are ~20x our scale=1.0 traces (DESIGN.md §2)
SCALE_FACTOR = 20.0


@dataclass(frozen=True)
class CellCheck:
    """One compared table cell."""

    table: int
    program: str
    metric: str
    paper: float
    ours: float
    band: str  # human-readable tolerance description
    ok: bool

    def row(self) -> list:
        return [
            f"T{self.table}",
            self.program,
            self.metric,
            round(self.paper, 2),
            round(self.ours, 2),
            self.band,
            "ok" if self.ok else "DEVIATES",
        ]


def _abs_check(table, program, metric, paper, ours, tol) -> CellCheck:
    return CellCheck(
        table, program, metric, paper, ours, f"+-{tol}", abs(paper - ours) <= tol
    )


def _ratio_check(table, program, metric, paper, ours, factor) -> CellCheck:
    ok = paper == ours == 0 or (
        paper > 0 and ours > 0 and 1 / factor <= ours / paper <= factor
    )
    return CellCheck(table, program, metric, paper, ours, f"x{factor}", ok)


def compare_ideal_tables(ideals: dict) -> list[CellCheck]:
    """Tables 1/2: the generation-side calibration.

    Counts are compared after scaling by :data:`SCALE_FACTOR`; mixes and
    hold times are compared directly.  ``ideals`` maps program name to a
    :class:`~repro.core.ideal.BenchmarkIdeal`.
    """
    checks = []
    t1, t2 = PAPER_TABLES[1], PAPER_TABLES[2]
    for p, row in t1.items():
        if p not in ideals:
            continue
        i = ideals[p]
        checks.append(
            CellCheck(1, p, "processors", row["procs"], i.n_procs, "exact", i.n_procs == row["procs"])
        )
        checks.append(
            _ratio_check(1, p, "work cycles (scaled)", row["work"], i.work_cycles * SCALE_FACTOR / 1000, 2.0)
        )
        checks.append(
            _ratio_check(1, p, "references (scaled)", row["all"], i.all_refs * SCALE_FACTOR / 1000, 2.0)
        )
        paper_frac = row["data"] / row["all"]
        band = 0.25 if p == "qsort" else 0.15
        checks.append(
            _abs_check(1, p, "data fraction", paper_frac, i.data_fraction, band)
        )
    for p, row in t2.items():
        if p not in ideals:
            continue
        i = ideals[p]
        checks.append(
            _ratio_check(2, p, "lock pairs (scaled)", row["pairs"], i.lock_pairs * SCALE_FACTOR, 1.6)
        )
        checks.append(
            _ratio_check(2, p, "nested locks (scaled)", row["nested"], i.nested_locks * SCALE_FACTOR, 1.6)
        )
        if row["avg_held"] is not None:
            checks.append(
                _ratio_check(2, p, "avg held (cycles)", row["avg_held"], i.avg_held, 2.0)
            )
        checks.append(
            _abs_check(2, p, "% time held", row["pct"], i.pct_time_held, 12)
        )
    return checks


def compare_runtime_table(results: dict, table_no: int) -> list[CellCheck]:
    """Tables 3/5: utilization and stall-cause percentages."""
    paper = PAPER_TABLES[table_no]
    checks = []
    for p, row in paper.items():
        if p not in results:
            continue
        r: RunResult = results[p]
        checks.append(
            _abs_check(table_no, p, "utilization %", row["util"], 100 * r.avg_utilization, 10)
        )
        checks.append(
            _abs_check(table_no, p, "miss stall %", row["miss"], r.stall_pct_miss, 15)
        )
        checks.append(
            _abs_check(table_no, p, "lock stall %", row["lock"], r.stall_pct_lock, 15)
        )
    return checks


def compare_contention_table(results: dict, table_no: int) -> list[CellCheck]:
    """Tables 4/6/8: waiters, transfer counts (scaled), hold times."""
    paper = PAPER_TABLES[table_no]
    checks = []
    for p, row in paper.items():
        if p not in results:
            continue
        c = contention_row(results[p])
        checks.append(
            _abs_check(table_no, p, "waiters at transfer", row["waiters"], c.waiters_at_transfer, 1.5)
        )
        checks.append(
            _ratio_check(
                table_no, p, "transfers (scaled)", row["number"], c.transfers * SCALE_FACTOR, 3.0
            )
        )
        checks.append(
            _ratio_check(table_no, p, "avg hold (cycles)", row["held"], c.time_held, 2.5)
        )
        checks.append(
            _ratio_check(
                table_no, p, "transfer hold (cycles)", row["xfer_held"], c.transfer_time_held, 3.0
            )
        )
    return checks


def compare_weak_ordering_table(sc: dict, wo: dict) -> list[CellCheck]:
    """Table 7: the SC->WO difference and write-hit ratios."""
    paper = PAPER_TABLES[7]
    checks = []
    for p, row in paper.items():
        if p not in sc or p not in wo:
            continue
        diff = 100.0 * (sc[p].run_time - wo[p].run_time) / sc[p].run_time
        checks.append(_abs_check(7, p, "WO difference %", row["diff"], diff, 1.0))
        checks.append(
            _abs_check(7, p, "write hit %", row["write_hit"], 100 * wo[p].write_hit_ratio, 8)
        )
    return checks


def fidelity_checks(suite) -> list[CellCheck]:
    """All cell checks for a :class:`~repro.core.experiment.SuiteResults`."""
    from .ideal import ideal_stats

    checks = []
    checks += compare_ideal_tables(
        {p: ideal_stats(ts) for p, ts in suite.traces.items()}
    )
    checks += compare_runtime_table(suite.queuing_sc, 3)
    checks += compare_contention_table(suite.queuing_sc, 4)
    checks += compare_runtime_table(suite.ttas_sc, 5)
    checks += compare_contention_table(suite.ttas_sc, 6)
    checks += compare_weak_ordering_table(suite.queuing_sc, suite.queuing_wo)
    checks += compare_contention_table(suite.queuing_wo, 8)
    return checks


def render_fidelity_report(checks: list[CellCheck]) -> str:
    ok = sum(1 for c in checks if c.ok)
    table = render_table(
        ["table", "program", "metric", "paper", "ours", "band", "verdict"],
        [c.row() for c in checks],
        title=(
            f"Fidelity report: {ok}/{len(checks)} compared cells inside their "
            f"tolerance bands (scale factor {SCALE_FACTOR:g})"
        ),
    )
    deviations = [c for c in checks if not c.ok]
    if deviations:
        tail = ["", "Deviations (see EXPERIMENTS.md for discussion):"]
        for c in deviations:
            tail.append(
                f"  T{c.table} {c.program} {c.metric}: paper {c.paper:g}, "
                f"ours {c.ours:.2f} (band {c.band})"
            )
        table += "\n" + "\n".join(tail)
    return table
