"""The paper's claims as checkable predicates.

EXPERIMENTS.md narrates paper-vs-measured; this module is the same
content as *code*: every claim the paper argues for is a named predicate
over a :class:`~repro.core.experiment.SuiteResults`, evaluated to a
:class:`ClaimResult` with the observed evidence.  ``check_all_claims``
runs the registry and ``render_claim_report`` prints the scorecard
(``python -m repro claims``).

Claim identifiers reference the paper section they come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .decomposition import decompose_ttas_slowdown
from .experiment import SuiteResults, run_suite
from .ideal import ideal_stats
from .predictors import predictor_study
from .report import render_table

__all__ = ["Claim", "ClaimResult", "CLAIMS", "check_all_claims", "render_claim_report"]


@dataclass(frozen=True)
class Claim:
    """One falsifiable statement from the paper."""

    ident: str
    section: str
    statement: str
    check: Callable[[SuiteResults], tuple[bool, str]]


@dataclass(frozen=True)
class ClaimResult:
    claim: Claim
    holds: bool
    evidence: str


# ---------------------------------------------------------------------------
# predicate helpers
# ---------------------------------------------------------------------------

def _c31_contended_low_utilization(s: SuiteResults):
    u = {p: s.queuing_sc[p].avg_utilization for p in ("grav", "pdsa")}
    ok = all(v < 0.55 for v in u.values())
    return ok, f"grav {100 * u['grav']:.1f}%, pdsa {100 * u['pdsa']:.1f}% utilization"


def _c31_lock_stalls_dominate(s: SuiteResults):
    vals = {p: s.queuing_sc[p].stall_pct_lock for p in ("grav", "pdsa")}
    ok = all(v > 85 for v in vals.values())
    return ok, f"lock-wait share of stalls: grav {vals['grav']:.1f}%, pdsa {vals['pdsa']:.1f}%"


def _c31_waiters_over_half(s: SuiteResults):
    out = []
    ok = True
    for p in ("grav", "pdsa"):
        r = s.queuing_sc[p]
        w = r.lock_stats.avg_waiters_at_transfer
        ok = ok and w > 0.35 * r.n_procs
        out.append(f"{p}: {w:.2f} of {r.n_procs}")
    return ok, "; ".join(out)


def _c31_pverify_no_contention(s: SuiteResults):
    r = s.queuing_sc["pverify"]
    w = r.lock_stats.avg_waiters_at_transfer
    frac = r.lock_stats.transfers / max(1, r.lock_stats.acquisitions)
    return (w < 0.2 and frac < 0.05), (
        f"{w:.2f} waiters; {100 * frac:.1f}% of acquisitions contended, "
        f"despite long holds"
    )


def _c31_qsort_read_miss_bound(s: SuiteResults):
    r = s.queuing_sc["qsort"]
    ok = r.stall_pct_miss > 90 and r.read_misses > 3 * r.write_misses
    return ok, (
        f"{r.stall_pct_miss:.1f}% of stalls are misses; "
        f"{r.read_misses:,} read vs {r.write_misses:,} write misses"
    )


def _c5_acquisitions_best_predictor(s: SuiteResults):
    programs = [p for p in s.programs() if p != "topopt"]
    ideals = [ideal_stats(s.traces[p]) for p in programs]
    results = [s.queuing_sc[p] for p in programs]
    study = predictor_study(ideals, results)
    ok = (
        study.best_predictor == "lock_pairs"
        and study.corr_lock_pairs >= 0.55
        and study.corr_pct_time_held < study.corr_lock_pairs - 0.4
    )
    return ok, study.conclusion()


def _c32_ttas_slower_on_contended(s: SuiteResults):
    out = []
    ok = True
    for p in ("grav", "pdsa"):
        slow = (s.ttas_sc[p].run_time - s.queuing_sc[p].run_time) / s.queuing_sc[
            p
        ].run_time
        ok = ok and 0.02 < slow < 0.15
        out.append(f"{p} +{100 * slow:.1f}%")
    return ok, "T&T&S vs queuing run-time: " + ", ".join(out) + " (paper: +8.0/8.1%)"


def _c32_ttas_harmless_uncontended(s: SuiteResults):
    out = []
    ok = True
    for p in ("fullconn", "pverify", "qsort"):
        if p not in s.ttas_sc:
            continue
        rel = abs(s.ttas_sc[p].run_time - s.queuing_sc[p].run_time) / s.queuing_sc[
            p
        ].run_time
        ok = ok and rel < 0.02
        out.append(f"{p} {100 * rel:.2f}%")
    return ok, "|difference|: " + ", ".join(out)


def _c32_handoff_gap(s: SuiteResults):
    out = []
    ok = True
    for p in ("grav", "pdsa"):
        q = s.queuing_sc[p].lock_stats.avg_handoff
        t = s.ttas_sc[p].lock_stats.avg_handoff
        ok = ok and 12 < t < 40 and t > 4 * q
        out.append(f"{p}: {q:.1f} -> {t:.1f} cycles")
    return ok, "; ".join(out) + " (paper: 1.2-1.5 -> 21-25)"


def _c32_bus_contention_grows(s: SuiteResults):
    g = decompose_ttas_slowdown(s.queuing_sc["grav"], s.ttas_sc["grav"])
    p = decompose_ttas_slowdown(s.queuing_sc["pdsa"], s.ttas_sc["pdsa"])
    ok = g.bus_util_growth > 0.5 and p.bus_util_growth > 0.25
    return ok, (
        f"bus utilization growth: grav +{100 * g.bus_util_growth:.0f}% "
        f"(paper: doubled), pdsa +{100 * p.bus_util_growth:.0f}% (paper: +40%)"
    )


def _c32_contention_is_program_property(s: SuiteResults):
    out = []
    ok = True
    for p in ("grav", "pdsa"):
        wq = s.queuing_sc[p].lock_stats.avg_waiters_at_transfer
        wt = s.ttas_sc[p].lock_stats.avg_waiters_at_transfer
        ok = ok and abs(wq - wt) < 1.2
        out.append(f"{p}: {wq:.2f} vs {wt:.2f}")
    return ok, "waiters under queuing vs T&T&S: " + "; ".join(out)


def _c4_weak_ordering_under_one_percent(s: SuiteResults):
    worst, worst_p = 0.0, ""
    for p in s.programs():
        d = abs(s.queuing_sc[p].run_time - s.queuing_wo[p].run_time) / s.queuing_sc[
            p
        ].run_time
        if d > worst:
            worst, worst_p = d, p
    return worst < 0.01, f"largest |difference| {100 * worst:.2f}% ({worst_p})"


def _c4_locking_patterns_unchanged(s: SuiteResults):
    out = []
    ok = True
    for p in ("grav", "pdsa"):
        a = s.queuing_sc[p].lock_stats
        b = s.queuing_wo[p].lock_stats
        ok = ok and abs(a.avg_waiters_at_transfer - b.avg_waiters_at_transfer) < 1.0
        out.append(
            f"{p}: {a.avg_waiters_at_transfer:.2f} -> {b.avg_waiters_at_transfer:.2f}"
        )
    return ok, "waiters SC -> WO: " + "; ".join(out)


def _c42_drains_nearly_free(s: SuiteResults):
    worst = 0.0
    for p in s.programs():
        r = s.queuing_wo[p]
        drain = sum(m.stall_drain for m in r.proc_metrics)
        total = sum(m.completion_time for m in r.proc_metrics)
        worst = max(worst, drain / total)
    return worst < 0.01, f"worst drain-stall share of run-time {100 * worst:.2f}%"


def _c23_presto_shared_allocation(s: SuiteResults):
    out = []
    ok = True
    for p in ("grav", "pdsa", "fullconn"):
        frac = ideal_stats(s.traces[p]).shared_fraction
        ok = ok and frac > 0.85
        out.append(f"{p} {100 * frac:.0f}%")
    return ok, "shared fraction of data refs: " + ", ".join(out)


def _c23_pverify_long_holds(s: SuiteResults):
    ideals = {p: ideal_stats(s.traces[p]) for p in s.programs() if p != "topopt"}
    pv = ideals["pverify"].avg_held
    rest = max(v.avg_held for k, v in ideals.items() if k != "pverify")
    return pv > 5 * rest, f"pverify holds {pv:.0f} cycles vs next-longest {rest:.0f}"


CLAIMS: list[Claim] = [
    Claim(
        "C1",
        "§3.1",
        "The programs with the most lock acquisitions (Grav, Pdsa) have the "
        "lowest processor utilization",
        _c31_contended_low_utilization,
    ),
    Claim(
        "C2",
        "§3.1",
        "For the contended programs, stalls are dominated by waiting for locks",
        _c31_lock_stalls_dominate,
    ),
    Claim(
        "C3",
        "§3.1",
        "Waiters at transfer for Grav and Pdsa is around half the machine "
        "(extremely heavy contention)",
        _c31_waiters_over_half,
    ),
    Claim(
        "C4",
        "§3.1",
        "Pverify almost never has two processors wanting the same lock, "
        "despite spending over a third of its time in critical sections",
        _c31_pverify_no_contention,
    ),
    Claim(
        "C5",
        "§3.1",
        "Qsort's low utilization comes from read misses on its data set, "
        "not from locks",
        _c31_qsort_read_miss_bound,
    ),
    Claim(
        "C6",
        "§5",
        "The number of lock acquisitions in the ideal analysis is the best "
        "predictor of contention; the percentage of time locks are held is "
        "inconsequential",
        _c5_acquisitions_best_predictor,
    ),
    Claim(
        "C7",
        "§3.2",
        "Queuing locks beat T&T&S by several percent of run-time on the "
        "contended programs",
        _c32_ttas_slower_on_contended,
    ),
    Claim(
        "C8",
        "§3.2",
        "The lock implementation does not matter for programs with low "
        "lock-acquisition counts",
        _c32_ttas_harmless_uncontended,
    ),
    Claim(
        "C9",
        "§3.2",
        "T&T&S hand-offs take tens of cycles against a few for queuing locks",
        _c32_handoff_gap,
    ),
    Claim(
        "C10",
        "§3.2",
        "The T&T&S release burst raises bus utilization sharply, slowing "
        "even processors not competing for the lock",
        _c32_bus_contention_grows,
    ),
    Claim(
        "C11",
        "§3.2",
        "The contention pattern (waiters at transfer) is a property of the "
        "program, not of the lock implementation",
        _c32_contention_is_program_property,
    ),
    Claim(
        "C12",
        "§4.2",
        "Weak ordering improves run-time by less than 1% on every benchmark",
        _c4_weak_ordering_under_one_percent,
    ),
    Claim(
        "C13",
        "§4.2",
        "There is no significant difference in locking patterns between the "
        "two memory models",
        _c4_locking_patterns_unchanged,
    ),
    Claim(
        "C14",
        "§4.2",
        "Buffers are almost never non-trivially occupied at synchronization "
        "points: drains cost ~nothing",
        _c42_drains_nearly_free,
    ),
    Claim(
        "C15",
        "§2.3",
        "Presto allocates most data as shared even when it need not be",
        _c23_presto_shared_allocation,
    ),
    Claim(
        "C16",
        "§2.3",
        "Pverify holds its locks an order of magnitude longer than any "
        "other program",
        _c23_pverify_long_holds,
    ),
]


def check_all_claims(suite: SuiteResults | None = None, **suite_kwargs) -> list[ClaimResult]:
    """Evaluate every registered claim; returns results in registry order."""
    suite = suite or run_suite(**suite_kwargs)
    results = []
    for claim in CLAIMS:
        holds, evidence = claim.check(suite)
        results.append(ClaimResult(claim=claim, holds=holds, evidence=evidence))
    return results


def render_claim_report(results: list[ClaimResult]) -> str:
    """The scorecard: one row per claim with verdict and evidence."""
    rows = [
        [
            r.claim.ident,
            r.claim.section,
            "HOLDS" if r.holds else "FAILS",
            r.claim.statement[:58] + ("..." if len(r.claim.statement) > 58 else ""),
            r.evidence,
        ]
        for r in results
    ]
    n_ok = sum(1 for r in results if r.holds)
    table = render_table(
        ["id", "section", "verdict", "claim", "evidence"],
        rows,
        title=f"Paper-claim scorecard: {n_ok}/{len(results)} claims hold",
    )
    return table
