"""Parameter-sweep utilities.

The paper varies machine parameters informally ("did not modify the
general trends"); this module gives the reproduction a first-class sweep
API used by the ablation benchmarks and the scaling example:

* :func:`sweep_procs` — same program, different machine sizes (the
  paper's runs use 9/10/12 of a 20-CPU machine; here you can ask what
  Grav's scheduler lock does to a 2- vs 16-processor machine);
* :func:`sweep_machine` — same trace, a family of machine
  configurations (buffer depths, memory latencies, write policies...);
* :func:`render_sweep` — a text table over any of the above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..machine.config import MachineConfig
from ..machine.metrics import RunResult
from ..runner import JobSpec
from .report import render_table

__all__ = ["SweepPoint", "sweep_procs", "sweep_machine", "render_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the varied parameter's label/value + result."""

    label: str
    value: object
    result: RunResult


def _run_points(
    labels, values, specs, jobs, cache, trace_cache=None, scheduler=None
) -> list[SweepPoint]:
    # sweeps are thin clients of the sweep-service scheduler; an injected
    # ``scheduler`` shares its dedup table/pool across successive sweeps
    from ..service.scheduler import run_batch

    batch = run_batch(
        specs, jobs=jobs, cache=cache, trace_cache=trace_cache, scheduler=scheduler
    ).raise_on_failure()
    return [
        SweepPoint(label=lab, value=val, result=res)
        for lab, val, res in zip(labels, values, batch.outcomes)
    ]


def sweep_procs(
    program: str,
    procs: Iterable[int],
    scale: float = 1.0,
    seed: int = 1991,
    lock_scheme: str = "queuing",
    consistency: str = "sc",
    machine: MachineConfig | None = None,
    jobs: int = 1,
    cache=None,
    trace_cache=None,
    scheduler=None,
) -> list[SweepPoint]:
    """Run ``program`` on machines of different sizes.

    Each size gets its own generated trace (the work is re-partitioned
    across the new processor count, as re-running the original program
    would).  ``jobs``/``cache`` route the sweep through the job runner
    (see :mod:`repro.runner`); workers load their traces from
    ``trace_cache`` when one is given (each size is its own cache
    entry), else generate their own.
    """
    sizes = list(procs)
    specs = [
        JobSpec(
            program=program,
            scale=scale,
            seed=seed,
            lock_scheme=lock_scheme,
            consistency=consistency,
            machine=(machine or MachineConfig()).with_procs(n),
            n_procs=n,
        )
        for n in sizes
    ]
    return _run_points(
        [f"{n} procs" for n in sizes],
        sizes,
        specs,
        jobs,
        cache,
        trace_cache,
        scheduler=scheduler,
    )


def sweep_machine(
    traceset,
    configs: Sequence[tuple[str, MachineConfig]],
    lock_scheme: str = "queuing",
    consistency: str = "sc",
    jobs: int = 1,
    cache=None,
    scheduler=None,
) -> list[SweepPoint]:
    """Run one trace on a family of machine configurations.

    The trace is addressed by content digest in the cache (it need not
    be regenerable from a workload name).
    """
    cfgs = [cfg.with_procs(traceset.n_procs) for _label, cfg in configs]
    specs = [
        JobSpec(
            program="",
            lock_scheme=lock_scheme,
            consistency=consistency,
            machine=cfg,
            traceset=traceset,
        )
        for cfg in cfgs
    ]
    return _run_points(
        [label for label, _ in configs], cfgs, specs, jobs, cache, scheduler=scheduler
    )


_DEFAULT_COLUMNS: list[tuple[str, Callable[[RunResult], object]]] = [
    ("run-time", lambda r: r.run_time),
    ("util %", lambda r: round(100 * r.avg_utilization, 1)),
    ("lock stall %", lambda r: round(r.stall_pct_lock, 1)),
    ("waiters", lambda r: round(r.lock_stats.avg_waiters_at_transfer, 2)),
    ("bus %", lambda r: round(100 * r.bus_utilization, 1)),
]


def render_sweep(
    points: list[SweepPoint],
    title: str = "",
    columns: list[tuple[str, Callable[[RunResult], object]]] | None = None,
) -> str:
    """Text table of a sweep; ``columns`` maps header -> extractor."""
    columns = columns or _DEFAULT_COLUMNS
    rows = [[p.label] + [fn(p.result) for _h, fn in columns] for p in points]
    return render_table(["config"] + [h for h, _ in columns], rows, title=title)
