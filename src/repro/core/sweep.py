"""Parameter-sweep utilities.

The paper varies machine parameters informally ("did not modify the
general trends"); this module gives the reproduction a first-class sweep
API used by the ablation benchmarks and the scaling example:

* :func:`sweep_procs` — same program, different machine sizes (the
  paper's runs use 9/10/12 of a 20-CPU machine; here you can ask what
  Grav's scheduler lock does to a 2- vs 16-processor machine);
* :func:`sweep_machine` — same trace, a family of machine
  configurations (buffer depths, memory latencies, write policies...);
* :func:`render_sweep` — a text table over any of the above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..consistency import get_model
from ..machine.config import MachineConfig
from ..machine.metrics import RunResult
from ..machine.system import System
from ..sync import get_lock_manager
from ..workloads.registry import get_workload
from .report import render_table

__all__ = ["SweepPoint", "sweep_procs", "sweep_machine", "render_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the varied parameter's label/value + result."""

    label: str
    value: object
    result: RunResult


def _run(ts, config, lock_scheme, consistency) -> RunResult:
    system = System(
        ts, config, get_lock_manager(lock_scheme), get_model(consistency)
    )
    return system.run()


def sweep_procs(
    program: str,
    procs: Iterable[int],
    scale: float = 1.0,
    seed: int = 1991,
    lock_scheme: str = "queuing",
    consistency: str = "sc",
    machine: MachineConfig | None = None,
) -> list[SweepPoint]:
    """Run ``program`` on machines of different sizes.

    Each size gets its own generated trace (the work is re-partitioned
    across the new processor count, as re-running the original program
    would).
    """
    points = []
    for n in procs:
        ts = get_workload(program, scale=scale, seed=seed).generate(n_procs=n)
        cfg = (machine or MachineConfig()).with_procs(n)
        points.append(
            SweepPoint(label=f"{n} procs", value=n, result=_run(ts, cfg, lock_scheme, consistency))
        )
    return points


def sweep_machine(
    traceset,
    configs: Sequence[tuple[str, MachineConfig]],
    lock_scheme: str = "queuing",
    consistency: str = "sc",
) -> list[SweepPoint]:
    """Run one trace on a family of machine configurations."""
    points = []
    for label, cfg in configs:
        cfg = cfg.with_procs(traceset.n_procs)
        points.append(
            SweepPoint(label=label, value=cfg, result=_run(traceset, cfg, lock_scheme, consistency))
        )
    return points


_DEFAULT_COLUMNS: list[tuple[str, Callable[[RunResult], object]]] = [
    ("run-time", lambda r: r.run_time),
    ("util %", lambda r: round(100 * r.avg_utilization, 1)),
    ("lock stall %", lambda r: round(r.stall_pct_lock, 1)),
    ("waiters", lambda r: round(r.lock_stats.avg_waiters_at_transfer, 2)),
    ("bus %", lambda r: round(100 * r.bus_utilization, 1)),
]


def render_sweep(
    points: list[SweepPoint],
    title: str = "",
    columns: list[tuple[str, Callable[[RunResult], object]]] | None = None,
) -> str:
    """Text table of a sweep; ``columns`` maps header -> extractor."""
    columns = columns or _DEFAULT_COLUMNS
    rows = [[p.label] + [fn(p.result) for _h, fn in columns] for p in points]
    return render_table(["config"] + [h for h, _ in columns], rows, title=title)
