"""§3.1/§5 predictor study.

"The best predictor for programs with high lock contention that can be
found through the 'ideal' analysis is the number of lock acquisitions.
... The percentage of time that locks are held is not a predictor of
locking behavior."

We quantify that claim: across the benchmark suite, rank programs by
each candidate ideal-statistic predictor and by observed contention
(waiters at transfer; equivalently the share of stalls lost to locks),
and report Spearman rank correlations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .contention import contention_row
from .ideal import BenchmarkIdeal

__all__ = ["PredictorStudy", "spearman", "predictor_study"]


def spearman(x, y) -> float:
    """Spearman rank correlation (ties broken by average rank)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need two equal-length samples of size >= 2")

    def ranks(v: np.ndarray) -> np.ndarray:
        order = np.argsort(v, kind="stable")
        r = np.empty(len(v), dtype=float)
        r[order] = np.arange(1, len(v) + 1)
        # average ranks over ties
        for val in np.unique(v):
            mask = v == val
            if np.count_nonzero(mask) > 1:
                r[mask] = r[mask].mean()
        return r

    rx, ry = ranks(x), ranks(y)
    sx, sy = rx.std(), ry.std()
    if sx == 0 or sy == 0:
        return 0.0
    return float(np.mean((rx - rx.mean()) * (ry - ry.mean())) / (sx * sy))


@dataclass(frozen=True)
class PredictorStudy:
    """Rank-correlation of ideal statistics against observed contention."""

    programs: tuple
    # candidate predictors (ideal analysis, per processor)
    lock_pairs: tuple
    pct_time_held: tuple
    avg_held: tuple
    # observed contention (simulation)
    waiters_at_transfer: tuple
    lock_stall_pct: tuple
    # correlations against waiters-at-transfer
    corr_lock_pairs: float
    corr_pct_time_held: float
    corr_avg_held: float

    @property
    def best_predictor(self) -> str:
        corrs = {
            "lock_pairs": self.corr_lock_pairs,
            "pct_time_held": self.corr_pct_time_held,
            "avg_held": self.corr_avg_held,
        }
        return max(corrs, key=lambda k: corrs[k])

    def conclusion(self) -> str:
        return (
            f"best predictor of contention: {self.best_predictor} "
            f"(rho={max(self.corr_lock_pairs, self.corr_pct_time_held, self.corr_avg_held):.2f}); "
            f"lock acquisitions rho={self.corr_lock_pairs:.2f}, "
            f"% time held rho={self.corr_pct_time_held:.2f}, "
            f"avg hold rho={self.corr_avg_held:.2f}"
        )


def predictor_study(ideals: list[BenchmarkIdeal], results: list) -> PredictorStudy:
    """Correlate ideal statistics with simulated contention.

    ``ideals`` and ``results`` must be parallel lists over the same
    programs (typically the five locking benchmarks).
    """
    if len(ideals) != len(results):
        raise ValueError("ideals and results must be parallel")
    progs = []
    pairs, pct_held, held = [], [], []
    waiters, lockpct = [], []
    for ideal, result in zip(ideals, results):
        if ideal.program != result.program:
            raise ValueError("program mismatch between ideal and result lists")
        progs.append(ideal.program)
        pairs.append(ideal.lock_pairs)
        pct_held.append(ideal.pct_time_held)
        held.append(ideal.avg_held)
        row = contention_row(result)
        waiters.append(row.waiters_at_transfer)
        lockpct.append(result.stall_pct_lock)
    return PredictorStudy(
        programs=tuple(progs),
        lock_pairs=tuple(pairs),
        pct_time_held=tuple(pct_held),
        avg_held=tuple(held),
        waiters_at_transfer=tuple(waiters),
        lock_stall_pct=tuple(lockpct),
        corr_lock_pairs=spearman(pairs, waiters),
        corr_pct_time_held=spearman(pct_held, waiters),
        corr_avg_held=spearman(held, waiters),
    )
