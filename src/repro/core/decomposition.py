"""§3.2 decomposition: where does T&T&S lose its time?

The paper explains the ~8 % run-time increase of T&T&S over queuing
locks on Grav and Pdsa as three factors:

1. **lock hand-off time** -- "it takes approximately 21-25 cycles for
   any processor to get the lock vs. 1.2-1.5 cycles for the queuing lock
   scheme ... Multiplying the difference by the number of lock transfers
   gives us an idea of the magnitude of the increase due to this factor"
   -- 78 % (Grav) / 77 % (Pdsa) of the increase;
2. **longer holds** -- transferring locks are held 5-6 cycles longer
   under T&T&S, a cost "paid by a waiting processor for each processor
   that precedes it in acquiring the lock" -- about 17 % for both; and
3. **bus contention** -- the burst of test-and-sets after each release
   raises bus utilization (it doubles for Grav), slowing even processors
   that never touch the lock -- the ~5 % remainder.

We apply the same accounting: factor 1 is the hand-off latency delta
times the number of transfers; factor 2 is the transfer-hold delta times
the number of transfers; factor 3 is the residual.  As in the paper,
these are *attribution estimates*, not disjoint measurements: when the
release burst congests the start of the next holder's critical section
(which happens in our workload models, whose critical sections miss on
data the previous holder wrote), factor 2 absorbs part of factor 3 and
the raw factors can overlap the measured increase.  ``handoff_share``
normalizes factor 1 against the total attributed overhead for a
comparable "which factor dominates" number.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.metrics import RunResult

__all__ = ["TTASDecomposition", "decompose_ttas_slowdown"]


@dataclass(frozen=True)
class TTASDecomposition:
    """The three-factor breakdown for one program."""

    program: str
    queuing_runtime: int
    ttas_runtime: int
    transfers: int
    # factor estimates, in cycles of attributable overhead (paper §3.2)
    handoff_cycles: float
    hold_cycles: float
    residual_cycles: float  # slowdown not covered by factors 1+2 (bus contention)
    # supporting observations
    queuing_handoff: float
    ttas_handoff: float
    queuing_transfer_hold: float
    ttas_transfer_hold: float
    queuing_bus_util: float
    ttas_bus_util: float

    @property
    def slowdown_cycles(self) -> int:
        return self.ttas_runtime - self.queuing_runtime

    @property
    def slowdown_pct(self) -> float:
        return 100.0 * self.slowdown_cycles / self.queuing_runtime

    def _pct(self, cycles: float) -> float:
        return 100.0 * cycles / self.slowdown_cycles if self.slowdown_cycles else 0.0

    @property
    def handoff_pct(self) -> float:
        """Factor 1 as a percentage of the measured increase (the
        paper's 78 %/77 % numbers).  Can exceed 100 when hand-offs
        overlap useful work on other processors."""
        return self._pct(self.handoff_cycles)

    @property
    def hold_pct(self) -> float:
        return self._pct(self.hold_cycles)

    @property
    def residual_pct(self) -> float:
        return self._pct(self.residual_cycles)

    @property
    def handoff_share(self) -> float:
        """Factor 1's share of the total attributed overhead (0..1)."""
        total = self.handoff_cycles + self.hold_cycles + max(0.0, self.residual_cycles)
        return self.handoff_cycles / total if total else 0.0

    @property
    def bus_util_growth(self) -> float:
        """Relative bus-utilization growth (1.0 = doubled, as the paper
        reports for Grav)."""
        if self.queuing_bus_util == 0:
            return 0.0
        return self.ttas_bus_util / self.queuing_bus_util - 1.0

    @property
    def handoff_ratio(self) -> float:
        """T&T&S hand-off latency over queuing hand-off latency (the
        paper's 21-25 vs 1.2-1.5 cycles comparison)."""
        if self.queuing_handoff == 0:
            return float("inf") if self.ttas_handoff else 0.0
        return self.ttas_handoff / self.queuing_handoff


def decompose_ttas_slowdown(queuing: RunResult, ttas: RunResult) -> TTASDecomposition:
    """Apply the paper's §3.2 accounting to a queuing/T&T&S result pair
    of the same program trace."""
    if queuing.program != ttas.program:
        raise ValueError("decomposition needs two runs of the same program")
    transfers = ttas.lock_stats.transfers
    d_handoff = ttas.lock_stats.avg_handoff - queuing.lock_stats.avg_handoff
    handoff_cycles = max(0.0, d_handoff) * transfers

    d_hold = ttas.lock_stats.avg_transfer_hold - queuing.lock_stats.avg_transfer_hold
    hold_cycles = max(0.0, d_hold) * transfers

    slowdown = ttas.run_time - queuing.run_time
    residual = slowdown - handoff_cycles - hold_cycles

    return TTASDecomposition(
        program=queuing.program,
        queuing_runtime=queuing.run_time,
        ttas_runtime=ttas.run_time,
        transfers=transfers,
        handoff_cycles=handoff_cycles,
        hold_cycles=hold_cycles,
        residual_cycles=residual,
        queuing_handoff=queuing.lock_stats.avg_handoff,
        ttas_handoff=ttas.lock_stats.avg_handoff,
        queuing_transfer_hold=queuing.lock_stats.avg_transfer_hold,
        ttas_transfer_hold=ttas.lock_stats.avg_transfer_hold,
        queuing_bus_util=queuing.bus_utilization,
        ttas_bus_util=ttas.bus_utilization,
    )
