"""The reproduction booklet: everything the paper reports, in one text
document.

``python -m repro report [-o FILE]`` runs the full grid once and renders
Figure 1, Tables 1-8, the §3.2 decomposition, the §3.1 predictor study,
the claims scorecard and the fidelity report into a single document --
the whole reproduction as one artifact.
"""

from __future__ import annotations

from .claims import check_all_claims, render_claim_report
from .comparison import fidelity_checks, render_fidelity_report
from .experiment import run_suite
from .ideal import ideal_stats
from .predictors import predictor_study
from .report import render_architecture, render_table1, render_table2
from .tables import section32, table3, table4, table5, table6, table7, table8

__all__ = ["build_booklet"]


def _suite_header(suite) -> str:
    total = sum(ts.total_records() for ts in suite.traces.values())
    progs = ", ".join(
        f"{p} ({suite.traces[p].n_procs}p)" for p in suite.programs()
    )
    return f"traces: {progs}; {total:,} records total"


def build_booklet(scale: float = 1.0, seed: int = 1991) -> str:
    """Run everything and render the full reproduction document."""
    suite = run_suite(scale=scale, seed=seed)
    ideals = [ideal_stats(suite.traces[p]) for p in suite.programs()]

    sections = [
        "REPRODUCTION OF: Baer & Zucker, 'On Synchronization Patterns in "
        "Parallel Programs' (ICPP 1991)",
        f"scale={scale} seed={seed}",
        _suite_header(suite),
        "",
        render_architecture(),
        "",
        render_table1(ideals),
        "",
        render_table2(ideals),
    ]
    for fn in (table3, table4, table5, table6, table7, table8):
        text, _ = fn(suite=suite)
        sections += ["", text]
    text, _ = section32(suite=suite)
    sections += ["", text]

    locking = [p for p in suite.programs() if p != "topopt"]
    study = predictor_study(
        [ideal_stats(suite.traces[p]) for p in locking],
        [suite.queuing_sc[p] for p in locking],
    )
    sections += ["", "Section 3.1 predictor study: " + study.conclusion()]

    sections += ["", render_claim_report(check_all_claims(suite))]
    sections += ["", render_fidelity_report(fidelity_checks(suite))]
    return "\n".join(sections) + "\n"
