"""Multi-seed robustness study.

The paper's §2.3 aside -- "Grav and Qsort have been simulated with
significantly longer traces with no change in the basic results" -- is a
stability claim.  Our analog has two axes: trace *length* (the scale
ablation) and workload *randomness* (the generation seed).  This module
sweeps seeds and reports the spread of every headline metric, so
"reproduced" means "reproduced for any seed", not "for the lucky one".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .experiment import run_suite
from .report import render_table

__all__ = ["MetricSpread", "seed_study", "render_seed_study"]


@dataclass(frozen=True)
class MetricSpread:
    """One metric's distribution across seeds."""

    program: str
    metric: str
    values: tuple

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def spread(self) -> float:
        """max-min as a fraction of the mean (0 for constants)."""
        if self.mean == 0:
            return 0.0
        return (max(self.values) - min(self.values)) / abs(self.mean)


#: metric extractors applied to each program's queuing/SC run
_METRICS = {
    "utilization": lambda r: 100 * r.avg_utilization,
    "lock stall %": lambda r: r.stall_pct_lock,
    "waiters": lambda r: r.lock_stats.avg_waiters_at_transfer,
    "bus util %": lambda r: 100 * r.bus_utilization,
    "write hit %": lambda r: 100 * r.write_hit_ratio,
}


def seed_study(
    seeds=(1991, 7, 42), scale: float = 1.0, programs=None
) -> list[MetricSpread]:
    """Run the queuing/SC sweep once per seed; return metric spreads."""
    runs = {}
    for seed in seeds:
        suite = run_suite(
            programs=programs, scale=scale, seed=seed, configs=(("queuing", "sc"),)
        )
        runs[seed] = suite.queuing_sc
    spreads = []
    first = runs[seeds[0]]
    for program in first:
        for metric, fn in _METRICS.items():
            values = tuple(fn(runs[seed][program]) for seed in seeds)
            spreads.append(MetricSpread(program, metric, values))
    return spreads


def render_seed_study(spreads: list[MetricSpread], seeds) -> str:
    rows = [
        [
            s.program,
            s.metric,
            round(s.mean, 2),
            round(s.std, 2),
            round(100 * s.spread, 1),
        ]
        for s in spreads
    ]
    return render_table(
        ["program", "metric", "mean", "std", "spread %"],
        rows,
        title=f"Seed-robustness study over seeds {tuple(seeds)} (queuing locks, SC)",
    )
