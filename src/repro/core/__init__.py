"""The paper's study: ideal analysis, experiments, contention and
predictor analyses, and the table-by-table reproduction harness."""

from .claims import (
    CLAIMS,
    Claim,
    ClaimResult,
    check_all_claims,
    render_claim_report,
)
from .booklet import build_booklet
from .comparison import (
    SCALE_FACTOR,
    CellCheck,
    fidelity_checks,
    render_fidelity_report,
)
from .contention import ContentionRow, contention_row
from .decomposition import TTASDecomposition, decompose_ttas_slowdown
from .experiment import Experiment, SuiteResults, run_experiment, run_suite
from .ideal import BenchmarkIdeal, ideal_stats
from .lockprofile import LockProfileRow, lock_profile, render_lock_profile
from .predictors import PredictorStudy, predictor_study, spearman
from .robustness import MetricSpread, render_seed_study, seed_study
from .sweep import SweepPoint, render_sweep, sweep_machine, sweep_procs
from .report import (
    PAPER_TABLES,
    render_architecture,
    render_contention_table,
    render_decomposition,
    render_per_proc,
    render_runtime_table,
    render_table,
    render_table1,
    render_table2,
    render_table7,
)
from .tables import (
    figure1,
    render_any,
    section32,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)

__all__ = [
    "BenchmarkIdeal",
    "CLAIMS",
    "Claim",
    "ClaimResult",
    "CellCheck",
    "ContentionRow",
    "MetricSpread",
    "build_booklet",
    "render_seed_study",
    "seed_study",
    "SCALE_FACTOR",
    "check_all_claims",
    "fidelity_checks",
    "render_claim_report",
    "render_fidelity_report",
    "Experiment",
    "PAPER_TABLES",
    "PredictorStudy",
    "SuiteResults",
    "TTASDecomposition",
    "contention_row",
    "decompose_ttas_slowdown",
    "figure1",
    "ideal_stats",
    "lock_profile",
    "LockProfileRow",
    "predictor_study",
    "render_lock_profile",
    "render_any",
    "render_architecture",
    "render_contention_table",
    "render_decomposition",
    "render_per_proc",
    "render_runtime_table",
    "render_table",
    "render_table1",
    "render_table2",
    "render_table7",
    "run_experiment",
    "run_suite",
    "section32",
    "spearman",
    "SweepPoint",
    "render_sweep",
    "sweep_machine",
    "sweep_procs",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
]
