"""One entry point per paper table/figure.

Each ``tableN`` function runs whatever experiments its table needs and
returns ``(rendered_text, data)``.  The benchmark harness
(``benchmarks/``), the CLI (``python -m repro table N``) and
EXPERIMENTS.md are all built on these.
"""

from __future__ import annotations

from ..machine.config import MachineConfig
from ..workloads.registry import BENCHMARK_ORDER, LOCKING_BENCHMARKS, generate_trace
from .decomposition import decompose_ttas_slowdown
from .experiment import SuiteResults, run_suite
from .ideal import ideal_stats
from .report import (
    render_architecture,
    render_contention_table,
    render_decomposition,
    render_runtime_table,
    render_table1,
    render_table2,
    render_table7,
)

__all__ = [
    "figure1",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "section32",
    "render_any",
]


def figure1(config: MachineConfig | None = None):
    text = render_architecture(config)
    return text, config or MachineConfig()


def _ideals(scale: float, seed: int):
    return [
        ideal_stats(generate_trace(p, scale=scale, seed=seed)) for p in BENCHMARK_ORDER
    ]


def table1(scale: float = 1.0, seed: int = 1991):
    ideals = _ideals(scale, seed)
    return render_table1(ideals), ideals


def table2(scale: float = 1.0, seed: int = 1991):
    ideals = _ideals(scale, seed)
    return render_table2(ideals), ideals


def _ordered(results: dict, programs: list[str]):
    return [results[p] for p in programs if p in results]


def table3(suite: SuiteResults | None = None, scale: float = 1.0, seed: int = 1991):
    suite = suite or run_suite(scale=scale, seed=seed, configs=(("queuing", "sc"),))
    rows = _ordered(suite.queuing_sc, BENCHMARK_ORDER)
    return render_runtime_table(rows, 3, "Queuing Lock Implementation"), rows


def table4(suite: SuiteResults | None = None, scale: float = 1.0, seed: int = 1991):
    suite = suite or run_suite(
        programs=LOCKING_BENCHMARKS, scale=scale, seed=seed, configs=(("queuing", "sc"),)
    )
    rows = _ordered(suite.queuing_sc, LOCKING_BENCHMARKS)
    return render_contention_table(rows, 4, "Queuing Lock Implementation"), rows


def table5(suite: SuiteResults | None = None, scale: float = 1.0, seed: int = 1991):
    suite = suite or run_suite(
        programs=LOCKING_BENCHMARKS, scale=scale, seed=seed, configs=(("ttas", "sc"),)
    )
    rows = _ordered(suite.ttas_sc, LOCKING_BENCHMARKS)
    return render_runtime_table(rows, 5, "T&T&S"), rows


def table6(suite: SuiteResults | None = None, scale: float = 1.0, seed: int = 1991):
    suite = suite or run_suite(
        programs=LOCKING_BENCHMARKS, scale=scale, seed=seed, configs=(("ttas", "sc"),)
    )
    rows = _ordered(suite.ttas_sc, LOCKING_BENCHMARKS)
    return render_contention_table(rows, 6, "T&T&S"), rows


def table7(suite: SuiteResults | None = None, scale: float = 1.0, seed: int = 1991):
    suite = suite or run_suite(
        scale=scale, seed=seed, configs=(("queuing", "sc"), ("queuing", "wo"))
    )
    sc = _ordered(suite.queuing_sc, BENCHMARK_ORDER)
    wo = _ordered(suite.queuing_wo, BENCHMARK_ORDER)
    return render_table7(sc, wo), (sc, wo)


def table8(suite: SuiteResults | None = None, scale: float = 1.0, seed: int = 1991):
    suite = suite or run_suite(
        programs=LOCKING_BENCHMARKS, scale=scale, seed=seed, configs=(("queuing", "wo"),)
    )
    rows = _ordered(suite.queuing_wo, LOCKING_BENCHMARKS)
    return render_contention_table(rows, 8, "Weak Ordering"), rows


def section32(suite: SuiteResults | None = None, scale: float = 1.0, seed: int = 1991):
    """The §3.2 three-factor decomposition for the contended programs."""
    suite = suite or run_suite(
        programs=["grav", "pdsa"],
        scale=scale,
        seed=seed,
        configs=(("queuing", "sc"), ("ttas", "sc")),
    )
    decomps = [
        decompose_ttas_slowdown(suite.queuing_sc[p], suite.ttas_sc[p])
        for p in ("grav", "pdsa")
        if p in suite.queuing_sc and p in suite.ttas_sc
    ]
    return render_decomposition(decomps), decomps


_TABLES = {
    1: table1,
    2: table2,
    3: table3,
    4: table4,
    5: table5,
    6: table6,
    7: table7,
    8: table8,
}


def render_any(number: int, scale: float = 1.0, seed: int = 1991) -> str:
    """Render table ``number`` (1-8) from fresh runs."""
    try:
        fn = _TABLES[number]
    except KeyError:
        raise ValueError(f"no table {number}; the paper has tables 1-8") from None
    text, _ = fn(scale=scale, seed=seed)
    return text
