"""Per-lock contention profile (extension).

The paper reports contention aggregated per program, but its §3.1
discussion attributes Grav's and Pdsa's contention to specific locks
(the Presto scheduler lock) and FullConn's calm to others (per-node
queue locks).  This analysis makes that attribution explicit: for one
simulation run, a table of every lock with its acquisitions, transfers,
average waiters and hold time, sorted hottest-first.

Lock names come from the trace's address layout (workload models
register every :class:`~repro.workloads.base.SharedLock` they create).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.metrics import RunResult
from ..trace.records import TraceSet
from .report import render_table

__all__ = ["LockProfileRow", "lock_profile", "render_lock_profile"]


@dataclass(frozen=True)
class LockProfileRow:
    """One lock's contention record."""

    lock_id: int
    name: str
    acquisitions: int
    transfers: int
    waiters_total: int
    hold_cycles_total: int

    @property
    def contended_fraction(self) -> float:
        return self.transfers / self.acquisitions if self.acquisitions else 0.0

    @property
    def avg_waiters_at_transfer(self) -> float:
        return self.waiters_total / self.transfers if self.transfers else 0.0

    @property
    def avg_hold(self) -> float:
        return self.hold_cycles_total / self.acquisitions if self.acquisitions else 0.0


def lock_profile(
    result: RunResult, traceset: TraceSet | None = None
) -> list[LockProfileRow]:
    """Build the hottest-first per-lock profile of a run.

    ``traceset`` (optional) supplies human-readable lock names via its
    layout; without it locks are labeled ``lock<id>``.
    """
    names = {}
    if traceset is not None:
        names = getattr(traceset.layout, "lock_names", {}) or {}
    ls = result.lock_stats
    rows = [
        LockProfileRow(
            lock_id=lid,
            name=names.get(lid, f"lock{lid}"),
            acquisitions=acq,
            transfers=ls.per_lock_transfers.get(lid, 0),
            waiters_total=ls.per_lock_waiters_total.get(lid, 0),
            hold_cycles_total=ls.per_lock_hold_total.get(lid, 0),
        )
        for lid, acq in ls.per_lock_acquisitions.items()
    ]
    rows.sort(key=lambda r: (r.transfers, r.acquisitions), reverse=True)
    return rows


def render_lock_profile(
    result: RunResult,
    traceset: TraceSet | None = None,
    top: int = 12,
) -> str:
    """Render the per-lock profile as a text table."""
    rows = lock_profile(result, traceset)
    total_transfers = sum(r.transfers for r in rows) or 1
    body = [
        [
            r.name,
            r.acquisitions,
            r.transfers,
            round(100.0 * r.transfers / total_transfers, 1),
            round(r.avg_waiters_at_transfer, 2),
            round(r.avg_hold, 0),
        ]
        for r in rows[:top]
    ]
    if len(rows) > top:
        rest = rows[top:]
        body.append(
            [
                f"... {len(rest)} more locks",
                sum(r.acquisitions for r in rest),
                sum(r.transfers for r in rest),
                round(100.0 * sum(r.transfers for r in rest) / total_transfers, 1),
                None,
                None,
            ]
        )
    return render_table(
        ["Lock", "Acquisitions", "Transfers", "% of transfers", "Waiters", "Avg hold"],
        body,
        title=f"Per-lock contention profile: {result.program} "
        f"({result.lock_scheme}, {result.consistency})",
    )
