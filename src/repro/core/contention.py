"""Lock contention statistics assembly (Tables 4, 6 and 8).

Thin shaping layer between :class:`RunResult` and the paper's contention
tables; also the home of the per-lock contention profile used by the
predictor study.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.metrics import RunResult

__all__ = ["ContentionRow", "contention_row"]


@dataclass(frozen=True)
class ContentionRow:
    """One row of the paper's lock-contention tables."""

    program: str
    time_held: float  # avg hold over all acquisitions (simulated cycles)
    transfers: int  # "Number": releases that handed to a waiter
    waiters_at_transfer: float  # avg still waiting after the hand-off
    transfer_time_held: float  # avg hold of transferred acquisitions
    handoff_cycles: float  # avg release -> next-owner-resumes latency
    acquisitions: int

    @property
    def contended_fraction(self) -> float:
        return self.transfers / self.acquisitions if self.acquisitions else 0.0


def contention_row(result: RunResult) -> ContentionRow:
    """Shape a run's lock statistics into a contention-table row."""
    ls = result.lock_stats
    return ContentionRow(
        program=result.program,
        time_held=ls.avg_hold,
        transfers=ls.transfers,
        waiters_at_transfer=ls.avg_waiters_at_transfer,
        transfer_time_held=ls.avg_transfer_hold,
        handoff_cycles=ls.avg_handoff,
        acquisitions=ls.acquisitions,
    )
