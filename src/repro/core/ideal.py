"""The "ideal" analysis (§2.1, §2.3): Tables 1 and 2.

"A very important aspect of the trace-driven simulation ... is that we
are able to analyze the 'ideal' behavior of the traced programs, i.e.,
we can determine how long any section of the program would take given no
interference from other programs or stalling due to cache misses."

Everything here is computed from the traces alone -- no simulation.  The
paper reports per-processor *averages*; so do we.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.records import TraceSet
from ..trace.stats import TraceStats, compute_trace_stats

__all__ = ["BenchmarkIdeal", "ideal_stats"]


@dataclass(frozen=True)
class BenchmarkIdeal:
    """One row of Tables 1 and 2 (averages per processor)."""

    program: str
    n_procs: int
    work_cycles: float
    all_refs: float
    data_refs: float
    shared_refs: float
    lock_pairs: float
    nested_locks: float
    avg_held: float
    total_held: float
    per_proc: tuple  # the underlying TraceStats, for drill-down

    @property
    def pct_time_held(self) -> float:
        """Table 2's "% of Time" column."""
        if self.work_cycles == 0:
            return 0.0
        return 100.0 * self.total_held / self.work_cycles

    @property
    def shared_fraction(self) -> float:
        return self.shared_refs / self.data_refs if self.data_refs else 0.0

    @property
    def data_fraction(self) -> float:
        return self.data_refs / self.all_refs if self.all_refs else 0.0

    @property
    def cycles_per_ref(self) -> float:
        return self.work_cycles / self.all_refs if self.all_refs else 0.0


def ideal_stats(traceset: TraceSet) -> BenchmarkIdeal:
    """Compute the Table 1/2 row for one benchmark's trace set."""
    per_proc: list[TraceStats] = [compute_trace_stats(t) for t in traceset]
    n = len(per_proc)

    def avg(attr: str) -> float:
        return sum(getattr(s, attr) for s in per_proc) / n

    total_pairs = sum(s.lock_pairs for s in per_proc)
    if total_pairs:
        # weight hold times by each processor's pair count
        avg_held = (
            sum(s.avg_held * s.lock_pairs for s in per_proc) / total_pairs
        )
    else:
        avg_held = 0.0

    return BenchmarkIdeal(
        program=traceset.program,
        n_procs=n,
        work_cycles=avg("work_cycles"),
        all_refs=avg("all_refs"),
        data_refs=avg("data_refs"),
        shared_refs=avg("shared_refs"),
        lock_pairs=avg("lock_pairs"),
        nested_locks=avg("nested_locks"),
        avg_held=avg_held,
        total_held=avg("total_held"),
        per_proc=tuple(per_proc),
    )
