"""Experiment driver: one (program x lock scheme x consistency model)
simulation, plus the suite runner used by every results table.

A generated :class:`TraceSet` is immutable, so one trace serves all
machine configurations of a program -- exactly how the paper reuses each
MPTrace tape across its architectural variations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..consistency import get_model
from ..machine.config import MachineConfig
from ..machine.metrics import RunResult
from ..machine.system import System
from ..runner import JobSpec
from ..sync import get_lock_manager
from ..trace.records import TraceSet
from ..workloads.registry import BENCHMARK_ORDER, generate_trace

__all__ = ["Experiment", "run_experiment", "SuiteResults", "run_suite"]


@dataclass
class Experiment:
    """A single simulation experiment.

    Either pass an explicit ``traceset`` or let the experiment generate
    the named workload (``program``/``scale``/``seed``).
    """

    program: str = ""
    lock_scheme: str = "queuing"
    consistency: str = "sc"
    scale: float = 1.0
    seed: int = 1991
    machine: MachineConfig | None = None
    traceset: TraceSet | None = None
    lock_kwargs: dict = field(default_factory=dict)
    max_events: int | None = None
    #: trace-cache routing for the generated trace: a TraceCache handle,
    #: a directory, True/False, or None ($REPRO_TRACE_CACHE)
    trace_cache: object = None

    def trace(self) -> TraceSet:
        if self.traceset is None:
            if not self.program:
                raise ValueError("need either a traceset or a program name")
            self.traceset = generate_trace(
                self.program,
                scale=self.scale,
                seed=self.seed,
                trace_cache=self.trace_cache,
            )
        return self.traceset

    def run(self) -> RunResult:
        ts = self.trace()
        config = self.machine or MachineConfig(n_procs=ts.n_procs)
        system = System(
            ts,
            config,
            get_lock_manager(self.lock_scheme, **self.lock_kwargs),
            get_model(self.consistency),
            max_events=self.max_events,
        )
        return system.run()


def run_experiment(
    program: str,
    lock_scheme: str = "queuing",
    consistency: str = "sc",
    scale: float = 1.0,
    seed: int = 1991,
    machine: MachineConfig | None = None,
    traceset: TraceSet | None = None,
) -> RunResult:
    """One-shot convenience wrapper around :class:`Experiment`."""
    return Experiment(
        program=program,
        lock_scheme=lock_scheme,
        consistency=consistency,
        scale=scale,
        seed=seed,
        machine=machine,
        traceset=traceset,
    ).run()


@dataclass
class SuiteResults:
    """All runs needed by Tables 3--8: per program, the three
    configurations the paper evaluates."""

    scale: float
    seed: int
    traces: dict  # program -> TraceSet
    queuing_sc: dict  # program -> RunResult   (Tables 3, 4)
    ttas_sc: dict  # program -> RunResult      (Tables 5, 6)
    queuing_wo: dict  # program -> RunResult   (Tables 7, 8)
    #: the BatchResult that produced these runs (None when assembled by
    #: hand, e.g. the benchmark harness); carries executor/cache stats
    batch: object = None

    def programs(self) -> list[str]:
        return [p for p in BENCHMARK_ORDER if p in self.queuing_sc]


def run_suite(
    programs: list[str] | None = None,
    scale: float = 1.0,
    seed: int = 1991,
    machine: MachineConfig | None = None,
    configs: tuple = (("queuing", "sc"), ("ttas", "sc"), ("queuing", "wo")),
    jobs: int = 1,
    cache=None,
    timeout: float | None = None,
    retries: int = 0,
    manifest_path=None,
    resume: bool = False,
    trace_cache=None,
    backoff: float = 0.0,
    deadline: float | None = None,
    scheduler=None,
) -> SuiteResults:
    """Run the paper's full experimental grid.

    Each program's trace is generated once and reused across the three
    machine configurations.  The grid is served by the sweep-service
    scheduler (:func:`repro.service.scheduler.run_batch`): ``jobs=1``
    (the default) is the serial in-process path, ``jobs>1`` fans the
    grid across worker processes, and ``cache`` (a
    :class:`repro.runner.ResultCache` or a directory path) skips every
    simulation whose result is already known.  ``trace_cache``
    additionally routes trace generation through a
    :class:`repro.trace.cache.TraceCache`, so the parent warms the cache
    once and worker processes memory-map the stored traces instead of
    regenerating them.  ``scheduler`` injects a live (possibly shared,
    possibly remote-backed) :class:`repro.service.Scheduler`; the other
    execution knobs then come from it.  Either way the table outputs are
    identical -- every run is deterministic in its spec.
    """
    from ..service.scheduler import run_batch
    from ..trace.cache import resolve_trace_cache

    programs = programs or list(BENCHMARK_ORDER)
    tcache = resolve_trace_cache(trace_cache)
    traces = {}
    for p in programs:
        try:
            traces[p] = generate_trace(
                p, scale=scale, seed=seed, trace_cache=tcache if tcache else False
            )
        except Exception:
            # leave the traceset off: the job fails in the executor with
            # a structured JobFailure instead of aborting the whole grid
            pass
    specs = [
        JobSpec(
            program=p,
            scale=scale,
            seed=seed,
            lock_scheme=scheme,
            consistency=model,
            machine=machine,
            traceset=traces.get(p),
        )
        for p in programs
        for scheme, model in configs
    ]
    batch = run_batch(
        specs,
        jobs=jobs,
        cache=cache,
        timeout=timeout,
        retries=retries,
        manifest_path=manifest_path,
        resume=resume,
        trace_cache=tcache if tcache else False,
        backoff=backoff,
        deadline=deadline,
        scheduler=scheduler,
    ).raise_on_failure()
    buckets: dict[tuple, dict] = {c: {} for c in configs}
    it = iter(batch.outcomes)
    for p in programs:
        for scheme, model in configs:
            buckets[(scheme, model)][p] = next(it)
    return SuiteResults(
        scale=scale,
        seed=seed,
        traces=traces,
        queuing_sc=buckets.get(("queuing", "sc"), {}),
        ttas_sc=buckets.get(("ttas", "sc"), {}),
        queuing_wo=buckets.get(("queuing", "wo"), {}),
        batch=batch,
    )
