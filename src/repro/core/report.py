"""Paper-style table rendering (Tables 1-8) and the Figure 1 diagram.

Each ``render_tableN`` function takes the objects its table needs and
returns the table as a string laid out like the paper's, so a
side-by-side comparison with the published numbers is a diff, not a
treasure hunt.  Cycle counts are reported in the paper's units
(thousands for the ideal tables, raw cycles elsewhere).
"""

from __future__ import annotations

from ..machine.config import MachineConfig
from ..machine.metrics import RunResult
from .contention import contention_row
from .decomposition import TTASDecomposition
from .ideal import BenchmarkIdeal

__all__ = [
    "render_table",
    "render_table1",
    "render_table2",
    "render_runtime_table",
    "render_contention_table",
    "render_table7",
    "render_decomposition",
    "render_architecture",
    "render_per_proc",
    "PAPER_TABLES",
]

#: The paper's published numbers, kept machine-readable so tests and
#: EXPERIMENTS.md can compare shapes programmatically.  Keys follow the
#: renderers' column names.
PAPER_TABLES = {
    1: {  # per-proc averages, thousands
        "grav": dict(procs=10, work=2841, all=1185, data=423, shared=377),
        "pdsa": dict(procs=12, work=2458, all=1206, data=431, shared=410),
        "fullconn": dict(procs=12, work=3848, all=967, data=346, shared=332),
        "pverify": dict(procs=12, work=5544, all=2431, data=682, shared=254),
        "qsort": dict(procs=12, work=2825, all=1177, data=252, shared=142),
        "topopt": dict(procs=9, work=10182, all=4135, data=1113, shared=413),
    },
    2: {
        "grav": dict(pairs=6389, nested=2579, avg_held=200, total_held=1131, pct=39.8),
        "pdsa": dict(pairs=3110, nested=1467, avg_held=190, total_held=510, pct=20.7),
        "fullconn": dict(pairs=652, nested=134, avg_held=334, total_held=210, pct=5.5),
        "pverify": dict(pairs=555, nested=0, avg_held=3642, total_held=2021, pct=36.5),
        "qsort": dict(pairs=212, nested=0, avg_held=52, total_held=11, pct=0.3),
        "topopt": dict(pairs=0, nested=0, avg_held=None, total_held=0, pct=0.0),
    },
    3: {
        "grav": dict(runtime=9228727, util=32.6, miss=3.2, lock=96.5),
        "pdsa": dict(runtime=7105257, util=40.3, miss=10.2, lock=89.5),
        "fullconn": dict(runtime=4407243, util=95.5, miss=86.9, lock=10.2),
        "pverify": dict(runtime=5997346, util=96.1, miss=100.0, lock=0.0),
        "qsort": dict(runtime=4307966, util=67.8, miss=99.7, lock=0.3),
        "topopt": dict(runtime=13818998, util=99.3, miss=100.0, lock=0.0),
    },
    4: {
        "grav": dict(held=211, number=28725, waiters=5.19, xfer_held=336),
        "pdsa": dict(held=203, number=16977, waiters=6.18, xfer_held=356),
        "fullconn": dict(held=389, number=344, waiters=0.40, xfer_held=844),
        "pverify": dict(held=3766, number=28, waiters=0.00, xfer_held=41),
        "qsort": dict(held=120, number=180, waiters=0.89, xfer_held=174),
    },
    5: {
        "grav": dict(runtime=9970129, util=30.7, miss=3.6, lock=96.4),
        "pdsa": dict(runtime=7680362, util=37.9, miss=9.8, lock=90.2),
        "fullconn": dict(runtime=4416720, util=94.6, miss=88.0, lock=12.0),
        "pverify": dict(runtime=5996557, util=96.1, miss=99.1, lock=0.9),
        "qsort": dict(runtime=4310056, util=67.6, miss=99.4, lock=0.6),
    },
    6: {
        "grav": dict(held=217, number=28742, waiters=5.16, xfer_held=343),
        "pdsa": dict(held=208, number=16882, waiters=6.21, xfer_held=363),
        "fullconn": dict(held=409, number=338, waiters=0.30, xfer_held=978),
        "pverify": dict(held=3767, number=36, waiters=0.03, xfer_held=48),
        "qsort": dict(held=130, number=166, waiters=0.61, xfer_held=181),
    },
    7: {
        "grav": dict(runtime=9221719, util=32.6, diff=0.08, write_hit=90.9),
        "pdsa": dict(runtime=7084835, util=40.5, diff=0.29, write_hit=90.5),
        "fullconn": dict(runtime=4381518, util=95.5, diff=0.31, write_hit=91.6),
        "pverify": dict(runtime=5987383, util=96.3, diff=0.17, write_hit=98.4),
        "qsort": dict(runtime=4306958, util=67.9, diff=0.02, write_hit=99.0),
        "topopt": dict(runtime=13796023, util=99.4, diff=0.17, write_hit=97.4),
    },
    8: {
        "grav": dict(held=211, number=28468, waiters=5.25, xfer_held=338),
        "pdsa": dict(held=203, number=16919, waiters=6.26, xfer_held=357),
        "fullconn": dict(held=390, number=373, waiters=0.34, xfer_held=857),
        "pverify": dict(held=3758, number=21, waiters=0.00, xfer_held=40),
        "qsort": dict(held=100, number=151, waiters=1.05, xfer_held=155),
    },
}


def render_table(header: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width table renderer (right-aligned numeric columns)."""
    cells = [header] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(
            " | ".join(
                c.ljust(w) if i == 0 else c.rjust(w)
                for i, (c, w) in enumerate(zip(row, widths))
            )
        )
    return "\n".join(lines)


def _fmt(v) -> str:
    if v is None:
        return "N/A"
    if isinstance(v, float):
        return f"{v:,.2f}"
    if isinstance(v, int):
        return f"{v:,}"
    return str(v)


# -- Tables 1 and 2: ideal statistics ------------------------------------------------
def render_table1(ideals: list[BenchmarkIdeal]) -> str:
    rows = [
        [
            i.program,
            i.n_procs,
            round(i.work_cycles / 1000, 1),
            round(i.all_refs / 1000, 1),
            round(i.data_refs / 1000, 1),
            round(i.shared_refs / 1000, 1),
        ]
        for i in ideals
    ]
    return render_table(
        ["Program", "# of Proc.", "Work Cycles (k)", "Refs All (k)", "Data (k)", "Shared (k)"],
        rows,
        title="Table 1: Benchmark Ideal Statistics (averages per processor)",
    )


def render_table2(ideals: list[BenchmarkIdeal]) -> str:
    rows = [
        [
            i.program,
            round(i.lock_pairs, 1),
            round(i.nested_locks, 1),
            round(i.avg_held, 0) if i.lock_pairs else None,
            round(i.total_held / 1000, 1),
            round(i.pct_time_held, 1),
        ]
        for i in ideals
    ]
    return render_table(
        ["Program", "Lock Pairs", "Nested Locks", "Avg. Held", "Total Held (k)", "% of Time"],
        rows,
        title="Table 2: Benchmark's Ideal Lock Statistics (averages per processor)",
    )


# -- Tables 3 and 5: runtime statistics ----------------------------------------------
def render_runtime_table(results: list[RunResult], table_no: int, caption: str) -> str:
    rows = [
        [
            r.program,
            r.run_time,
            round(100 * r.avg_utilization, 1),
            round(r.stall_pct_miss, 1),
            round(r.stall_pct_lock, 1),
        ]
        for r in results
    ]
    return render_table(
        ["Program", "run-time (cycles)", "Proc. Util. (%)", "stall: cache miss (%)", "stall: lock wait (%)"],
        rows,
        title=f"Table {table_no}: Benchmark Runtime Statistics: {caption}",
    )


# -- Tables 4, 6 and 8: contention statistics ------------------------------------------
def render_contention_table(results: list[RunResult], table_no: int, caption: str) -> str:
    rows = []
    for r in results:
        c = contention_row(r)
        rows.append(
            [
                r.program,
                round(c.time_held, 0),
                c.transfers,
                round(c.waiters_at_transfer, 2),
                round(c.transfer_time_held, 0),
            ]
        )
    return render_table(
        ["Program", "Time held", "Transfers", "Waiters at Transfer", "Time held (xfer)"],
        rows,
        title=f"Table {table_no}: Lock Contention Statistics: {caption}",
    )


# -- Table 7: weak ordering --------------------------------------------------------
def render_table7(sc_results: list[RunResult], wo_results: list[RunResult]) -> str:
    rows = []
    for sc, wo in zip(sc_results, wo_results):
        diff = 100.0 * (sc.run_time - wo.run_time) / sc.run_time
        rows.append(
            [
                wo.program,
                wo.run_time,
                round(100 * wo.avg_utilization, 1),
                round(diff, 2),
                round(100 * wo.write_hit_ratio, 1),
            ]
        )
    return render_table(
        ["Program", "run-time (cycles)", "Proc. Util. (%)", "Difference (%)", "Write Hit (%)"],
        rows,
        title="Table 7: Weak Ordering Runtime Statistics",
    )


# -- §3.2 decomposition ------------------------------------------------------------
def render_decomposition(decomps: list[TTASDecomposition]) -> str:
    rows = [
        [
            d.program,
            round(d.slowdown_pct, 2),
            round(d.ttas_handoff, 1),
            round(d.queuing_handoff, 1),
            round(d.handoff_pct, 0),
            round(d.hold_pct, 0),
            round(d.residual_pct, 0),
            round(100 * d.ttas_bus_util / d.queuing_bus_util - 100, 0)
            if d.queuing_bus_util
            else None,
        ]
        for d in decomps
    ]
    return render_table(
        [
            "Program",
            "T&T&S slowdown (%)",
            "handoff T&T&S (cy)",
            "handoff queuing (cy)",
            "factor1 handoff (%)",
            "factor2 hold (%)",
            "factor3 bus (%)",
            "bus util growth (%)",
        ],
        rows,
        title="Section 3.2 decomposition of the T&T&S run-time increase",
    )


# -- per-processor drill-down (not a paper table; supports Table 3's averages) ------
def render_per_proc(result: RunResult) -> str:
    """Per-processor breakdown behind a run's averaged utilization: the
    paper averages "each processor's utilization"; this shows the parts."""
    rows = []
    for m in result.proc_metrics:
        rows.append(
            [
                m.proc,
                m.completion_time,
                m.work_cycles,
                round(100 * m.utilization, 1),
                m.stall_miss,
                m.stall_lock,
                m.stall_drain + m.stall_buffer,
            ]
        )
    return render_table(
        ["proc", "completion", "work", "util %", "miss stall", "lock stall", "other"],
        rows,
        title=(
            f"Per-processor detail: {result.program} "
            f"({result.lock_scheme}, {result.consistency}); "
            f"average utilization {100 * result.avg_utilization:.1f}%"
        ),
    )


# -- Figure 1 ---------------------------------------------------------------------
def render_architecture(config: MachineConfig | None = None) -> str:
    """Figure 1: the model architecture, as ASCII art parameterized by
    the actual machine configuration."""
    cfg = config or MachineConfig()
    c = cfg.cache
    kb = c.size_bytes // 1024
    n = cfg.n_procs
    lines = [
        f"Figure 1: Model Architecture ({n} processors)",
        "",
        "  +--------+    +--------+         +--------+",
        "  | Proc 0 |    | Proc 1 |   ...   | Proc {:<2d}|".format(n - 1),
        "  +--------+    +--------+         +--------+",
        f"  | {kb:2d}KB   |    | {kb:2d}KB   |         | {kb:2d}KB   |   {c.assoc}-way set assoc.,",
        f"  | cache  |    | cache  |         | cache  |   {c.line_bytes}B lines, write-back,",
        "  +--------+    +--------+         +--------+   LRU, Illinois protocol",
        f"  | buf x{cfg.cachebus_buffer_depth} |    | buf x{cfg.cachebus_buffer_depth} |         | buf x{cfg.cachebus_buffer_depth} |   cache-bus buffers",
        "  +---+----+    +---+----+         +---+----+",
        "      |             |                  |",
        "  ====+=============+==================+======  split-transaction bus,",
        f"                    |                           {cfg.bus.width_bytes * 8} bits data+address,",
        "              +-----+------+                    round-robin arbitration",
        f"              | in buf x{cfg.memory.input_buffer}  |",
        f"              |  MEMORY    |  access: {cfg.memory.access_cycles} cycles",
        f"              | out buf x{cfg.memory.output_buffer} |",
        "              +------------+",
        "",
        f"  uncontended miss: {cfg.bus.addr_cycles} (request) + {cfg.memory.access_cycles} (memory) + "
        f"{cfg.line_data_cycles} (data) = {cfg.uncontended_miss_cycles} cycles",
    ]
    return "\n".join(lines)
