"""``python -m repro`` entry point."""

import os
import sys

from .cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Downstream pipe reader (head, less, ...) went away.  Redirect the
    # interpreter's final stdout flush at devnull so it cannot raise too,
    # and exit the way a killed pipe writer would (128 + SIGPIPE).
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(141)
