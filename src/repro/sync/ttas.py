"""Test-and-test-and-set locks (§2.4).

"In this scheme the value of the lock variable is read.  If it is
locked, then the processor spins by reading this value until it is free.
Since a copy of the lock variable is in the processor's cache, the
spinning does not consume any bus bandwidth. ... If several processors
are spinning, there will be a burst of traffic as all the processors try
to get the lock after it has been freed."

The burst is modeled mechanistically rather than with a fixed cost:

1. the release store invalidates every spinner's cached copy (one
   invalidation signal, or silently if nobody else caches the line);
2. each spinner's next spin read misses and re-fetches the line over the
   bus (cache-to-cache from the releaser);
3. a spinner that observes the lock free issues a test-and-set -- an
   atomic read-for-ownership that invalidates all other copies;
4. the first test-and-set to complete wins; the others find the lock
   taken and must re-read before settling back into their cached spin.

The ~21--25-cycle hand-off the paper reports, and the extra bus load that
slows even processors not competing for the lock, both emerge from the
serialization of steps 2--4 on the bus.
"""

from __future__ import annotations

from typing import Callable

from ..machine.buffers import LOCK_INVAL, LOCK_READ, LOCK_RFO
from .base import LockManager, LockState

__all__ = ["TestAndTestAndSetLockManager"]


class TestAndTestAndSetLockManager(LockManager):
    name = "ttas"
    __test__ = False  # pytest: not a test class despite the name

    def __init__(self) -> None:
        super().__init__()
        #: procs with a lock-line bus operation in flight, per lock id
        self._inflight: dict[int, set[int]] = {}
        #: (hold_cycles,) recorded at a contended release, consumed when
        #: the winning test-and-set completes
        self._pending_transfer: dict[int, tuple[int]] = {}

    def _infl(self, lock_id: int) -> set[int]:
        return self._inflight.setdefault(lock_id, set())

    def _spin_idle(self, proc: int) -> bool:
        """Spin signature: a spinner re-reading a *valid cached copy*
        consumes no bus bandwidth and schedules nothing -- it is woken
        only by the release burst's invalidation.  A spinner with a
        lock-line operation in flight is not idle (and the machine is
        not quiet while the op is buffered or on the bus)."""
        for st in self.locks.values():
            if (
                proc in st.spinners
                and proc in st.cached_by
                and proc not in self._infl(st.lock_id)
            ):
                return True
        return False

    # -- acquire ----------------------------------------------------------------
    def acquire(self, proc, lock_id, line, time, grant_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)
        st.spinners[proc] = grant_cb
        if proc in st.cached_by:
            # Spin read hits in the cache: no bus traffic.
            if st.owner is None:
                self._test_and_set(st, proc, time)
            # else: silently spin until the release burst wakes us
        else:
            self._spin_read(st, proc, time)

    def _spin_read(self, st: LockState, proc: int, time: int) -> None:
        """Fetch the lock line so the processor can spin in its cache."""
        infl = self._infl(st.lock_id)
        if proc in infl:
            return
        infl.add(proc)

        def read_done(t: int, st=st, proc=proc) -> None:
            self._infl(st.lock_id).discard(proc)
            st.cached_by.add(proc)
            if proc not in st.spinners:
                return  # granted while the read was in flight (cannot happen today)
            if st.owner is None and not st.busy_release:
                self._test_and_set(st, proc, t)
            # else: value reads as held; spin in cache

        self.machine.issue_lock_op(proc, LOCK_READ, st.line, read_done)

    def _test_and_set(self, st: LockState, proc: int, time: int) -> None:
        """The lock looked free: attempt the atomic test-and-set."""
        infl = self._infl(st.lock_id)
        if proc in infl:
            return
        infl.add(proc)

        def ts_done(t: int, st=st, proc=proc) -> None:
            self._infl(st.lock_id).discard(proc)
            st.cached_by.add(proc)
            st.last_writer = proc  # T&S writes the word regardless of outcome
            if st.owner is None and not st.busy_release:
                grant_cb = st.spinners.pop(proc)
                st.owner = proc
                st.grant_time = t
                pending = self._pending_transfer.pop(st.lock_id, None)
                if pending is not None:
                    (hold,) = pending
                    self.stats.on_release(
                        hold,
                        waiters_left=len(st.spinners),
                        transferred=True,
                        lock_id=st.lock_id,
                    )
                    self.stats.on_handoff(t - st.release_time)
                    self.stats.on_acquire(st.lock_id, via_transfer=True)
                    grant_cb(t, True)
                else:
                    self.stats.on_acquire(st.lock_id, via_transfer=False)
                    grant_cb(t, False)
            else:
                # Lost the race: re-read to restore a spin copy.
                self._spin_read(st, proc, t)

        self.machine.issue_lock_op(proc, LOCK_RFO, st.line, ts_done)

    # -- release ----------------------------------------------------------------
    def release(self, proc, lock_id, line, time, done_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)
        if st.owner != proc:
            raise RuntimeError(
                f"proc {proc} releasing lock {lock_id} owned by {st.owner}"
            )
        hold = time - st.grant_time
        others_cached = st.cached_by - {proc}
        st.busy_release = True

        def write_done(t: int, st=st, proc=proc, hold=hold) -> None:
            st.busy_release = False
            st.owner = None
            st.release_time = t
            st.last_writer = proc
            if st.spinners:
                self._pending_transfer[st.lock_id] = (hold,)
                # The invalidation knocked out every spinner's copy; each
                # one's next spin read goes to the bus.
                for p in list(st.spinners):
                    self._spin_read(st, p, t)
            else:
                self.stats.on_release(
                    hold, waiters_left=0, transferred=False, lock_id=st.lock_id
                )
            done_cb(t, False)

        if others_cached or st.last_writer != proc:
            # The release store must gain ownership of the line.
            st.cached_by = {proc}
            self.machine.issue_lock_op(proc, LOCK_INVAL, line, write_done)
        else:
            # Line already MODIFIED locally: the store is a silent hit.
            self._timed_call(proc, time + 1, write_done)

    # -- snoop hooks (called by the bus service) -------------------------------------
    def on_lock_rfo(self, line: int, proc: int, time: int) -> None:
        """A LOCK_RFO's address phase invalidates all other cached copies
        of the line; affected spinners will re-read."""
        for st in self.locks.values():
            if st.line != line:
                continue
            invalidated = st.cached_by - {proc}
            st.cached_by = {proc}
            st.last_writer = proc
            infl = self._infl(st.lock_id)
            for p in invalidated:
                if p in st.spinners and p not in infl and st.owner is not None:
                    # Spinner's copy vanished while the lock is held: one
                    # re-read restores the cached spin.
                    self._spin_read(st, p, time)
            return

    def on_lock_inval(self, line: int, proc: int, time: int) -> None:
        """An invalidation signal (release store) clears other copies."""
        for st in self.locks.values():
            if st.line == line:
                st.cached_by = {proc}
                st.last_writer = proc
                return
