"""Lock implementations: the paper's queuing-lock approximation and
test-and-test-and-set, plus an exact queuing lock and a naive
test-and-set baseline as extensions."""

from .barrier import BarrierManager, BarrierStats
from .base import LockManager, LockPortAPI, LockState
from .exact_queuing import ExactQueuingLockManager
from .queuing import QueuingLockManager
from .stats import LockStats, LockStatsCollector
from .tas import TestAndSetLockManager
from .ttas import TestAndTestAndSetLockManager

__all__ = [
    "BarrierManager",
    "BarrierStats",
    "ExactQueuingLockManager",
    "LockManager",
    "LockPortAPI",
    "LockState",
    "LockStats",
    "LockStatsCollector",
    "QueuingLockManager",
    "TestAndSetLockManager",
    "TestAndTestAndSetLockManager",
    "get_lock_manager",
    "LOCK_SCHEMES",
]

LOCK_SCHEMES = {
    "queuing": QueuingLockManager,
    "exact-queuing": ExactQueuingLockManager,
    "ttas": TestAndTestAndSetLockManager,
    "tas": TestAndSetLockManager,
}


def get_lock_manager(name: str, **kwargs) -> LockManager:
    """Instantiate a lock manager by scheme name."""
    try:
        cls = LOCK_SCHEMES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown lock scheme {name!r}; expected one of {sorted(LOCK_SCHEMES)}"
        ) from None
    return cls(**kwargs)
