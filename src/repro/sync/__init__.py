"""Lock implementations: the paper's queuing-lock approximation and
test-and-test-and-set, plus an exact queuing lock, a naive test-and-set
baseline, and the extension lock zoo (MCS, CLH, ticket, exponential-
backoff T&S) behind the same :class:`LockManager` interface.

:mod:`repro.sync.predict` consumes the ideal-trace lock statistics and
predicts each scheme's contention behaviour closed-form; see
docs/locks.md for the catalog and the predictor's validation table.
"""

from .backoff import BackoffTestAndSetLockManager
from .barrier import BarrierManager, BarrierStats
from .base import SPIN_IDLE, SPIN_OPAQUE, LockManager, LockPortAPI, LockState
from .clh import CLHLockManager
from .exact_queuing import ExactQueuingLockManager
from .mcs import MCSLockManager
from .queuing import QueuingLockManager
from .stats import LockStats, LockStatsCollector
from .tas import TestAndSetLockManager
from .ticket import TicketLockManager
from .ttas import TestAndTestAndSetLockManager

__all__ = [
    "BackoffTestAndSetLockManager",
    "BarrierManager",
    "BarrierStats",
    "CLHLockManager",
    "ExactQueuingLockManager",
    "LockManager",
    "LockPortAPI",
    "LockState",
    "LockStats",
    "LockStatsCollector",
    "MCSLockManager",
    "QueuingLockManager",
    "SPIN_IDLE",
    "SPIN_OPAQUE",
    "TestAndSetLockManager",
    "TestAndTestAndSetLockManager",
    "TicketLockManager",
    "get_lock_manager",
    "LOCK_SCHEMES",
]

LOCK_SCHEMES = {
    "queuing": QueuingLockManager,
    "exact-queuing": ExactQueuingLockManager,
    "ttas": TestAndTestAndSetLockManager,
    "tas": TestAndSetLockManager,
    "mcs": MCSLockManager,
    "clh": CLHLockManager,
    "ticket": TicketLockManager,
    "backoff": BackoffTestAndSetLockManager,
}


def get_lock_manager(name: str, **kwargs) -> LockManager:
    """Instantiate a lock manager by scheme name."""
    try:
        cls = LOCK_SCHEMES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown lock scheme {name!r}; expected one of {sorted(LOCK_SCHEMES)}"
        ) from None
    return cls(**kwargs)
