"""Exact Graunke--Thakkar queuing lock.

The paper's simulator approximates queuing locks (see
:mod:`repro.sync.queuing`) and notes: "In an exact queuing lock
implementation, there would be an additional memory access in the phase
when a processor gets on the queue for the lock.  In addition, in the
Illinois protocol that we are using, there would be an additional memory
access after the release of the lock if a processor is waiting and there
would be no cache to cache transfer. ... We are currently modifying our
simulator to verify this assumption."

This manager is that verification: it restores both differences --

* the acquire phase performs *two* memory accesses (the atomic exchange
  that enqueues, plus the first read of the processor's private spin
  location);
* a contended release hands off with a *memory* access (the waiter's
  spin-location read misses to memory after the releaser's store
  invalidates it) instead of a cache-to-cache transfer.

The exact-queuing ablation benchmark compares the two and checks the
paper's "no impact on validity" claim.
"""

from __future__ import annotations

from typing import Callable

from ..machine.buffers import LOCK_MEM
from .base import LockManager

__all__ = ["ExactQueuingLockManager"]


class ExactQueuingLockManager(LockManager):
    name = "exact-queuing"
    fifo = True

    def _spin_idle(self, proc: int) -> bool:
        """Spin signature: as in ``queuing``, an enqueued waiter spins
        on its private location with no engine event pending."""
        return self._enqueued(proc)

    def acquire(self, proc, lock_id, line, time, grant_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)

        def spin_read_done(t: int, st=st, proc=proc, grant_cb=grant_cb, t_req=time) -> None:
            st.cached_by.add(proc)
            if st.owner is None and not st.queue:
                st.owner = proc
                st.grant_time = t
                self.stats.on_acquire(lock_id, via_transfer=False)
                self.stats.on_uncontended_acquire_latency(t - t_req)
                grant_cb(t, False)
            else:
                st.queue.append((proc, grant_cb, t_req))
                if self.audit is not None:
                    self.audit.on_lock_enqueue(lock_id, proc, t)

        def exchange_done(t: int) -> None:
            # Second access: first read of the private spin location.
            self.machine.issue_lock_op(proc, LOCK_MEM, line, spin_read_done)

        # First access: the atomic exchange that appends to the queue.
        self.machine.issue_lock_op(proc, LOCK_MEM, line, exchange_done)

    def release(self, proc, lock_id, line, time, done_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)
        if st.owner != proc:
            raise RuntimeError(
                f"proc {proc} releasing lock {lock_id} owned by {st.owner}"
            )
        hold = time - st.grant_time
        transferred = bool(st.queue)
        if transferred:
            nxt, nxt_cb, _t_req = st.queue.pop(0)
            self.stats.on_release(
                hold, waiters_left=len(st.queue), transferred=True, lock_id=lock_id
            )
            st.owner = nxt
            self.stats.on_acquire(lock_id, via_transfer=True)

            def handoff_done(t: int, st=st, nxt=nxt, nxt_cb=nxt_cb, t_rel=time) -> None:
                st.cached_by.add(nxt)
                st.grant_time = t
                self.stats.on_handoff(t - t_rel)
                nxt_cb(t, True)

            # No cache-to-cache transfer under Illinois: the waiter's
            # re-read of its invalidated spin location goes to memory.
            self.machine.issue_lock_op(nxt, LOCK_MEM, st.line, handoff_done, front=True)
        else:
            self.stats.on_release(hold, waiters_left=0, transferred=False, lock_id=lock_id)
            st.owner = None
        st.release_time = time
        st.last_writer = proc

        self.machine.issue_lock_op(proc, LOCK_MEM, line, lambda t: done_cb(t, False))
