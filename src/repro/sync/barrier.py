"""Centralized sense-reversing barrier (extension).

The paper never simulates barriers, but uses them as a yardstick:
"For Grav and Pdsa this number [waiters at transfer] is slightly over
half the number of processors.  This is extremely heavy contention
since, by comparison, a barrier would yield a number less than half the
number of processors."  The barrier ablation benchmark makes that bound
concrete: as processors arrive, the i-th arrival sees ``i`` processors
already waiting, so the average over arrivals is ``(P-1)/2 < P/2``.

Mechanically: each arrival increments a counter under a short critical
section (one memory access); the last arrival flips the sense and its
release invalidation wakes everybody (each waiter re-reads the flag
cache-to-cache, serialized on the bus).
"""

from __future__ import annotations

from typing import Callable

from ..machine.buffers import LOCK_INVAL, LOCK_MEM, LOCK_READ

__all__ = ["BarrierManager", "BarrierStats"]


class BarrierStats:
    """Waiters-seen-at-arrival statistics for the barrier comparison."""

    def __init__(self) -> None:
        self.arrivals = 0
        self.episodes = 0
        self.waiters_seen_total = 0

    @property
    def avg_waiters_seen(self) -> float:
        return self.waiters_seen_total / self.arrivals if self.arrivals else 0.0


class _BarrierState:
    __slots__ = ("line", "waiting")

    def __init__(self, line: int) -> None:
        self.line = line
        self.waiting: list[tuple[int, Callable[[int], None]]] = []


class BarrierManager:
    """Tracks barrier arrivals; releases all waiters when the last
    processor arrives."""

    def __init__(self, n_procs: int, line: int = 0) -> None:
        self.n_procs = n_procs
        self.line = line
        self.machine = None
        self.stats = BarrierStats()
        self._barriers: dict[int, _BarrierState] = {}

    def attach(self, machine) -> None:
        self.machine = machine

    def arrive(
        self, proc: int, barrier_id: int, time: int, resume_cb: Callable[[int], None]
    ) -> None:
        st = self._barriers.setdefault(barrier_id, _BarrierState(self.line))

        def counted(t: int, st=st, proc=proc, resume_cb=resume_cb) -> None:
            self.stats.arrivals += 1
            self.stats.waiters_seen_total += len(st.waiting)
            st.waiting.append((proc, resume_cb))
            if len(st.waiting) == self.n_procs:
                self._open(st, t)

        # Arrival: one memory access to bump the count.
        self.machine.issue_lock_op(proc, LOCK_MEM, st.line, counted)

    def _open(self, st: _BarrierState, time: int) -> None:
        self.stats.episodes += 1
        waiting, st.waiting = st.waiting, []
        last_proc = waiting[-1][0]

        def flag_written(t: int) -> None:
            # Every waiter re-reads the sense flag; the reads serialize
            # on the bus, so wake-up is staggered like real hardware.
            for proc, cb in waiting:
                if proc == last_proc:
                    # last arrival never waited: plain overhead
                    self.machine.call_at(t + 1, lambda t2, cb=cb: cb(t2, False))
                else:
                    self.machine.issue_lock_op(
                        proc, LOCK_READ, st.line, lambda t2, cb=cb: cb(t2, True)
                    )

        # The last arrival flips the sense: an invalidation signal.
        self.machine.issue_lock_op(last_proc, LOCK_INVAL, st.line, flag_written)

    def supplier_for_line(self, line: int) -> int | None:
        return None
