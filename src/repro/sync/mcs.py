"""Mellor-Crummey--Scott list-based queue lock (extension; not in the
paper's runs).

Each contender atomically swaps itself onto the tail of a linked queue
of waiter nodes and then spins on a flag in its *own* node, so waiting
generates no bus traffic at all; a release writes the successor's node,
handing the lock over in strict FIFO order with a single cache-to-cache
transfer.  MCS is the natural end point of the queuing-lock family the
paper approximates (§2.4): the Graunke--Thakkar lock gives each waiter a
distinct spin location too, but MCS reaches it with one atomic swap
instead of an array slot computation.

Bus-op model (costs per :class:`~repro.machine.config.MachineConfig`):

* *acquire*: one atomic swap on the queue tail -- a read-for-ownership
  (``LOCK_RFO``).  Uncontended, that is the whole cost; contended, the
  swap links the node and the processor spins locally, silently.
* *contended release*: the store that sets the successor's flag
  invalidates the node line the successor spins on and delivers it
  cache-to-cache (``LOCK_XFER``, issued at the front of the successor's
  buffer -- the hand-off is the oldest obligation it has).  The releaser
  itself retires the store into its write buffer and resumes one cycle
  later.
* *uncontended release*: a compare-and-swap must verify the tail still
  points at the releaser before clearing it -- a second ``LOCK_RFO``
  (address-only when the releaser's cache still owns the line).
"""

from __future__ import annotations

from typing import Callable

from ..machine.buffers import LOCK_RFO, LOCK_XFER
from .base import LockManager

__all__ = ["MCSLockManager"]


class MCSLockManager(LockManager):
    name = "mcs"
    fifo = True

    def _spin_idle(self, proc: int) -> bool:
        """Spin signature: a linked waiter spins on its own queue node
        in its own cache -- no bus traffic, no engine event -- until the
        releaser's store to that node arrives."""
        return self._enqueued(proc)

    def acquire(self, proc, lock_id, line, time, grant_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)

        def swap_done(t: int, st=st, proc=proc, grant_cb=grant_cb, t_req=time) -> None:
            # The swap gained exclusive ownership of the tail line.
            st.cached_by = {proc}
            st.last_writer = proc
            if st.owner is None and not st.queue:
                st.owner = proc
                st.grant_time = t
                self.stats.on_acquire(lock_id, via_transfer=False)
                self.stats.on_uncontended_acquire_latency(t - t_req)
                grant_cb(t, False)
            else:
                # Linked behind the predecessor: spin on our own node,
                # in our own cache, with no further bus traffic.
                st.queue.append((proc, grant_cb, t_req))
                if self.audit is not None:
                    self.audit.on_lock_enqueue(lock_id, proc, t)

        self.machine.issue_lock_op(proc, LOCK_RFO, line, swap_done)

    def release(self, proc, lock_id, line, time, done_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)
        if st.owner != proc:
            raise RuntimeError(
                f"proc {proc} releasing lock {lock_id} owned by {st.owner}"
            )
        hold = time - st.grant_time
        st.release_time = time
        if st.queue:
            nxt, nxt_cb, _t_req = st.queue.pop(0)
            self.stats.on_release(
                hold, waiters_left=len(st.queue), transferred=True, lock_id=lock_id
            )
            # The queue node is handed to the successor at the release
            # instant; the successor resumes when the store to its node
            # reaches its cache.
            st.owner = nxt
            st.last_writer = proc
            self.stats.on_acquire(lock_id, via_transfer=True)

            def xfer_done(t: int, st=st, nxt=nxt, nxt_cb=nxt_cb, t_rel=time) -> None:
                st.cached_by.add(nxt)
                st.grant_time = t
                self.stats.on_handoff(t - t_rel)
                nxt_cb(t, True)

            self.machine.issue_lock_op(nxt, LOCK_XFER, st.line, xfer_done, front=True)
            # The releaser's store retires into its write buffer.
            self._timed_call(proc, time + 1, lambda t: done_cb(t, False))
        else:
            self.stats.on_release(hold, waiters_left=0, transferred=False, lock_id=lock_id)
            st.owner = None
            st.last_writer = proc
            # Compare-and-swap the tail back to nil.
            self.machine.issue_lock_op(proc, LOCK_RFO, line, lambda t: done_cb(t, False))
