"""Lock manager interface.

Traces record only the lock/unlock *program points* (spinning is elided,
as in MPTrace); which processor obtains a contended lock, and when, is
decided at simulation time by a :class:`LockManager`.  A manager owns:

* the logical lock state (owner, waiters/spinners);
* the lock line's *caching* state.  Lock words live on dedicated cache
  lines in a dedicated address region, so their coherence behaviour is
  tracked here rather than in the data caches: the manager knows which
  processors hold a cached copy and who last wrote the word, and tells
  the bus-service layer whether a lock-line access is served
  cache-to-cache or from memory;
* the contention statistics of Tables 4/6/8.

Managers drive the machine exclusively through :class:`LockPortAPI`, the
narrow slice of the system they are allowed to touch, which keeps every
scheme implementable (and testable) against a mock machine.
"""

from __future__ import annotations

from typing import Callable, Protocol

from .stats import LockStatsCollector

__all__ = ["LockManager", "LockPortAPI", "LockState", "SPIN_IDLE", "SPIN_OPAQUE"]

#: :meth:`LockManager.spin_wakeup` verdict: the waiter is certified
#: *idle* -- it holds no pending engine event at all (it is enqueued in
#: the manager, or spinning on a valid cached copy) and can only be
#: woken by another processor's lock operation.
SPIN_IDLE = -1
#: :meth:`LockManager.spin_wakeup` verdict: the manager cannot certify
#: this waiter's spin signature; the spin kernel must not collapse past
#: it.  This is the safe default for schemes that never call
#: :meth:`LockManager._timed_call` and declare no idle signature.
SPIN_OPAQUE = -2


class LockPortAPI(Protocol):
    """Machine services available to lock managers."""

    def issue_lock_op(
        self,
        proc: int,
        kind: int,
        line: int,
        on_done: Callable[[int], None],
        front: bool = False,
    ) -> None:
        """Queue a lock-line bus operation in ``proc``'s cache--bus buffer.
        ``on_done(time)`` fires when the operation completes."""
        ...

    def call_at(self, time: int, fn: Callable[[int], None]) -> None:
        """Schedule a plain callback (no bus traffic) at ``time``."""
        ...


class LockState:
    """Per-lock bookkeeping shared by the concrete schemes."""

    __slots__ = (
        "lock_id",
        "line",
        "owner",
        "grant_time",
        "queue",
        "spinners",
        "cached_by",
        "last_writer",
        "release_time",
        "busy_release",
    )

    def __init__(self, lock_id: int, line: int) -> None:
        self.lock_id = lock_id
        self.line = line
        self.owner: int | None = None
        self.grant_time = 0
        #: FIFO of (proc, resume_cb, request_time) -- queuing schemes
        self.queue: list = []
        #: procs spinning in their caches -- T&T&S/TAS schemes
        self.spinners: dict[int, Callable[[int], None]] = {}
        #: procs holding a (clean or dirty) cached copy of the lock line
        self.cached_by: set[int] = set()
        #: proc whose cache holds the line dirty, if any
        self.last_writer: int | None = None
        self.release_time = 0
        self.busy_release = False

    def supplier(self) -> int | None:
        """A processor able to source the lock line cache-to-cache."""
        if self.last_writer is not None:
            return self.last_writer
        if self.cached_by:
            return next(iter(self.cached_by))
        return None


class LockManager:
    """Base class: lock table, stats, machine wiring."""

    #: short identifier used by the registry/CLI ("queuing", "ttas", ...)
    name = "abstract"

    #: True for schemes that serve contended waiters in strict request
    #: order (the auditor checks FIFO hand-off against a shadow queue)
    fifo = False

    def __init__(self) -> None:
        self.locks: dict[int, LockState] = {}
        self.stats = LockStatsCollector()
        self.machine: LockPortAPI | None = None
        #: optional runtime invariant auditor (see repro.audit)
        self.audit = None
        #: spin signature: pending manager timers per processor (fire
        #: times of every live :meth:`_timed_call`); consumed by the
        #: spin-phase kernel via :meth:`spin_wakeup`
        self._spin_timers: dict[int, list[int]] = {}

    def attach(self, machine: LockPortAPI) -> None:
        self.machine = machine

    # -- spin signature (consumed by repro.machine.spinphase) -------------------
    def _timed_call(self, proc: int, when: int, fn: Callable[[int], None]) -> None:
        """``machine.call_at`` that *declares* the timer: the pending
        fire time is registered against ``proc`` until the callback
        runs, so :meth:`spin_wakeup` can bound how far a collapse may
        fast-forward.  Schemes must route every plain-callback timer
        (silent-release completions, backoff/T&S retry probes) through
        this instead of ``machine.call_at`` directly; scheduling order
        and fire times are unchanged."""
        times = self._spin_timers.setdefault(proc, [])
        times.append(when)

        def fire(t: int, times=times, when=when, fn=fn) -> None:
            times.remove(when)
            fn(t)

        self.machine.call_at(when, fire)

    def _spin_idle(self, proc: int) -> bool:
        """Scheme-declared idle-waiter signature: True iff ``proc`` is
        provably *event-free* while it waits -- enqueued in the manager
        or spinning on a valid cached copy, with nothing scheduled on
        its behalf.  The base declares nothing (opaque)."""
        return False

    def _enqueued(self, proc: int) -> bool:
        """True iff ``proc`` waits in some lock's manager queue (the
        shared idle signature of the queue-structured schemes: such a
        waiter holds no engine event and is resumed only by a release
        hand-off)."""
        for st in self.locks.values():
            for w in st.queue:
                if w[0] == proc:
                    return True
        return False

    def spin_wakeup(self, proc: int) -> int:
        """The spin signature of a lock-blocked processor: the earliest
        engine time a manager timer will run on ``proc``'s behalf,
        ``SPIN_IDLE`` if the scheme certifies the waiter holds no
        pending event at all, or ``SPIN_OPAQUE`` if it cannot say."""
        times = self._spin_timers.get(proc)
        if times:
            return min(times)
        if self._spin_idle(proc):
            return SPIN_IDLE
        return SPIN_OPAQUE

    def state_of(self, lock_id: int, line: int) -> LockState:
        st = self.locks.get(lock_id)
        if st is None:
            st = self.locks[lock_id] = LockState(lock_id, line)
        elif st.line != line:
            raise ValueError(f"lock {lock_id} used with two lines")
        return st

    def supplier_for_line(self, line: int) -> int | None:
        """Which cache, if any, can source this lock line (bus service
        queries this when arbitrating LOCK_READ/LOCK_RFO/LOCK_MEM ops)."""
        for st in self.locks.values():
            if st.line == line:
                return st.supplier()
        return None

    # -- scheme interface ------------------------------------------------------
    def acquire(
        self, proc: int, lock_id: int, line: int, time: int, grant_cb
    ) -> None:
        """Begin a lock acquisition; ``grant_cb(t, contended)`` fires when
        ``proc`` owns the lock and may resume.  ``contended`` is True when
        the processor had to wait for a held lock (charged to the paper's
        "lock wait" stall cause) and False for plain access overhead
        (charged like any memory access -- see Pverify in Table 3)."""
        raise NotImplementedError

    def release(
        self, proc: int, lock_id: int, line: int, time: int, done_cb
    ) -> None:
        """Begin a lock release; ``done_cb(t, contended)`` fires when the
        releasing processor may resume (``contended`` is always False for
        releases in the shipped schemes)."""
        raise NotImplementedError

    # -- invariants (used by tests) ---------------------------------------------
    def check_invariants(self) -> None:
        for st in self.locks.values():
            if st.owner is not None:
                assert st.owner not in [w[0] for w in st.queue], (
                    f"lock {st.lock_id}: owner also queued"
                )
                assert st.owner not in st.spinners, (
                    f"lock {st.lock_id}: owner also spinning"
                )
