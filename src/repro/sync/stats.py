"""Lock statistics collection (Tables 4, 6 and 8).

The paper's contention metrics:

* **acquisitions** -- total lock acquires that succeeded;
* **hold time** -- cycles from acquisition to release, averaged over all
  acquisitions ("Time held", first column);
* **transfers** -- releases where at least one processor was waiting, so
  the lock passed directly to a waiter ("Number");
* **waiters at transfer** -- processors *still* waiting after the lock
  has been released and acquired by the first waiter, averaged over
  transfers ("Waiters at Transfer");
* **transfer hold time** -- hold time restricted to acquisitions that
  arrived via a transfer ("Time held", last column);
* **hand-off latency** -- cycles from the release to the moment the next
  owner resumes execution (the "21--25 cycles vs 1.2--1.5 cycles" §3.2
  comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LockStats", "LockStatsCollector"]


@dataclass(frozen=True)
class LockStats:
    """Aggregated lock statistics for one simulation run."""

    acquisitions: int
    hold_cycles_total: int
    transfers: int
    waiters_at_transfer_total: int
    transfer_hold_cycles_total: int
    handoff_cycles_total: int
    uncontended_acquire_cycles_total: int
    uncontended_acquires: int
    #: per-lock breakdowns (lock id -> count), for the hot-lock profile
    per_lock_acquisitions: dict = field(default_factory=dict)
    per_lock_transfers: dict = field(default_factory=dict)
    per_lock_waiters_total: dict = field(default_factory=dict)
    per_lock_hold_total: dict = field(default_factory=dict)

    @property
    def avg_hold(self) -> float:
        return self.hold_cycles_total / self.acquisitions if self.acquisitions else 0.0

    @property
    def avg_waiters_at_transfer(self) -> float:
        return (
            self.waiters_at_transfer_total / self.transfers if self.transfers else 0.0
        )

    @property
    def avg_transfer_hold(self) -> float:
        # holds that *ended* in a transfer, matching the paper's column
        return (
            self.transfer_hold_cycles_total / self.transfers if self.transfers else 0.0
        )

    @property
    def avg_handoff(self) -> float:
        return self.handoff_cycles_total / self.transfers if self.transfers else 0.0

    @property
    def avg_uncontended_acquire(self) -> float:
        return (
            self.uncontended_acquire_cycles_total / self.uncontended_acquires
            if self.uncontended_acquires
            else 0.0
        )


@dataclass
class LockStatsCollector:
    """Mutable accumulator the lock managers write into."""

    acquisitions: int = 0
    hold_cycles_total: int = 0
    transfers: int = 0
    waiters_at_transfer_total: int = 0
    transfer_hold_cycles_total: int = 0
    handoff_cycles_total: int = 0
    uncontended_acquire_cycles_total: int = 0
    uncontended_acquires: int = 0
    # per-lock breakdowns, for the contention-profile analysis
    per_lock_acquisitions: dict[int, int] = field(default_factory=dict)
    per_lock_transfers: dict[int, int] = field(default_factory=dict)
    per_lock_waiters_total: dict[int, int] = field(default_factory=dict)
    per_lock_hold_total: dict[int, int] = field(default_factory=dict)

    def on_acquire(self, lock_id: int, via_transfer: bool) -> None:
        self.acquisitions += 1
        self.per_lock_acquisitions[lock_id] = (
            self.per_lock_acquisitions.get(lock_id, 0) + 1
        )

    def on_uncontended_acquire_latency(self, cycles: int) -> None:
        self.uncontended_acquires += 1
        self.uncontended_acquire_cycles_total += cycles

    def on_release(
        self,
        hold_cycles: int,
        waiters_left: int,
        transferred: bool,
        lock_id: int | None = None,
    ) -> None:
        self.hold_cycles_total += hold_cycles
        if lock_id is not None:
            self.per_lock_hold_total[lock_id] = (
                self.per_lock_hold_total.get(lock_id, 0) + hold_cycles
            )
        if transferred:
            self.transfers += 1
            self.waiters_at_transfer_total += waiters_left
            self.transfer_hold_cycles_total += hold_cycles
            if lock_id is not None:
                self.per_lock_transfers[lock_id] = (
                    self.per_lock_transfers.get(lock_id, 0) + 1
                )
                self.per_lock_waiters_total[lock_id] = (
                    self.per_lock_waiters_total.get(lock_id, 0) + waiters_left
                )

    def on_handoff(self, cycles: int) -> None:
        self.handoff_cycles_total += cycles

    def snapshot(self) -> LockStats:
        return LockStats(
            acquisitions=self.acquisitions,
            hold_cycles_total=self.hold_cycles_total,
            transfers=self.transfers,
            waiters_at_transfer_total=self.waiters_at_transfer_total,
            transfer_hold_cycles_total=self.transfer_hold_cycles_total,
            handoff_cycles_total=self.handoff_cycles_total,
            uncontended_acquire_cycles_total=self.uncontended_acquire_cycles_total,
            uncontended_acquires=self.uncontended_acquires,
            per_lock_acquisitions=dict(self.per_lock_acquisitions),
            per_lock_transfers=dict(self.per_lock_transfers),
            per_lock_waiters_total=dict(self.per_lock_waiters_total),
            per_lock_hold_total=dict(self.per_lock_hold_total),
        )
