"""Test-and-set with exponential backoff (extension; not in the paper's
runs).

Anderson's classic fix for the naive test-and-set lock
(:mod:`repro.sync.tas`): after a failed atomic attempt the processor
waits before retrying, and the wait doubles on every consecutive
failure up to a cap, resetting on success.  Contending processors
rapidly spread out, so the bus sees a trickle of read-for-ownership
attempts instead of the constant hammering of pure T&S -- at the price
of hand-off latency (a freed lock sits idle until the next backed-off
retry fires) and of fairness: unlike the queueing schemes there is no
FIFO order, and the longest-waiting processor has the *longest* backoff,
so it is the least likely to win the next race.

Bus-op model: every attempt is an atomic test-and-set -- one
read-for-ownership (``LOCK_RFO``) that steals the lock line.  Between
attempts the processor waits ``delay`` cycles off the bus entirely
(``delay`` starts at ``base_cycles`` per acquisition and doubles per
failure up to ``cap_cycles``).  Releases are a silent write hit when the
releaser's cache still owns the line, one ``LOCK_RFO`` otherwise.
"""

from __future__ import annotations

from typing import Callable

from ..machine.buffers import LOCK_RFO
from .base import LockManager, LockState

__all__ = ["BackoffTestAndSetLockManager"]


class BackoffTestAndSetLockManager(LockManager):
    name = "backoff"
    __test__ = False  # pytest: not a test class despite the name

    def __init__(self, base_cycles: int = 4, cap_cycles: int = 512) -> None:
        super().__init__()
        if base_cycles < 1:
            raise ValueError("base_cycles must be >= 1")
        if cap_cycles < base_cycles:
            raise ValueError("cap_cycles must be >= base_cycles")
        self.base_cycles = base_cycles
        self.cap_cycles = cap_cycles
        self._pending_transfer: dict[int, tuple[int]] = {}
        #: (lock_id, proc) -> delay before the *next* retry
        self._delay: dict[tuple[int, int], int] = {}

    def acquire(self, proc, lock_id, line, time, grant_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)
        st.spinners[proc] = grant_cb
        self._delay[(lock_id, proc)] = self.base_cycles
        self._attempt(st, proc, time)

    def _attempt(self, st: LockState, proc: int, time: int) -> None:
        def ts_done(t: int, st=st, proc=proc) -> None:
            st.cached_by = {proc}
            st.last_writer = proc
            if st.owner is None and not st.busy_release:
                grant_cb = st.spinners.pop(proc)
                self._delay.pop((st.lock_id, proc), None)
                st.owner = proc
                st.grant_time = t
                pending = self._pending_transfer.pop(st.lock_id, None)
                if pending is not None:
                    (hold,) = pending
                    self.stats.on_release(
                        hold,
                        waiters_left=len(st.spinners),
                        transferred=True,
                        lock_id=st.lock_id,
                    )
                    self.stats.on_handoff(t - st.release_time)
                    self.stats.on_acquire(st.lock_id, via_transfer=True)
                    grant_cb(t, True)
                else:
                    self.stats.on_acquire(st.lock_id, via_transfer=False)
                    grant_cb(t, False)
            else:
                key = (st.lock_id, proc)
                delay = self._delay.get(key, self.base_cycles)
                self._delay[key] = min(delay * 2, self.cap_cycles)
                self._schedule_retry(st, proc, t + delay)

        self.machine.issue_lock_op(proc, LOCK_RFO, st.line, ts_done)

    def _schedule_retry(self, st: LockState, proc: int, when: int) -> None:
        """Arm the next backed-off test-and-set attempt (a separate
        method so the audit mutation tests can corrupt exactly this
        wakeup -- see repro.audit.faults).  Routed through
        :meth:`_timed_call`, which is the scheme's spin signature: a
        backed-off waiter is *never* idle -- its capped-ladder retry
        timer bounds how far a spin-phase collapse may fast-forward."""
        self._timed_call(proc, when, lambda t: self._attempt(st, proc, t))

    def release(self, proc, lock_id, line, time, done_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)
        if st.owner != proc:
            raise RuntimeError(
                f"proc {proc} releasing lock {lock_id} owned by {st.owner}"
            )
        hold = time - st.grant_time
        st.busy_release = True

        def write_done(t: int, st=st, proc=proc, hold=hold) -> None:
            st.busy_release = False
            st.owner = None
            st.release_time = t
            st.last_writer = proc
            if st.spinners:
                self._pending_transfer[st.lock_id] = (hold,)
            else:
                self.stats.on_release(
                    hold, waiters_left=0, transferred=False, lock_id=st.lock_id
                )
            done_cb(t, False)

        if st.last_writer == proc and st.cached_by == {proc}:
            # Backed-off spinners have not stolen the line: silent hit.
            self._timed_call(proc, time + 1, write_done)
        else:
            # Reclaim the line to perform the release store.
            self.machine.issue_lock_op(proc, LOCK_RFO, line, write_done)

    def on_lock_rfo(self, line: int, proc: int, time: int) -> None:
        for st in self.locks.values():
            if st.line == line:
                st.cached_by = {proc}
                st.last_writer = proc
                return
