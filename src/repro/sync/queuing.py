"""The paper's approximation of queuing locks (§2.4).

Graunke & Thakkar queuing locks give every waiter a distinct memory
location to spin on, so a release hands the lock to exactly one waiting
processor with no contention burst.  The paper simulates a slightly
simplified scheme, which we reproduce exactly:

* *acquire*: "a memory access is made.  When the result of that access
  returns to the processor, it sees whether or not it has the lock.  If
  so, it enters the critical section.  Otherwise it stalls."
* *release*: "the processor releasing the lock does a memory access.
  Also, a cache to cache transfer is done if another processor is
  waiting for the lock" -- the transfer delivers the hand-off flag to the
  next waiter, which then resumes.

The approximation omits two bus transactions of an exact implementation
(an extra access while enqueueing, and a memory access instead of the
cache-to-cache transfer after a contended release); the exact variant in
:mod:`repro.sync.exact_queuing` restores them so the paper's "we believe
the two missing bus transactions have no impact" claim can be checked.
"""

from __future__ import annotations

from typing import Callable

from ..machine.buffers import LOCK_MEM, LOCK_XFER
from .base import LockManager

__all__ = ["QueuingLockManager"]


class QueuingLockManager(LockManager):
    name = "queuing"
    fifo = True

    #: bus-op kind used for the enqueue/acquire memory access
    _ACQ_KIND = LOCK_MEM

    def _spin_idle(self, proc: int) -> bool:
        """Spin signature: a waiter parked in the manager's FIFO holds
        no engine event; the release hand-off is what resumes it."""
        return self._enqueued(proc)

    def acquire(self, proc, lock_id, line, time, grant_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)

        def access_done(t: int, st=st, proc=proc, grant_cb=grant_cb, t_req=time) -> None:
            st.cached_by.add(proc)
            if st.owner is None and not st.queue:
                st.owner = proc
                st.grant_time = t
                self.stats.on_acquire(lock_id, via_transfer=False)
                self.stats.on_uncontended_acquire_latency(t - t_req)
                grant_cb(t, False)
            else:
                st.queue.append((proc, grant_cb, t_req))
                if self.audit is not None:
                    self.audit.on_lock_enqueue(lock_id, proc, t)

        self.machine.issue_lock_op(proc, self._ACQ_KIND, line, access_done)

    def release(self, proc, lock_id, line, time, done_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)
        if st.owner != proc:
            raise RuntimeError(
                f"proc {proc} releasing lock {lock_id} owned by {st.owner}"
            )
        hold = time - st.grant_time
        transferred = bool(st.queue)
        if transferred:
            nxt, nxt_cb, _t_req = st.queue.pop(0)
            self.stats.on_release(
                hold, waiters_left=len(st.queue), transferred=True, lock_id=lock_id
            )
            # Ownership passes at the release instant; the waiter resumes
            # (and its hold clock starts) once the cache-to-cache
            # hand-off of its flag completes.
            st.owner = nxt
            self.stats.on_acquire(lock_id, via_transfer=True)
            self._handoff(st, nxt, nxt_cb, time)
        else:
            self.stats.on_release(hold, waiters_left=0, transferred=False, lock_id=lock_id)
            st.owner = None
        st.release_time = time
        st.last_writer = proc  # the release store dirties the lock line

        # The releasing processor's own memory access for the release
        # (plain access overhead, not contention).
        self.machine.issue_lock_op(proc, LOCK_MEM, line, lambda t: done_cb(t, False))

    def _handoff(self, st, nxt: int, nxt_cb: Callable[[int], None], time: int) -> None:
        """Deliver the lock to ``nxt`` via a cache-to-cache transfer."""

        def xfer_done(t: int, st=st, nxt=nxt, nxt_cb=nxt_cb, t_rel=time) -> None:
            st.cached_by.add(nxt)
            st.grant_time = t
            self.stats.on_handoff(t - t_rel)
            nxt_cb(t, True)

        self.machine.issue_lock_op(nxt, LOCK_XFER, st.line, xfer_done, front=True)
