"""Closed-form lock-contention prediction from ideal traces.

The paper measures lock behaviour by simulating every scheme; this
module asks how far a *model* gets without the machine: from the ideal
trace's lock statistics alone (acquisition counts, hold times,
inter-acquire gaps, nesting -- :func:`profile_locks`), plus the machine
configuration's lock-operation costs, predict each scheme's lock-cycle
share and lock bus-traffic share, then validate against full
simulations (:func:`validate`).

Model
-----

Each lock is a machine-repairman closed queueing station solved by
exact Mean Value Analysis: the ``P`` processors that touch the lock
alternate between *thinking* (the mean ideal gap between critical
sections, dilated by the calibrated execution slowdown ``kappa``) and
*service* (the dilated critical section plus the scheme's release and
hand-off costs).  The MVA recursion

    R_k = S * (1 + Q_{k-1});  X_k = k / (R_k + Z);  Q_k = X_k * R_k

yields the response time ``R_P``; the predicted lock stall per
acquisition is ``R_P - kappa*hold + acquire_cost``.  The hand-off cost
depends on the waiter population for the burst schemes (ticket and the
T&S family re-read or re-race after every release), so service and
queue length are iterated to a fixed point -- a handful of rounds,
fully deterministic.

Scheme costs come from :class:`~repro.machine.config.MachineConfig`'s
lock-cost properties (`lock_c2c_cycles`, `lock_inval_cycles`,
`lock_mem_cycles`), i.e. the same numbers the simulated bus charges.
``kappa`` (how much slower than ideal non-lock execution runs, from
cache misses and bus queueing) cannot come from the trace; it is
calibrated per program from **one** baseline simulation
(:func:`calibrate`), and every scheme's prediction then reuses that
single calibration -- the predictor never sees a simulation of the
scheme it predicts.

The replay-based *unnecessary contention* report
(:func:`contention_report`) is the complementary tool: it replays each
critical section against the trace's shared-data footprints, finds the
lines actually contended (touched by two processors with a writer
among them), and measures how much of each hold lies outside the span
touching them -- the part a shorter critical section would shed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine.buffers import LOCK_INVAL, LOCK_MEM, LOCK_READ, LOCK_RFO, LOCK_XFER
from ..machine.config import MachineConfig
from ..trace.layout import PRIVATE_BASE, SHARED_BASE
from ..trace.records import LOCK, READ, REP_STRIDE, UNLOCK, WRITE
from ..trace.stats import lock_holds

__all__ = [
    "LockProfile",
    "Calibration",
    "LockPrediction",
    "Prediction",
    "LockVerdict",
    "profile_locks",
    "calibrate",
    "predict",
    "observed_lock_share",
    "observed_bus_share",
    "validate",
    "contention_report",
]

#: floor (in share units, 2 = two percentage points of share) under
#: which relative error is measured against the floor, not the
#: observation -- a 0.1%-share cell must not dominate the mean
REL_ERR_FLOOR = 2.0

#: fraction of a release burst the winner's front-of-buffer operation
#: still waits behind under round-robin arbitration (ticket / T&S
#: re-read storms); an arbitration-position estimate, validated by the
#: committed predictor-vs-simulation table
BURST_FACTOR = 1.0 / 3.0

#: geometric-overshoot factor of exponential backoff: a lone waiter's
#: doubling delay ladder overshoots the true wait by a small multiple
#: of it (the ladder's last rung equals the sum of all earlier rungs,
#: and every rung ends in a fresh bus attempt)
_BACKOFF_OVERSHOOT = 4.0


# ---------------------------------------------------------------------------
# Ideal-trace lock profiles
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LockProfile:
    """Ideal-trace statistics of one lock, aggregated over processors."""

    lock_id: int
    acquisitions: int
    procs: tuple[int, ...]  #: processors that acquire this lock
    mean_hold: float  #: mean ideal hold (cycles)
    mean_gap: float  #: mean ideal think time between CSes on one proc
    nested_frac: float  #: fraction of acquisitions nested inside another CS
    per_proc: dict[int, int] = field(default_factory=dict)

    @property
    def n_procs(self) -> int:
        return len(self.procs)


def profile_locks(traceset) -> dict[int, LockProfile]:
    """Per-lock ideal statistics: the predictor's entire trace input."""
    holds_by_lock: dict[int, dict[int, list]] = {}
    work = {t.proc: int(t.records["cycles"].astype(np.int64).sum()) for t in traceset}
    for trace in traceset:
        for h in lock_holds(trace):
            holds_by_lock.setdefault(h.lock_id, {}).setdefault(trace.proc, []).append(h)

    profiles: dict[int, LockProfile] = {}
    for lock_id, by_proc in sorted(holds_by_lock.items()):
        n_acq = sum(len(hs) for hs in by_proc.values())
        hold_total = sum(h.duration for hs in by_proc.values() for h in hs)
        nested = sum(1 for hs in by_proc.values() for h in hs if h.nested)
        gaps: list[int] = []
        for proc, hs in by_proc.items():
            hs.sort(key=lambda h: h.start)
            if len(hs) > 1:
                gaps.extend(b.start - a.end for a, b in zip(hs, hs[1:]))
            else:
                # a single CS: the rest of the proc's run is its think time
                gaps.append(work[proc] - hs[0].duration)
        profiles[lock_id] = LockProfile(
            lock_id=lock_id,
            acquisitions=n_acq,
            procs=tuple(sorted(by_proc)),
            mean_hold=hold_total / n_acq,
            mean_gap=max(0.0, sum(gaps) / len(gaps)),
            nested_frac=nested / n_acq,
            per_proc={p: len(hs) for p, hs in sorted(by_proc.items())},
        )
    return profiles


# ---------------------------------------------------------------------------
# Scheme cost models
# ---------------------------------------------------------------------------


def _scheme_model(scheme: str, cfg: MachineConfig) -> dict:
    """Latency and bus-occupancy costs of one scheme's lock operations.

    ``acquire``/``release`` are the end-to-end cycles of an uncontended
    acquire/release; ``handoff(w)`` the release-to-grant latency of a
    contended hand-off with ``w`` other waiters still spinning.  The
    ``*_bus`` entries are nominal bus occupancies of the same
    operations (a memory-path op occupies the split-transaction bus
    only for its address and data phases).
    """
    c2c = float(cfg.lock_c2c_cycles)
    inv = float(cfg.lock_inval_cycles)
    mem = float(cfg.lock_mem_cycles)
    burst = lambda w: 1.0 + BURST_FACTOR * w  # noqa: E731

    if scheme in ("queuing", "exact-queuing"):
        extra = mem if scheme == "exact-queuing" else 0.0
        hand = mem if scheme == "exact-queuing" else c2c
        return dict(
            acquire=mem + extra,
            release=mem,
            handoff=lambda w: hand,
            acquire_bus=c2c + (c2c if extra else 0.0),
            release_bus=c2c,
            handoff_bus=lambda w: c2c,
        )
    if scheme == "mcs":
        return dict(
            acquire=c2c,
            release=c2c,
            handoff=lambda w: c2c,
            acquire_bus=c2c,
            release_bus=c2c,
            handoff_bus=lambda w: c2c,
        )
    if scheme == "clh":
        return dict(
            acquire=2 * c2c,  # tail swap + predecessor-node read
            release=inv,
            handoff=lambda w: inv + c2c,
            acquire_bus=2 * c2c,
            release_bus=inv,
            handoff_bus=lambda w: inv + c2c,
        )
    if scheme == "ticket":
        return dict(
            acquire=c2c,
            release=inv,
            # now-serving invalidation, then every waiter re-reads; the
            # winner's front-of-buffer read still queues behind part of
            # the burst
            handoff=lambda w: inv + c2c * burst(w),
            acquire_bus=c2c,
            release_bus=inv,
            handoff_bus=lambda w: inv + c2c * (1.0 + w),
        )
    if scheme == "ttas":
        return dict(
            acquire=2 * c2c,  # spin read, then the test-and-set
            release=inv,
            # invalidation, re-read burst, then the winner's T&S
            handoff=lambda w: inv + c2c * (1.0 + burst(w)),
            acquire_bus=2 * c2c,
            release_bus=inv,
            handoff_bus=lambda w: inv + c2c * (2.0 + w),
        )
    if scheme == "tas":
        return dict(
            acquire=c2c,
            release=c2c,
            # the release store races the spinners' constant RFO storm
            handoff=lambda w: c2c * burst(w),
            acquire_bus=c2c,
            release_bus=c2c,
            handoff_bus=lambda w: c2c * (1.0 + w),
        )
    if scheme == "backoff":
        from .backoff import BackoffTestAndSetLockManager as _B

        base = float(_B.__init__.__defaults__[0])
        cap = float(_B.__init__.__defaults__[1])
        return dict(
            acquire=c2c,
            release=c2c,
            # a freed lock idles until the next backed-off retry fires;
            # with w spinners spread over doubled delays the expected
            # idle is about half the population's base spread
            handoff=lambda w: c2c + min(cap, base * max(1.0, w)) / 2.0,
            # the winner overshoots: its delay ladder doubled past the
            # true wait, so a lone waiter stalls a constant factor
            # longer than the queueing delay; with many staggered
            # waiters some timer always fires promptly and the
            # inflation washes out
            wait_inflation=lambda w: 1.0 + _BACKOFF_OVERSHOOT / (1.0 + w) ** 2,
            acquire_bus=c2c,
            release_bus=c2c,
            handoff_bus=lambda w: c2c,
        )
    raise ValueError(f"no cost model for lock scheme {scheme!r}")


# ---------------------------------------------------------------------------
# Calibration (one baseline simulation per program)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Calibration:
    """Per-program machine factors the trace cannot provide."""

    kappa: float  #: non-lock execution dilation vs ideal cycles
    nonlock_cycles: int  #: sum over procs of completion - lock stall
    nonlock_bus_cycles: float  #: bus busy cycles minus nominal lock traffic
    baseline_scheme: str


#: nominal bus occupancy of each lock-op kind (memory access time is
#: off-bus on the split-transaction bus)
def _lock_op_bus_cycles(cfg: MachineConfig) -> dict[int, float]:
    c2c = float(cfg.lock_c2c_cycles)
    inv = float(cfg.lock_inval_cycles)
    return {
        LOCK_MEM: c2c,
        LOCK_READ: c2c,
        LOCK_RFO: c2c,
        LOCK_INVAL: inv,
        LOCK_XFER: c2c,
    }


def _lock_bus_cycles(bus_op_counts: dict, cfg: MachineConfig) -> float:
    table = _lock_op_bus_cycles(cfg)
    return sum(table[k] * n for k, n in bus_op_counts.items() if k in table)


def calibrate(traceset, result, cfg: MachineConfig | None = None) -> Calibration:
    """Derive the machine factors from one baseline run of the program."""
    cfg = cfg or MachineConfig(n_procs=traceset.n_procs)
    ideal = sum(int(t.records["cycles"].astype(np.int64).sum()) for t in traceset)
    nonlock = sum(m.completion_time - m.stall_lock for m in result.proc_metrics)
    return Calibration(
        kappa=nonlock / ideal if ideal else 1.0,
        nonlock_cycles=nonlock,
        nonlock_bus_cycles=max(
            0.0, result.bus_busy_cycles - _lock_bus_cycles(result.bus_op_counts, cfg)
        ),
        baseline_scheme=result.lock_scheme,
    )


# ---------------------------------------------------------------------------
# The predictor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LockPrediction:
    """Predicted steady-state behaviour of one lock under one scheme."""

    lock_id: int
    acquisitions: int
    n_procs: int
    service: float  #: dilated CS + release + hand-off (cycles)
    wait: float  #: queueing delay per acquisition (cycles)
    waiters: float  #: mean waiter population seen at a hand-off
    contended_frac: float  #: predicted fraction of contended acquisitions
    stall_cycles: float  #: total predicted lock stall attributed here


@dataclass(frozen=True)
class Prediction:
    """One scheme's predicted contention profile for one program."""

    program: str
    scheme: str
    lock_share: float  #: % of total processor cycles stalled on locks
    bus_share: float  #: % of bus busy cycles that are lock operations
    stall_cycles: float
    run_cycles: float
    per_lock: tuple = ()


def _mva(n: int, service: float, think: float) -> tuple[float, float, float]:
    """Exact MVA for one closed station: (response, throughput, queue)."""
    q = 0.0
    resp = service
    thru = 0.0
    for k in range(1, n + 1):
        resp = service * (1.0 + q)
        thru = k / (resp + think) if (resp + think) > 0 else 0.0
        q = thru * resp
    return resp, thru, q


def predict(
    traceset,
    scheme: str,
    calibration: Calibration,
    cfg: MachineConfig | None = None,
    program: str = "",
) -> Prediction:
    """Predict ``scheme``'s lock-cycle and bus-traffic shares."""
    cfg = cfg or MachineConfig(n_procs=traceset.n_procs)
    model = _scheme_model(scheme, cfg)
    kappa = calibration.kappa
    profiles = profile_locks(traceset)

    per_lock = []
    stall_total = 0.0
    lock_bus_total = 0.0
    for prof in profiles.values():
        n = prof.n_procs
        hold = kappa * prof.mean_hold
        think = kappa * prof.mean_gap + model["acquire"]
        waiters = 0.0
        contended = 0.0
        resp = hold
        for _ in range(6):  # service<->population fixed point
            service = hold + model["release"] + contended * model["handoff"](waiters)
            resp, thru, q = _mva(n, service, think)
            waiters = max(0.0, q - 1.0)
            # chance an acquisition finds the lock busy: the other
            # processors' share of the server's utilization
            contended = min(1.0, thru * service * (n - 1) / n) if n > 1 else 0.0
        wait = max(0.0, resp - hold)
        inflate = model.get("wait_inflation")
        if inflate is not None:
            wait *= inflate(waiters)
        stall = prof.acquisitions * (wait + model["acquire"])
        stall_total += stall
        transfers = prof.acquisitions * contended
        lock_bus_total += prof.acquisitions * (
            model["acquire_bus"] + model["release_bus"]
        ) + transfers * model["handoff_bus"](waiters)
        per_lock.append(
            LockPrediction(
                lock_id=prof.lock_id,
                acquisitions=prof.acquisitions,
                n_procs=n,
                service=service,
                wait=wait,
                waiters=waiters,
                contended_frac=contended,
                stall_cycles=stall,
            )
        )

    run_cycles = calibration.nonlock_cycles + stall_total
    bus_cycles = calibration.nonlock_bus_cycles + lock_bus_total
    return Prediction(
        program=program or traceset.program,
        scheme=scheme,
        lock_share=100.0 * stall_total / run_cycles if run_cycles else 0.0,
        bus_share=100.0 * lock_bus_total / bus_cycles if bus_cycles else 0.0,
        stall_cycles=stall_total,
        run_cycles=run_cycles,
        per_lock=tuple(per_lock),
    )


# ---------------------------------------------------------------------------
# Observation + validation
# ---------------------------------------------------------------------------


def observed_lock_share(result) -> float:
    """% of all processor cycles spent stalled on locks in a run."""
    total = sum(m.completion_time for m in result.proc_metrics)
    if not total:
        return 0.0
    return 100.0 * sum(m.stall_lock for m in result.proc_metrics) / total


def observed_bus_share(result, cfg: MachineConfig | None = None) -> float:
    """% of bus busy cycles spent on lock operations (nominal costs)."""
    cfg = cfg or MachineConfig(n_procs=result.n_procs)
    if not result.bus_busy_cycles:
        return 0.0
    return 100.0 * _lock_bus_cycles(result.bus_op_counts, cfg) / result.bus_busy_cycles


def relative_error(predicted: float, observed: float) -> float:
    """|pred - obs| relative to the observation, floored at
    :data:`REL_ERR_FLOOR` share points so near-zero cells cannot blow
    up the mean."""
    return abs(predicted - observed) / max(abs(observed), REL_ERR_FLOOR)


def validate(
    traceset,
    schemes,
    cfg: MachineConfig | None = None,
    baseline_scheme: str = "queuing",
    program: str = "",
) -> list[dict]:
    """Predictor-vs-simulation rows for one program across ``schemes``.

    Runs one baseline simulation to calibrate, then for every scheme
    one prediction (closed form) and one full simulation (ground
    truth).  Fully deterministic: same traceset and config give the
    same table bit-for-bit.
    """
    from ..consistency import SEQUENTIAL
    from ..machine.system import simulate
    from . import get_lock_manager

    cfg = cfg or MachineConfig(n_procs=traceset.n_procs)
    program = program or traceset.program
    base = simulate(traceset, cfg, get_lock_manager(baseline_scheme), SEQUENTIAL)
    cal = calibrate(traceset, base, cfg)

    rows = []
    for scheme in schemes:
        pred = predict(traceset, scheme, cal, cfg, program=program)
        sim = simulate(traceset, cfg, get_lock_manager(scheme), SEQUENTIAL)
        obs_lock = observed_lock_share(sim)
        obs_bus = observed_bus_share(sim, cfg)
        rows.append(
            {
                "program": program,
                "scheme": scheme,
                "predicted_lock_share": round(pred.lock_share, 4),
                "observed_lock_share": round(obs_lock, 4),
                "lock_rel_err": round(relative_error(pred.lock_share, obs_lock), 4),
                "predicted_bus_share": round(pred.bus_share, 4),
                "observed_bus_share": round(obs_bus, 4),
                "bus_rel_err": round(relative_error(pred.bus_share, obs_bus), 4),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Replay-based unnecessary-contention report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LockVerdict:
    """Replay verdict on one lock's critical sections."""

    lock_id: int
    acquisitions: int
    n_procs: int
    mean_hold: float  #: ideal cycles
    conflict_lines: int  #: shared lines touched by >= 2 procs, >= 1 writer
    shrinkable_frac: float  #: mean hold fraction outside the conflict span
    verdict: str  #: "no-shared-conflict" | "shrinkable" | "tight"
    #: from a simulation result, when provided
    transfers: int = -1
    sim_waiters: float = -1.0


#: a lock whose holds spend at least this fraction outside the
#: conflicting span is flagged shrinkable
SHRINKABLE_THRESHOLD = 0.25


def _cs_spans(trace) -> list[tuple[int, int, int]]:
    """(lock_id, first_record_idx, last_record_idx) per critical
    section, inclusive of the LOCK/UNLOCK records themselves."""
    kinds = trace.records["kind"]
    idx = np.flatnonzero((kinds == LOCK) | (kinds == UNLOCK))
    spans = []
    open_at: dict[int, int] = {}
    for i in idx:
        rec = trace.records[i]
        lid = int(rec["arg"])
        if rec["kind"] == LOCK:
            open_at[lid] = int(i)
        else:
            spans.append((lid, open_at.pop(lid), int(i)))
    return spans


def _record_lines(rec, shift: int) -> range:
    """Cache lines covered by one data record (repetition-expanded)."""
    first = int(rec["addr"]) >> shift
    last = (int(rec["addr"]) + (int(rec["arg"]) - 1) * REP_STRIDE) >> shift
    return range(first, last + 1)


def contention_report(
    traceset,
    cfg: MachineConfig | None = None,
    result=None,
) -> list[LockVerdict]:
    """Replay every critical section against the shared-data footprints.

    A line is *conflicting* for a lock if, across all of that lock's
    critical sections, at least two processors touch it and at least
    one writes it -- the data the lock actually arbitrates.  Hold
    cycles outside the span of conflicting accesses are *shrinkable*:
    a narrower critical section would shed them without changing what
    the lock protects.  A lock with no conflicting lines at all
    arbitrates nothing and is flagged outright.

    Pass a simulated :class:`~repro.machine.metrics.RunResult` to fold
    in the measured contention (transfers, mean waiters) per lock.
    """
    cfg = cfg or MachineConfig(n_procs=traceset.n_procs)
    shift = cfg.cache.offset_bits
    profiles = profile_locks(traceset)

    # pass 1: per lock, which procs read/write which shared lines in CS
    readers: dict[int, dict[int, set]] = {}
    writers: dict[int, dict[int, set]] = {}
    spans_by_trace = {}
    for trace in traceset:
        spans = _cs_spans(trace)
        spans_by_trace[trace.proc] = spans
        recs = trace.records
        for lid, i0, i1 in spans:
            for i in range(i0 + 1, i1):
                rec = recs[i]
                kind = int(rec["kind"])
                if kind != READ and kind != WRITE:
                    continue
                addr = int(rec["addr"])
                if not (SHARED_BASE <= addr < PRIVATE_BASE):
                    continue
                sink = writers if kind == WRITE else readers
                per_line = sink.setdefault(lid, {})
                for line in _record_lines(rec, shift):
                    per_line.setdefault(line, set()).add(trace.proc)

    conflicts: dict[int, set] = {}
    for lid in profiles:
        conflict = set()
        w = writers.get(lid, {})
        r = readers.get(lid, {})
        for line, wprocs in w.items():
            touchers = wprocs | r.get(line, set())
            if len(touchers) >= 2:
                conflict.add(line)
        conflicts[lid] = conflict

    # pass 2: per CS, the hold fraction outside the conflicting span
    shrink: dict[int, list[float]] = {lid: [] for lid in profiles}
    for trace in traceset:
        recs = trace.records
        cyc = recs["cycles"].astype(np.int64)
        pos = np.cumsum(cyc) - cyc  # cycle at which each record begins
        for lid, i0, i1 in spans_by_trace[trace.proc]:
            conflict = conflicts[lid]
            duration = int(pos[i1] - pos[i0])
            if duration <= 0:
                shrink[lid].append(0.0)
                continue
            first = last = -1
            if conflict:
                for i in range(i0 + 1, i1):
                    rec = recs[i]
                    kind = int(rec["kind"])
                    if kind != READ and kind != WRITE:
                        continue
                    if any(ln in conflict for ln in _record_lines(rec, shift)):
                        if first < 0:
                            first = i
                        last = i
            if first < 0:
                shrink[lid].append(1.0)
            else:
                span = int(pos[last] + cyc[last] - pos[first])
                shrink[lid].append(max(0.0, 1.0 - span / duration))

    sim_per_lock = {}
    if result is not None:
        stats = result.lock_stats
        for lid in profiles:
            sim_per_lock[lid] = (
                stats.per_lock_transfers.get(lid, 0),
                stats.per_lock_acquisitions.get(lid, 0),
            )

    verdicts = []
    for lid, prof in profiles.items():
        fracs = shrink[lid]
        mean_shrink = sum(fracs) / len(fracs) if fracs else 0.0
        n_conflict = len(conflicts[lid])
        if n_conflict == 0:
            verdict = "no-shared-conflict"
        elif mean_shrink >= SHRINKABLE_THRESHOLD:
            verdict = "shrinkable"
        else:
            verdict = "tight"
        transfers = -1
        waiters = -1.0
        if result is not None:
            transfers, _acq = sim_per_lock[lid]
            stats = result.lock_stats
            if stats.transfers:
                waiters = stats.waiters_at_transfer_total / stats.transfers
        verdicts.append(
            LockVerdict(
                lock_id=lid,
                acquisitions=prof.acquisitions,
                n_procs=prof.n_procs,
                mean_hold=round(prof.mean_hold, 2),
                conflict_lines=n_conflict,
                shrinkable_frac=round(mean_shrink, 4),
                verdict=verdict,
                transfers=transfers,
                sim_waiters=round(waiters, 2),
            )
        )
    return verdicts
