"""Craig--Landin--Hagersten queue lock (extension; not in the paper's
runs).

Like MCS, CLH builds an implicit FIFO queue with one atomic swap on a
tail pointer; unlike MCS, each waiter spins on its *predecessor's* node
rather than its own.  On a cache-coherent bus the first read of the
predecessor's node migrates it into the spinner's cache, spinning is
then silent, and the predecessor's release store invalidates that copy,
so the hand-off costs one invalidation plus one cache-to-cache re-read.

Bus-op model (costs per :class:`~repro.machine.config.MachineConfig`):

* *acquire*: the atomic swap on the tail (``LOCK_RFO``) fixes the
  queue position, then the processor reads its predecessor's node
  (``LOCK_READ``).  Uncontended, the read observes the lock free and the
  acquisition completes; contended, the copy settles into the cache and
  the processor spins silently.
* *contended release*: the store to the releaser's own node must first
  invalidate the successor's cached copy (``LOCK_INVAL``); the
  successor's next spin read then misses and re-fetches the node
  cache-to-cache (``LOCK_XFER``, at the front of its buffer).  CLH
  hand-off therefore costs one address cycle more than MCS's single
  transfer.
* *uncontended release*: the store hits the releaser's own node -- a
  silent write when the line is still exclusively cached, an
  invalidation otherwise.
"""

from __future__ import annotations

from typing import Callable

from ..machine.buffers import LOCK_INVAL, LOCK_READ, LOCK_RFO, LOCK_XFER
from .base import LockManager

__all__ = ["CLHLockManager"]


class CLHLockManager(LockManager):
    name = "clh"
    fifo = True

    def _spin_idle(self, proc: int) -> bool:
        """Spin signature: a queued waiter spins on its predecessor's
        node from its own cache -- silent until the predecessor's
        release store invalidates the copy."""
        return self._enqueued(proc)

    def acquire(self, proc, lock_id, line, time, grant_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)

        def swap_done(t: int, st=st, proc=proc, grant_cb=grant_cb, t_req=time) -> None:
            st.cached_by = {proc}
            st.last_writer = proc
            if st.owner is None and not st.queue:
                # Queue position fixed by the swap; ownership is ours,
                # but the acquisition completes only once the read of
                # the predecessor's node observes it released.  Declare
                # the early claim so the auditor can distinguish waiters
                # that queue behind us during the read from a queue jump.
                st.owner = proc
                if self.audit is not None:
                    self.audit.on_lock_claim(lock_id, proc, t)

                def read_done(t2: int, st=st, proc=proc, grant_cb=grant_cb, t_req=t_req) -> None:
                    st.cached_by.add(proc)
                    st.grant_time = t2
                    self.stats.on_acquire(st.lock_id, via_transfer=False)
                    self.stats.on_uncontended_acquire_latency(t2 - t_req)
                    grant_cb(t2, False)

                self.machine.issue_lock_op(proc, LOCK_READ, st.line, read_done)
            else:
                # Spin (silently, once cached) on the predecessor's node.
                st.queue.append((proc, grant_cb, t_req))
                if self.audit is not None:
                    self.audit.on_lock_enqueue(lock_id, proc, t)

        self.machine.issue_lock_op(proc, LOCK_RFO, line, swap_done)

    def release(self, proc, lock_id, line, time, done_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)
        if st.owner != proc:
            raise RuntimeError(
                f"proc {proc} releasing lock {lock_id} owned by {st.owner}"
            )
        hold = time - st.grant_time
        st.release_time = time
        if st.queue:
            nxt, nxt_cb, _t_req = st.queue.pop(0)
            self.stats.on_release(
                hold, waiters_left=len(st.queue), transferred=True, lock_id=lock_id
            )
            st.owner = nxt
            self.stats.on_acquire(lock_id, via_transfer=True)

            def store_done(t: int, st=st, proc=proc, nxt=nxt, nxt_cb=nxt_cb, t_rel=time) -> None:
                # The release store owns the node line exclusively now.
                st.cached_by = {proc}
                st.last_writer = proc
                done_cb(t, False)

                def reread_done(t2: int, st=st, nxt=nxt, nxt_cb=nxt_cb, t_rel=t_rel) -> None:
                    st.cached_by.add(nxt)
                    st.grant_time = t2
                    self.stats.on_handoff(t2 - t_rel)
                    nxt_cb(t2, True)

                # The successor's spin read misses and re-fetches the
                # released node from the releaser's cache.
                self.machine.issue_lock_op(nxt, LOCK_XFER, st.line, reread_done, front=True)

            # Invalidate the successor's cached copy of our node.
            self.machine.issue_lock_op(proc, LOCK_INVAL, st.line, store_done)
        else:
            self.stats.on_release(hold, waiters_left=0, transferred=False, lock_id=lock_id)
            st.owner = None
            if st.cached_by == {proc} and st.last_writer == proc:
                # Node line still MODIFIED locally: silent write hit.
                self._timed_call(proc, time + 1, lambda t: done_cb(t, False))
            else:
                st.cached_by = {proc}
                st.last_writer = proc
                self.machine.issue_lock_op(proc, LOCK_INVAL, st.line, lambda t: done_cb(t, False))
