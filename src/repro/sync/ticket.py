"""Ticket lock (extension; not in the paper's runs).

A fetch-and-increment hands every contender a unique ticket; a
now-serving counter grants the lock in strict ticket (FIFO) order.
There is no test-and-set race, so a release passes the lock to exactly
one predetermined waiter -- but every waiter spins on the *same*
now-serving word, so a release still invalidates all spin copies and
triggers a burst of re-reads, one per waiter, exactly like
test-and-test-and-set's release burst.  The ticket lock therefore sits
between the paper's two schemes: queuing-lock fairness with
T&T&S-shaped release traffic that grows with the number of waiters.

Bus-op model (costs per :class:`~repro.machine.config.MachineConfig`):

* *acquire*: the fetch-and-increment of the next-ticket word is a
  read-for-ownership (``LOCK_RFO``); the line it returns carries the
  now-serving word too, so an uncontended acquire needs no further
  traffic, and a contended one settles into a silent cached spin.
  (The two words are modeled as padded -- an arriving ticket grab does
  not disturb the spinners' now-serving copies.)
* *release*: the now-serving increment invalidates every spinner's
  copy (``LOCK_INVAL``); each waiter then re-reads the line
  (``LOCK_READ``), the new holder's re-read at the front of its buffer.
  Only the waiter whose ticket matches proceeds; the rest re-cache and
  keep spinning, so each release costs one invalidation plus one read
  per waiter on the bus.
"""

from __future__ import annotations

from typing import Callable

from ..machine.buffers import LOCK_INVAL, LOCK_READ, LOCK_RFO
from .base import LockManager, LockState

__all__ = ["TicketLockManager"]


class TicketLockManager(LockManager):
    name = "ticket"
    fifo = True

    def __init__(self) -> None:
        super().__init__()
        #: procs with a lock-line re-read in flight, per lock id
        self._inflight: dict[int, set[int]] = {}
        #: lock_id -> (proc, grant_cb, release_time): a hand-off whose
        #: winning re-read of now-serving has not yet completed
        self._grant_pending: dict[int, tuple] = {}

    def _infl(self, lock_id: int) -> set[int]:
        return self._inflight.setdefault(lock_id, set())

    def _spin_idle(self, proc: int) -> bool:
        """Spin signature: a ticketed waiter spins on its cached copy of
        the now-serving word -- silent until the release invalidation --
        so an enqueued waiter with no re-read in flight is idle."""
        for st in self.locks.values():
            if proc in self._infl(st.lock_id):
                return False
        return self._enqueued(proc)

    # -- acquire ----------------------------------------------------------------
    def acquire(self, proc, lock_id, line, time, grant_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)

        def fai_done(t: int, st=st, proc=proc, grant_cb=grant_cb, t_req=time) -> None:
            # The fetch-and-increment returned the line: it carries the
            # now-serving word, so the processor can compare and, if it
            # must wait, spin on its cached copy.
            st.cached_by.add(proc)
            st.last_writer = proc
            if st.owner is None and not st.queue:
                st.owner = proc
                st.grant_time = t
                self.stats.on_acquire(lock_id, via_transfer=False)
                self.stats.on_uncontended_acquire_latency(t - t_req)
                grant_cb(t, False)
            else:
                # Ticket order is arrival order of the serialized
                # fetch-and-increments: strict FIFO.
                st.queue.append((proc, grant_cb, t_req))
                if self.audit is not None:
                    self.audit.on_lock_enqueue(lock_id, proc, t)

        self.machine.issue_lock_op(proc, LOCK_RFO, line, fai_done)

    # -- release ----------------------------------------------------------------
    def release(self, proc, lock_id, line, time, done_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)
        if st.owner != proc:
            raise RuntimeError(
                f"proc {proc} releasing lock {lock_id} owned by {st.owner}"
            )
        hold = time - st.grant_time
        st.release_time = time
        if st.queue:
            nxt, nxt_cb, _t_req = st.queue.pop(0)
            self.stats.on_release(
                hold, waiters_left=len(st.queue), transferred=True, lock_id=lock_id
            )
            # now-serving advances to nxt's ticket at the release
            # instant; nxt resumes once its re-read observes it.
            st.owner = nxt
            self.stats.on_acquire(lock_id, via_transfer=True)
            self._grant_pending[lock_id] = (nxt, nxt_cb, time)
            spinners = [nxt] + [p for p, _cb, _t in st.queue]

            def store_done(t: int, st=st, proc=proc, spinners=spinners) -> None:
                st.cached_by = {proc}
                st.last_writer = proc
                done_cb(t, False)
                # The invalidation knocked out every spinner's copy of
                # now-serving; each one's next spin read hits the bus.
                self._spin_read(st, spinners[0], front=True)
                for p in spinners[1:]:
                    self._spin_read(st, p, front=False)

            self.machine.issue_lock_op(proc, LOCK_INVAL, line, store_done)
        else:
            self.stats.on_release(hold, waiters_left=0, transferred=False, lock_id=lock_id)
            st.owner = None
            if st.cached_by == {proc} and st.last_writer == proc:
                # Line still MODIFIED locally: the increment is silent.
                self._timed_call(proc, time + 1, lambda t: done_cb(t, False))
            else:
                st.cached_by = {proc}
                st.last_writer = proc
                self.machine.issue_lock_op(proc, LOCK_INVAL, line, lambda t: done_cb(t, False))

    def _spin_read(self, st: LockState, proc: int, front: bool = False) -> None:
        """Re-fetch the now-serving line after an invalidation."""
        infl = self._infl(st.lock_id)
        if proc in infl:
            return
        infl.add(proc)

        def read_done(t: int, st=st, proc=proc) -> None:
            self._infl(st.lock_id).discard(proc)
            st.cached_by.add(proc)
            pending = self._grant_pending.get(st.lock_id)
            if pending is not None and pending[0] == proc:
                _nxt, grant_cb, t_rel = self._grant_pending.pop(st.lock_id)
                st.grant_time = t
                self.stats.on_handoff(t - t_rel)
                grant_cb(t, True)
            # else: the ticket does not match yet; spin in cache

        self.machine.issue_lock_op(proc, LOCK_READ, st.line, read_done, front=front)
