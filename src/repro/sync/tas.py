"""Naive test-and-set lock (extension baseline; not in the paper's runs).

Every acquisition attempt is an atomic test-and-set on the bus -- the
scheme test-and-test-and-set was invented to fix.  Spinners hammer the
bus with read-for-ownership operations for the whole time the lock is
held, stealing the line back and forth, so bus utilization explodes with
even modest contention.  A configurable backoff bounds the op rate (and
the simulation's event count); backoff 0 is the pure pathological
version and should only be simulated on small traces.
"""

from __future__ import annotations

from typing import Callable

from ..machine.buffers import LOCK_RFO
from .base import LockManager, LockState

__all__ = ["TestAndSetLockManager"]


class TestAndSetLockManager(LockManager):
    name = "tas"
    __test__ = False  # pytest: not a test class despite the name

    def __init__(self, backoff_cycles: int = 16) -> None:
        super().__init__()
        if backoff_cycles < 0:
            raise ValueError("backoff_cycles must be >= 0")
        self.backoff_cycles = backoff_cycles
        self._pending_transfer: dict[int, tuple[int]] = {}

    def acquire(self, proc, lock_id, line, time, grant_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)
        st.spinners[proc] = grant_cb
        self._attempt(st, proc, time)

    def _attempt(self, st: LockState, proc: int, time: int) -> None:
        def ts_done(t: int, st=st, proc=proc) -> None:
            st.cached_by = {proc}
            st.last_writer = proc
            if st.owner is None and not st.busy_release:
                grant_cb = st.spinners.pop(proc)
                st.owner = proc
                st.grant_time = t
                pending = self._pending_transfer.pop(st.lock_id, None)
                if pending is not None:
                    (hold,) = pending
                    self.stats.on_release(
                        hold,
                        waiters_left=len(st.spinners),
                        transferred=True,
                        lock_id=st.lock_id,
                    )
                    self.stats.on_handoff(t - st.release_time)
                    self.stats.on_acquire(st.lock_id, via_transfer=True)
                    grant_cb(t, True)
                else:
                    self.stats.on_acquire(st.lock_id, via_transfer=False)
                    grant_cb(t, False)
            elif self.backoff_cycles:
                self._timed_call(
                    proc, t + self.backoff_cycles, lambda t2: self._attempt(st, proc, t2)
                )
            else:
                self._attempt(st, proc, t)

        self.machine.issue_lock_op(proc, LOCK_RFO, st.line, ts_done)

    def release(self, proc, lock_id, line, time, done_cb: Callable[[int], None]) -> None:
        st = self.state_of(lock_id, line)
        if st.owner != proc:
            raise RuntimeError(
                f"proc {proc} releasing lock {lock_id} owned by {st.owner}"
            )
        hold = time - st.grant_time
        st.busy_release = True

        def write_done(t: int, st=st, proc=proc, hold=hold) -> None:
            st.busy_release = False
            st.owner = None
            st.release_time = t
            st.last_writer = proc
            if st.spinners:
                self._pending_transfer[st.lock_id] = (hold,)
            else:
                self.stats.on_release(
                    hold, waiters_left=0, transferred=False, lock_id=st.lock_id
                )
            done_cb(t, False)

        if st.last_writer == proc and st.cached_by == {proc}:
            # Spinner RFOs have not stolen the line: silent write hit.
            self._timed_call(proc, time + 1, write_done)
        else:
            # Reclaim the line to perform the release store.
            self.machine.issue_lock_op(proc, LOCK_RFO, line, write_done)

    def on_lock_rfo(self, line: int, proc: int, time: int) -> None:
        for st in self.locks.values():
            if st.line == line:
                st.cached_by = {proc}
                st.last_writer = proc
                return
