"""Streaming result aggregator: fold outcomes into manifests and tables.

The service never holds a whole sweep in memory before reporting it:
each finished cell is folded, as it lands, into

* an append-only JSONL manifest (the executor-manifest schema of
  :mod:`repro.runner.manifest`, so ``run_jobs(..., resume=True)`` and
  service restarts read the same file), and
* an incremental per-cell summary table keyed by
  ``(program, lock_scheme, consistency)``.

Crash tolerance is part of the contract: on resume the aggregator
replays the manifest through :func:`repro.runner.manifest.load_records`,
which skips truncated or corrupt trailing lines (a writer killed
mid-append), so a restarted service resumes from the last durable cell
instead of dying on a torn line.
"""

from __future__ import annotations

import os
from collections import Counter

from ..core.report import render_table
from ..runner.manifest import append_record, load_records
from ..runner.serialize import result_from_dict

__all__ = ["StreamAggregator"]

#: summary columns extracted from serialized results (manifest "ok"
#: lines carry the full result dict of repro.runner.serialize)
_COLUMNS = ("run-time", "util %", "lock stall %", "bus %")


def _summarize_result(result: dict) -> dict:
    """Table row for one serialized result -- decoded through the same
    serializer the cache uses, so the derived columns (utilization,
    stall shares) are exactly the RunResult properties the paper tables
    print."""
    r = result_from_dict(result)
    return {
        "run-time": r.run_time,
        "util %": round(100 * r.avg_utilization, 1),
        "lock stall %": round(r.stall_pct_lock, 1),
        "bus %": round(100 * r.bus_utilization, 1),
    }


class StreamAggregator:
    """Fold manifest-schema records into durable + queryable state.

    ``manifest_path=None`` keeps the aggregator purely in-memory (the
    in-process test harness); with a path every record is appended
    durably *before* it is folded, so the on-disk manifest is always at
    least as complete as the in-memory view.
    """

    def __init__(self, manifest_path: str | os.PathLike | None = None, resume: bool = False) -> None:
        self.manifest_path = str(manifest_path) if manifest_path else None
        self.status_counts: Counter = Counter()
        self.cells: dict[tuple, dict] = {}  # (program, scheme, model) -> row
        self.failures: list[dict] = []
        self.recovered = 0
        if resume and self.manifest_path:
            # load_records skips torn/corrupt lines from a crashed writer
            for rec in load_records(self.manifest_path):
                self._fold(rec)
                self.recovered += 1

    # ------------------------------------------------------------------
    def record(self, rec: dict) -> None:
        """Durably append one manifest record, then fold it."""
        if self.manifest_path is not None:
            append_record(self.manifest_path, rec)
        self._fold(rec)

    def _fold(self, rec: dict) -> None:
        status = rec.get("status", "unknown")
        self.status_counts[status] += 1
        spec = rec.get("spec") or {}
        cell_key = (
            spec.get("program") or rec.get("label", "?"),
            spec.get("lock_scheme", "?"),
            spec.get("consistency", "?"),
        )
        if status in ("ok", "resumed") and isinstance(rec.get("result"), dict):
            row = {"status": status, "key": rec.get("key", "")}
            row.update(_summarize_result(rec["result"]))
            self.cells[cell_key] = row
        elif status == "cached":
            self.cells.setdefault(
                cell_key, {"status": "cached", "key": rec.get("key", "")}
            )
        elif status == "failed":
            err = rec.get("error") or {}
            self.failures.append(
                {
                    "key": rec.get("key", ""),
                    "label": rec.get("label", "?"),
                    "kind": err.get("kind", "error"),
                    "message": err.get("message", ""),
                    "attempts": rec.get("attempts", 0),
                }
            )

    # ------------------------------------------------------------------
    def completed_keys(self) -> set:
        """Keys with a durable result row (for resume planning)."""
        return {
            row["key"] for row in self.cells.values() if row.get("key")
        }

    def table(self, title: str = "sweep progress") -> str:
        """Incremental text table over every cell seen so far."""
        header = ["cell"] + list(_COLUMNS)
        rows = []
        for (program, scheme, model), row in sorted(self.cells.items()):
            rows.append(
                [f"{program}/{scheme}/{model}"]
                + [row.get(c, "-") for c in _COLUMNS]
            )
        return render_table(header, rows, title=title)

    def to_dict(self) -> dict:
        return {
            "statuses": dict(self.status_counts),
            "cells": len(self.cells),
            "failures": self.failures[-20:],
            "recovered": self.recovered,
            "manifest_path": self.manifest_path,
        }

    def summary(self) -> str:
        parts = [f"{v} {k}" for k, v in sorted(self.status_counts.items())]
        return f"{len(self.cells)} cell(s): " + (", ".join(parts) or "none yet")
