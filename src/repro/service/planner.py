"""Shard planner: split sweep grids into balanced shards.

A sweep grid (programs x locks x models, or any explicit spec list) is
embarrassingly parallel but wildly uneven: at scale 1.0 a Qsort cell
costs ~6x a Topopt cell (see the committed ``BENCH_hotpath.json``
suite section).  Naive round-robin sharding therefore leaves most
workers idle behind the one that drew the heavy cells.  The planner
does greedy LPT (longest-processing-time-first) assignment against a
per-program cost model, which is within 4/3 of optimal makespan --
plenty for grid serving.

Shards matter most for *remote* workers (one transport round trip per
shard, not per cell) and for multi-host balance; a local process pool
is already a self-balancing work queue, so the scheduler only plans
shards when transports are configured.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.config import MachineConfig
from ..runner.spec import JobSpec

__all__ = ["Shard", "estimate_cost", "plan_shards", "replan", "grid_specs"]

#: relative per-program cell weights, derived from the committed
#: BENCH_hotpath.json suite seconds at scale 1.0 (qsort ~1.46s ...
#: topopt ~0.23s); unknown programs get the median weight
_PROGRAM_WEIGHT = {
    "qsort": 1.46,
    "pdsa": 0.62,
    "fullconn": 0.40,
    "grav": 0.36,
    "pverify": 0.35,
    "topopt": 0.23,
    "synthetic": 0.10,
}
_DEFAULT_WEIGHT = 0.40

#: consistency-model multiplier: weak ordering simulates write buffers
#: and is measurably slower per cell
_MODEL_WEIGHT = {"wo": 1.15}


def estimate_cost(spec: JobSpec) -> float:
    """Relative cost estimate of one cell (unitless; bigger = slower)."""
    weight = _PROGRAM_WEIGHT.get(spec.program, _DEFAULT_WEIGHT)
    weight *= _MODEL_WEIGHT.get(spec.consistency, 1.0)
    return weight * max(float(spec.scale), 1e-6)


@dataclass(frozen=True)
class Shard:
    """One dispatch unit: a slice of the grid plus its planned cost."""

    index: int
    indices: tuple[int, ...]  # positions in the original spec list
    specs: tuple[JobSpec, ...]
    cost: float

    def __len__(self) -> int:
        return len(self.specs)


def plan_shards(specs, n_shards: int, cost=estimate_cost) -> list[Shard]:
    """Split ``specs`` into at most ``n_shards`` cost-balanced shards.

    Greedy LPT: visit cells in descending estimated cost, always
    assigning to the currently lightest shard.  Within a shard the
    original submission order is preserved (stable re-sort by index) so
    worker-side manifests stay readable.  Empty shards are dropped.
    """
    specs = list(specs)
    n_shards = max(1, min(int(n_shards), len(specs) or 1))
    costs = [float(cost(s)) for s in specs]
    order = sorted(range(len(specs)), key=lambda i: (-costs[i], i))
    bins: list[list[int]] = [[] for _ in range(n_shards)]
    loads = [0.0] * n_shards
    for i in order:
        b = min(range(n_shards), key=lambda j: (loads[j], j))
        bins[b].append(i)
        loads[b] += costs[i]
    shards = []
    for b, members in enumerate(bins):
        if not members:
            continue
        members.sort()
        shards.append(
            Shard(
                index=len(shards),
                indices=tuple(members),
                specs=tuple(specs[i] for i in members),
                cost=loads[b],
            )
        )
    return shards


def replan(pairs, n_shards: int, cost=estimate_cost) -> list[Shard]:
    """Plan ``(original_index, spec)`` pairs onto ``n_shards`` workers.

    The dead-worker path: cells stranded by failed shards arrive as
    pairs keyed by their *original* grid position, get LPT-balanced
    across the surviving workers exactly like a fresh plan, and come
    back as shards whose ``indices`` still point into the original spec
    list -- so the dispatch loop never re-maps results.
    """
    pairs = list(pairs)
    originals = [i for i, _ in pairs]
    shards = plan_shards([s for _, s in pairs], n_shards, cost)
    return [
        Shard(
            index=shard.index,
            indices=tuple(originals[j] for j in shard.indices),
            specs=shard.specs,
            cost=shard.cost,
        )
        for shard in shards
    ]


def grid_specs(
    programs,
    lock_schemes=("queuing",),
    models=("sc",),
    scale: float = 1.0,
    seed: int = 1991,
    machine: MachineConfig | None = None,
    n_procs: int | None = None,
    max_events: int | None = None,
) -> list[JobSpec]:
    """Expand a sweep grid into specs, row-major (program outermost) --
    the same cell order ``run_suite`` and ``repro batch`` use.

    Lock-scheme names are validated against the registry up front, so a
    bad grid is rejected at submit time rather than failing one job per
    cell at execution time."""
    from ..sync import LOCK_SCHEMES

    unknown = [s for s in lock_schemes if s not in LOCK_SCHEMES]
    if unknown:
        raise ValueError(
            f"unknown lock scheme(s) {unknown}; "
            f"expected a subset of {sorted(LOCK_SCHEMES)}"
        )
    return [
        JobSpec(
            program=p,
            scale=scale,
            seed=seed,
            lock_scheme=scheme,
            consistency=model,
            machine=machine,
            n_procs=n_procs,
            max_events=max_events,
        )
        for p in programs
        for scheme in lock_schemes
        for model in models
    ]
