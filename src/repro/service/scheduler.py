"""Asyncio cell scheduler: content-addressed lookup, in-flight
deduplication, and pooled execution.

One :class:`Scheduler` fronts the two content-addressed stores
(:class:`~repro.runner.cache.ResultCache` for results,
:class:`~repro.trace.cache.TraceCache` for traces) with the serving
discipline the ROADMAP's "sharded sweep service" item asks for:

1. **Cache first.**  Every submitted cell is a
   :class:`~repro.runner.spec.JobSpec`, so its SHA-256
   :meth:`~repro.runner.spec.JobSpec.cache_key` is a true content
   address; a warm cell is answered straight from the store without
   touching the simulator.
2. **One in-flight job per key.**  A cold cell is computed exactly once
   no matter how many requesters ask for it concurrently: the first
   request creates the job, later requesters *attach* to the same
   future (``metrics.dedup_attached``) and all of them receive the
   identical result object.
3. **Pooled execution with budgets.**  Misses run on a worker backend --
   inline (the byte-identical serial path), a local
   :class:`~concurrent.futures.ProcessPoolExecutor`, or remote worker
   agents behind a :mod:`~repro.service.transport` -- reusing the
   executor's in-worker timeout machinery, plus scheduler-side bounded
   retries with exponential backoff and a per-job wall-clock deadline
   budget across attempts.

The synchronous facade :func:`run_batch` is what
:func:`repro.runner.run_jobs` (and through it ``run_suite`` and the
sweeps) delegates to; it preserves the executor's manifest/resume
bookkeeping and, for ``jobs=1``, executes specs strictly in submission
order so the serial path stays byte-identical.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..runner.cache import ResultCache
from ..runner.executor import (
    BatchResult,
    BatchStats,
    JobFailure,
    _execute,
)
from ..runner.manifest import append_record, load_completed
from ..runner.serialize import result_from_dict
from ..runner.spec import JobSpec
from ..trace.cache import resolve_trace_cache
from .metrics import ServiceMetrics
from .stores import PeerStore

__all__ = ["CellOutcome", "Overloaded", "Scheduler", "run_batch"]


class Overloaded(RuntimeError):
    """Raised when admission would exceed the bounded queue depth.

    ``retry_after`` is the scheduler's drain-time estimate in seconds --
    the HTTP front end surfaces it as a 503 ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class _LaneSemaphore:
    """Counting semaphore with a high-priority waiter lane.

    FIFO within each lane; every release wakes the high lane first, so
    interactive requests overtake bulk backfill without starving it of
    already-held slots.  Cancellation-safe: a waiter cancelled in the
    same tick it was woken passes its slot on instead of leaking it.
    """

    def __init__(self, slots: int) -> None:
        self._slots = max(1, int(slots))
        self._high: deque[asyncio.Future] = deque()
        self._normal: deque[asyncio.Future] = deque()

    def _wake_next(self) -> bool:
        for lane in (self._high, self._normal):
            while lane:
                waiter = lane.popleft()
                if not waiter.done():
                    waiter.set_result(None)  # slot ownership transfers
                    return True
        return False

    async def acquire(self, high: bool = False) -> None:
        if self._slots > 0 and not self._high and not self._normal:
            self._slots -= 1
            return
        waiter = asyncio.get_running_loop().create_future()
        (self._high if high else self._normal).append(waiter)
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled():
                self.release()
            raise

    def release(self) -> None:
        if not self._wake_next():
            self._slots += 1


@dataclass
class CellOutcome:
    """What happened to one submitted cell.

    ``status`` is one of ``"hit"`` (answered from the result cache),
    ``"remote"`` (fetched from a peer store and healed locally),
    ``"ok"`` (simulated by this request), ``"attached"`` (joined an
    identical in-flight job and shares its result), or ``"failed"``.
    """

    spec: JobSpec
    key: str
    status: str
    outcome: object  # RunResult | JobFailure
    attempts: int = 0
    elapsed_s: float = 0.0
    #: serialized result payload (present when this request executed)
    result_dict: dict | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return not isinstance(self.outcome, JobFailure)

    def manifest_record(self) -> dict:
        """The executor-manifest-schema record for this outcome."""
        status = {"hit": "cached", "attached": "cached", "remote": "cached"}.get(
            self.status, self.status
        )
        rec = {
            "key": self.key,
            "label": self.spec.label(),
            "status": status,
            "spec": self.spec.to_dict(),
            "attempts": self.attempts,
            "elapsed_s": round(self.elapsed_s, 6),
        }
        if self.status == "ok" and self.result_dict is not None:
            rec["result"] = self.result_dict
        elif self.status == "failed":
            f = self.outcome
            rec["error"] = {
                "kind": f.kind,
                "message": f.message,
                "traceback": f.traceback,
            }
        return rec


def _normalize_cache(cache) -> ResultCache | None:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


class Scheduler:
    """Deduplicating cell scheduler over the content-addressed stores.

    Parameters
    ----------
    jobs:
        Concurrent execution slots.  ``1`` with ``inline=True`` (the
        default for ``jobs=1``) runs misses synchronously in submission
        order -- the executor's byte-identical serial path.
    cache / trace_cache:
        The content-addressed stores (handles, directories, or ``None``).
    timeout:
        Per-attempt wall-clock limit, enforced *inside* the worker.
    retries:
        Extra attempts granted to a failing job.
    backoff:
        Base of the exponential backoff between attempts: attempt *n*
        retries after ``min(backoff * 2**(n-1), backoff_cap)`` seconds.
        ``0`` (default) retries immediately, like the classic executor.
    deadline:
        Per-job wall-clock budget across all attempts and backoff
        sleeps; once exceeded the job fails with kind ``"deadline"``
        instead of retrying further.
    transports:
        Remote worker agents (see :mod:`repro.service.transport` and
        ``repro serve --worker``).  When given, misses are dispatched
        over the wire instead of to the local process pool -- multi-host
        execution as a config change.
    peers:
        Read-through store peers (worker agents or a designated store
        node) consulted *after* the local cache misses and *before*
        simulating; fetched objects self-heal into the local stores
        (see :class:`~repro.service.stores.PeerStore`).
    max_queue:
        Bounded admission: a miss that would push the queue-depth gauge
        past this bound is refused with :class:`Overloaded` (the front
        end's 503 + Retry-After) instead of queuing without bound.
        ``None`` (default, and what ``run_batch`` uses) never sheds.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | str | Path | None = None,
        trace_cache=None,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.0,
        backoff_cap: float = 30.0,
        deadline: float | None = None,
        inline: bool | None = None,
        transports: list | None = None,
        peers: list | None = None,
        max_queue: int | None = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = _normalize_cache(cache)
        self.trace_cache = resolve_trace_cache(trace_cache)
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.backoff_cap = float(backoff_cap)
        self.deadline = deadline
        self.inline = (self.jobs == 1) if inline is None else bool(inline)
        self.transports = list(transports) if transports else []
        self.max_queue = None if max_queue is None else max(1, int(max_queue))
        self.metrics = ServiceMetrics()
        self.peer_transports = list(peers) if peers else []
        self._peers = (
            PeerStore(
                self.peer_transports,
                cache=self.cache,
                trace_cache=self.trace_cache,
                metrics=self.metrics,
            )
            if self.peer_transports
            else None
        )
        # transports without their own metrics sink report payload
        # bytes and frame counts into this scheduler's
        for t in self.transports + self.peer_transports:
            if getattr(t, "metrics", False) is None:
                t.metrics = self.metrics
        self._inflight: dict[str, asyncio.Future] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._sema: _LaneSemaphore | None = None
        self._next_transport = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _semaphore(self) -> _LaneSemaphore:
        if self._sema is None:
            self._sema = _LaneSemaphore(self.jobs)
        return self._sema

    def _worker_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _retry_after(self, extra: int = 1) -> float:
        """Drain-time estimate for a shed request's Retry-After."""
        mean = self.metrics.stage_latency["execute"].mean_seconds
        backlog = self.metrics.queue_depth + max(1, extra)
        return max(1.0, round(mean * backlog / self.jobs, 1))

    def _check_admission(self, extra: int = 1) -> None:
        if (
            self.max_queue is not None
            and self.metrics.queue_depth + max(0, extra - 1) >= self.max_queue
        ):
            self.metrics.count("shed")
            raise Overloaded(
                f"queue depth {self.metrics.queue_depth} at the "
                f"max_queue={self.max_queue} bound; shedding load",
                retry_after=self._retry_after(extra),
            )

    async def submit(self, spec: JobSpec, priority: str = "normal") -> CellOutcome:
        """Serve one cell: cache hit, peer fetch, dedup attach, or compute.

        ``priority="high"`` admits the request on the high lane: it
        overtakes queued normal-lane work at the execution semaphore.
        Hits, peer fetches, and attaches are unaffected -- they never
        queue and are never shed.
        """
        t0 = time.perf_counter()
        key = spec.cache_key()
        high = priority == "high"
        self.metrics.count("requests")
        if high:
            self.metrics.count("priority_high")
        hit = self.cache.get_by_key(key) if self.cache is not None else None
        self.metrics.observe("lookup", time.perf_counter() - t0)
        if hit is not None:
            self.metrics.count("cache_hits")
            out = CellOutcome(spec, key, "hit", hit)
            out.elapsed_s = time.perf_counter() - t0
            self.metrics.observe("total", out.elapsed_s)
            return out
        self.metrics.count("cache_misses")

        fut = self._inflight.get(key)
        if fut is not None:
            # attach: share the in-flight computation for this key
            self.metrics.count("dedup_attached")
            t_wait = time.perf_counter()
            shared: CellOutcome = await asyncio.shield(fut)
            now = time.perf_counter()
            self.metrics.observe("wait", now - t_wait)
            out = CellOutcome(
                spec, key, "attached", shared.outcome, attempts=0, elapsed_s=now - t0
            )
            self.metrics.observe("total", out.elapsed_s)
            return out

        if self._peers is not None:
            remote = await self._peers.fetch_result(key, spec=spec)
            if remote is not None:
                out = CellOutcome(spec, key, "remote", remote)
                out.elapsed_s = time.perf_counter() - t0
                self.metrics.observe("total", out.elapsed_s)
                return out

        self._check_admission()
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._inflight[key] = fut
        self.metrics.count("in_flight")
        self.metrics.count("queue_depth")
        queued = True
        sema = self._semaphore()
        try:
            t_wait = time.perf_counter()
            await sema.acquire(high=high)
            try:
                self.metrics.count("queue_depth", -1)
                queued = False
                self.metrics.observe("wait", time.perf_counter() - t_wait)
                t_exec = time.perf_counter()
                payload, attempts = await self._attempt_loop(spec)
                self.metrics.observe("execute", time.perf_counter() - t_exec)
            finally:
                sema.release()
            out = self._conclude(spec, key, payload, attempts)
            out.elapsed_s = time.perf_counter() - t0
            self.metrics.observe("total", out.elapsed_s)
            fut.set_result(out)
            return out
        except BaseException:
            if queued:
                self.metrics.count("queue_depth", -1)
            if not fut.done():
                fut.cancel()
            raise
        finally:
            self._inflight.pop(key, None)
            self.metrics.count("in_flight", -1)

    async def submit_many(self, specs, priority: str = "normal") -> list[CellOutcome]:
        """Serve a batch of cells concurrently (dedup applies across
        the batch: duplicate specs cost one simulation)."""
        return list(
            await asyncio.gather(*(self.submit(s, priority=priority) for s in specs))
        )

    async def submit_grid(
        self, specs, n_shards: int | None = None, priority: str = "normal"
    ) -> list[CellOutcome]:
        """Serve a sweep grid, sharding cold cells across the remote
        workers.

        Without transports this is :meth:`submit_many` -- a local
        process pool is already a self-balancing work queue.  With
        transports: hits and duplicate submissions are answered exactly
        as in :meth:`submit`; cold unique cells are probed against the
        peer store tier (one batched ``has`` per peer, then fetch +
        local heal); whatever remains is split into cost-balanced
        shards (:func:`repro.service.planner.plan_shards`, one
        ``run_shard`` round trip per shard).  A shard whose worker dies
        mid-run is re-planned onto the surviving workers
        (:func:`repro.service.planner.replan`) -- its cells fail only
        when no worker survives.
        """
        specs = list(specs)
        if not self.transports:
            return await self.submit_many(specs, priority=priority)

        loop = asyncio.get_running_loop()
        keys = [s.cache_key() for s in specs]
        outs: list = [None] * len(specs)
        to_compute: list[int] = []  # indices owning a new in-flight key
        owned: dict[str, asyncio.Future] = {}
        attached: list[tuple[int, str, asyncio.Future, float]] = []
        high = priority == "high"
        for i, spec in enumerate(specs):
            t0 = time.perf_counter()
            key = keys[i]
            self.metrics.count("requests")
            if high:
                self.metrics.count("priority_high")
            hit = self.cache.get_by_key(key) if self.cache is not None else None
            self.metrics.observe("lookup", time.perf_counter() - t0)
            if hit is not None:
                self.metrics.count("cache_hits")
                out = CellOutcome(
                    spec, key, "hit", hit, elapsed_s=time.perf_counter() - t0
                )
                self.metrics.observe("total", out.elapsed_s)
                outs[i] = out
                continue
            self.metrics.count("cache_misses")
            fut = self._inflight.get(key)
            if fut is not None:
                self.metrics.count("dedup_attached")
                attached.append((i, key, fut, t0))
                continue
            fut = loop.create_future()
            self._inflight[key] = fut
            self.metrics.count("in_flight")
            owned[key] = fut
            to_compute.append(i)

        #: indices counted in the queue-depth gauge while dispatched --
        #: concurrent grid submissions shed against each other's backlog
        queued: set[int] = set()

        def settle(i: int, out: CellOutcome) -> None:
            if i in queued:
                queued.discard(i)
                self.metrics.count("queue_depth", -1)
            self.metrics.observe("total", out.elapsed_s)
            outs[i] = out
            fut = owned.pop(keys[i], None)
            self._inflight.pop(keys[i], None)
            self.metrics.count("in_flight", -1)
            if fut is not None and not fut.done():
                fut.set_result(out)

        try:
            # ---- store tier: serve what any peer already holds --------
            if self._peers is not None and to_compute:
                t_peer = time.perf_counter()
                want = {keys[i]: i for i in to_compute}
                present = await self._peers.has(want)
                for key in sorted(present):
                    i = want[key]
                    remote = await self._peers.fetch_result(key, spec=specs[i])
                    if remote is None:
                        continue  # peer died between has and fetch
                    settle(
                        i,
                        CellOutcome(
                            specs[i],
                            key,
                            "remote",
                            remote,
                            elapsed_s=time.perf_counter() - t_peer,
                        ),
                    )
                to_compute = [i for i in to_compute if outs[i] is None]

            # ---- bounded admission for the cold remainder -------------
            if to_compute:
                self._check_admission(len(to_compute))
                queued.update(to_compute)
                self.metrics.count("queue_depth", len(to_compute))

            # ---- dispatch, re-planning around dead workers ------------
            await self._dispatch_shards(specs, keys, to_compute, n_shards, settle)
        finally:
            if queued:  # a cancelled dispatch must not wedge the gauge
                self.metrics.count("queue_depth", -len(queued))
                queued.clear()
            # a cancelled dispatch must not strand attachers forever
            for key, fut in owned.items():
                self._inflight.pop(key, None)
                self.metrics.count("in_flight", -1)
                if not fut.done():
                    fut.cancel()
            owned.clear()

        for i, key, fut, t0 in attached:
            shared: CellOutcome = await asyncio.shield(fut)
            now = time.perf_counter()
            self.metrics.observe("wait", now - t0)
            out = CellOutcome(
                specs[i], key, "attached", shared.outcome, elapsed_s=now - t0
            )
            self.metrics.observe("total", out.elapsed_s)
            outs[i] = out
        return outs

    async def _dispatch_shards(self, specs, keys, to_compute, n_shards, settle) -> None:
        """Shard ``to_compute`` across transports; on a dead worker,
        re-plan its cells onto the survivors until none remain."""
        from .planner import replan

        async def dispatch(shard, transport):
            self.metrics.count("shards_dispatched")
            t_exec = time.perf_counter()
            request = {
                "op": "run_shard",
                "specs": [s.to_dict() for s in shard.specs],
                "timeout": self.timeout,
                "retries": self.retries,
            }
            try:
                response = await transport.call(request)
                payloads = response.get("payloads") if response.get("ok") else None
                if payloads is None or len(payloads) != len(shard.specs):
                    raise ValueError(
                        str(response.get("message", "malformed shard response"))
                    )
            except Exception as exc:
                return shard, transport, exc, time.perf_counter() - t_exec
            return shard, transport, payloads, time.perf_counter() - t_exec

        def settle_cell(i: int, payload: dict, elapsed: float) -> None:
            out = self._conclude(
                specs[i], keys[i], payload, int(payload.get("attempts", 1))
            )
            out.elapsed_s = float(payload.get("elapsed_s", 0.0)) or elapsed
            settle(i, out)

        pending = [(i, specs[i]) for i in to_compute]
        alive = list(self.transports)
        last_error = "no workers configured"
        rounds = 0
        while pending and alive:
            shards = replan(pending, n_shards or len(alive))
            if rounds:
                self.metrics.count("shards_replanned", len(shards))
            results = await asyncio.gather(
                *(
                    dispatch(shard, alive[n % len(alive)])
                    for n, shard in enumerate(shards)
                )
            )
            stranded: list[tuple[int, JobSpec]] = []
            dead: set[int] = set()
            for shard, transport, payloads, elapsed in results:
                if isinstance(payloads, Exception):
                    # worker died mid-shard: drop it, keep its cells
                    self.metrics.count("worker_failures")
                    dead.add(id(transport))
                    last_error = f"{type(payloads).__name__}: {payloads}"
                    stranded.extend((i, specs[i]) for i in shard.indices)
                    continue
                self.metrics.observe("execute", elapsed)
                for i, payload in zip(shard.indices, payloads):
                    settle_cell(i, payload, elapsed)
            alive = [t for t in alive if id(t) not in dead]
            pending = stranded
            rounds += 1
        for i, _spec in pending:  # no surviving workers: fail the rest
            settle_cell(
                i,
                {
                    "ok": False,
                    "kind": "error",
                    "message": f"transport: {last_error} (no surviving workers)",
                    "traceback": "",
                    "elapsed_s": 0.0,
                },
                0.0,
            )

    # ------------------------------------------------------------------
    # Execution backends
    # ------------------------------------------------------------------
    async def _attempt_loop(self, spec: JobSpec) -> tuple[dict, int]:
        """Run ``spec`` with bounded retries, exponential backoff, and
        the per-job deadline budget; returns (payload, attempts)."""
        start = time.monotonic()
        attempt = 1
        while True:
            payload = await self._run_once(spec)
            if payload["ok"] or attempt > self.retries:
                return payload, attempt
            delay = (
                min(self.backoff * 2 ** (attempt - 1), self.backoff_cap)
                if self.backoff
                else 0.0
            )
            if (
                self.deadline is not None
                and time.monotonic() - start + delay >= self.deadline
            ):
                self.metrics.count("deadline_exceeded")
                payload = dict(payload)
                payload["kind"] = "deadline"
                payload["message"] = (
                    f"gave up after {attempt} attempt(s): deadline budget of "
                    f"{self.deadline:g}s exhausted (last error: "
                    f"{payload.get('message', '')})"
                )
                return payload, attempt
            if delay:
                self.metrics.backoff_seconds += delay
                await asyncio.sleep(delay)
            attempt += 1
            self.metrics.count("retries")

    async def _run_once(self, spec: JobSpec) -> dict:
        if self.transports:
            return await self._run_remote(spec)
        if self.inline:
            # the byte-identical serial path: same call the classic
            # serial executor made, in submission order, in-process
            return _execute(spec, self.timeout, self.trace_cache)
        loop = asyncio.get_running_loop()
        job_spec = spec
        if spec.program and spec.traceset is not None:
            # don't pickle megabytes of trace into the pool queue; the
            # worker regenerates or memory-maps it from the trace cache
            job_spec = replace(spec, traceset=None)
        tcache_root = (
            str(self.trace_cache.root) if self.trace_cache is not None else None
        )
        try:
            return await loop.run_in_executor(
                self._worker_pool(), _execute, job_spec, self.timeout, tcache_root
            )
        except Exception as exc:  # worker process died
            return {
                "ok": False,
                "kind": "error",
                "message": f"{type(exc).__name__}: {exc}",
                "traceback": "",
                "elapsed_s": 0.0,
            }

    async def _run_remote(self, spec: JobSpec) -> dict:
        transport = self.transports[self._next_transport % len(self.transports)]
        self._next_transport += 1
        job_spec = spec
        if spec.program and spec.traceset is not None:
            job_spec = replace(spec, traceset=None)
        try:
            payload = await transport.call(
                {"op": "run", "spec": job_spec.to_dict(), "timeout": self.timeout}
            )
        except Exception as exc:
            return {
                "ok": False,
                "kind": "error",
                "message": f"transport: {type(exc).__name__}: {exc}",
                "traceback": "",
                "elapsed_s": 0.0,
            }
        if not isinstance(payload, dict) or "ok" not in payload:
            return {
                "ok": False,
                "kind": "error",
                "message": f"transport: malformed worker payload {payload!r:.200}",
                "traceback": "",
                "elapsed_s": 0.0,
            }
        return payload

    def _conclude(
        self, spec: JobSpec, key: str, payload: dict, attempts: int
    ) -> CellOutcome:
        if payload["ok"]:
            result = result_from_dict(payload["result"])
            if self.cache is not None:
                self.cache.put(spec, result)
            if payload.get("remote"):
                # the worker answered from a *peer's* store, not by
                # simulating -- surface it as a store-tier hit
                self.metrics.count("remote_hits")
                return CellOutcome(spec, key, "remote", result, attempts=attempts)
            self.metrics.count("executed")
            return CellOutcome(
                spec,
                key,
                "ok",
                result,
                attempts=attempts,
                result_dict=payload["result"],
            )
        self.metrics.count("failed")
        failure = JobFailure(
            key=key,
            label=spec.label(),
            kind=payload.get("kind", "error"),
            message=payload.get("message", ""),
            attempts=attempts,
            spec=spec.to_dict(),
            traceback=payload.get("traceback", ""),
        )
        return CellOutcome(spec, key, "failed", failure, attempts=attempts)

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """JSON-ready snapshot for ``GET /status`` and ``repro status``."""
        out = {
            "jobs": self.jobs,
            "inline": self.inline,
            "timeout": self.timeout,
            "retries": self.retries,
            "backoff": self.backoff,
            "deadline": self.deadline,
            "transports": len(self.transports),
            "peers": len(self.peer_transports),
            "max_queue": self.max_queue,
            "metrics": self.metrics.to_dict(),
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats_dict()
        if self.trace_cache is not None:
            out["trace_cache"] = self.trace_cache.stats_dict()
        return out


# ----------------------------------------------------------------------
# Synchronous batch facade (what run_jobs delegates to)
# ----------------------------------------------------------------------
def _run_coro(coro):
    """Run ``coro`` to completion from synchronous code, even when the
    caller already sits inside an event loop (e.g. a worker agent)."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coro)
    import concurrent.futures
    import threading

    box: dict = {}

    def runner() -> None:
        try:
            box["value"] = asyncio.run(coro)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    t = threading.Thread(target=runner, name="repro-run-batch", daemon=True)
    t.start()
    t.join()
    if "error" in box:
        raise box["error"]
    return box["value"]


def run_batch(
    specs,
    jobs: int = 1,
    cache=None,
    timeout: float | None = None,
    retries: int = 0,
    manifest_path=None,
    resume: bool = False,
    trace_cache=None,
    backoff: float = 0.0,
    deadline: float | None = None,
    scheduler: Scheduler | None = None,
) -> BatchResult:
    """Run specs through a :class:`Scheduler`, with the executor's
    manifest/resume bookkeeping; returns outcomes in spec order.

    This is the engine behind :func:`repro.runner.run_jobs` -- see its
    docstring for parameter semantics.  ``scheduler`` injects a live
    (possibly shared) scheduler; otherwise a private one is built from
    the other arguments and torn down afterwards.
    """
    if resume and manifest_path is None:
        raise ValueError("resume=True requires a manifest_path")
    specs = list(specs)
    keys = [s.cache_key() for s in specs]
    manifest = str(manifest_path) if manifest_path else None
    stats = BatchStats(total=len(specs))
    outcomes: list = [None] * len(specs)

    def record(idx: int, status: str, **extra) -> None:
        if manifest is None:
            return
        rec = {
            "key": keys[idx],
            "label": specs[idx].label(),
            "status": status,
            "spec": specs[idx].to_dict(),
        }
        rec.update(extra)
        append_record(manifest, rec)

    pending = list(range(len(specs)))
    if resume:
        completed = load_completed(manifest)
        still = []
        for idx in pending:
            if keys[idx] in completed:
                outcomes[idx] = result_from_dict(completed[keys[idx]])
                stats.resumed += 1
                record(idx, "resumed", attempts=0, elapsed_s=0.0)
            else:
                still.append(idx)
        pending = still

    own = scheduler is None
    if own:
        scheduler = Scheduler(
            jobs=jobs,
            cache=cache,
            trace_cache=trace_cache,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            deadline=deadline,
        )

    def settle(idx: int, out: CellOutcome) -> None:
        outcomes[idx] = out.outcome
        if out.status in ("hit", "attached", "remote"):
            stats.cached += 1
            record(idx, "cached", attempts=0, elapsed_s=0.0)
        elif out.status == "ok":
            stats.executed += 1
            stats.retries += out.attempts - 1
            record(
                idx,
                "ok",
                attempts=out.attempts,
                elapsed_s=out.elapsed_s,
                result=out.result_dict,
            )
        else:
            stats.failed += 1
            stats.retries += out.attempts - 1
            failure = out.outcome
            record(
                idx,
                "failed",
                attempts=out.attempts,
                elapsed_s=out.elapsed_s,
                error={
                    "kind": failure.kind,
                    "message": failure.message,
                    "traceback": failure.traceback,
                },
            )

    async def drive() -> None:
        if scheduler.inline and not scheduler.transports:
            # strict submission order, one job at a time: the serial path
            for idx in pending:
                settle(idx, await scheduler.submit(specs[idx]))
            return

        async def one(idx: int) -> None:
            settle(idx, await scheduler.submit(specs[idx]))

        await asyncio.gather(*(one(idx) for idx in pending))

    try:
        if pending:
            _run_coro(drive())
    finally:
        if own:
            scheduler.close()

    return BatchResult(
        specs=specs, outcomes=outcomes, stats=stats, manifest_path=manifest
    )
