"""Service observability: counters, gauges, and latency histograms.

Everything the scheduler and front end measure funnels into one
:class:`ServiceMetrics` object, which renders either as JSON
(``GET /status``, scripts) or as Prometheus text exposition format
(``GET /metrics``, scrapers).  Stdlib-only and allocation-light: a
histogram observation is two integer increments and a float add.

The histograms use fixed logarithmic (power-of-two) bucket boundaries
in seconds, chosen to resolve both a warm content-addressed cache hit
(tens of microseconds) and a cold multi-second simulation in the same
instrument.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field

__all__ = ["LatencyHistogram", "ServiceMetrics", "STAGES"]

#: per-request pipeline stages the scheduler times, in order:
#: ``lookup`` (cache probe), ``wait`` (queue + dedup-attach wait),
#: ``execute`` (simulation attempts incl. backoff), ``total``
#: (request admission to response)
STAGES = ("lookup", "wait", "execute", "total")

#: upper bounds in seconds: 16us .. ~134s, doubling each bucket, plus
#: a +Inf overflow bucket
_BUCKET_BOUNDS = tuple(16e-6 * 2**i for i in range(24))


class LatencyHistogram:
    """Fixed-bucket log-scale latency histogram (seconds)."""

    __slots__ = ("counts", "overflow", "total", "sum_seconds", "max_seconds")

    def __init__(self) -> None:
        self.counts = [0] * len(_BUCKET_BOUNDS)
        self.overflow = 0
        self.total = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        i = bisect.bisect_left(_BUCKET_BOUNDS, seconds)
        if i < len(_BUCKET_BOUNDS):
            self.counts[i] += 1
        else:
            self.overflow += 1
        self.total += 1
        self.sum_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    # ------------------------------------------------------------------
    @property
    def mean_seconds(self) -> float:
        return self.sum_seconds / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 < q <= 1)."""
        if not self.total:
            return 0.0
        rank = q * self.total
        seen = 0
        for bound, count in zip(_BUCKET_BOUNDS, self.counts):
            seen += count
            if seen >= rank:
                return bound
        return self.max_seconds

    def to_dict(self) -> dict:
        return {
            "count": self.total,
            "sum_seconds": round(self.sum_seconds, 6),
            "mean_seconds": round(self.mean_seconds, 6),
            "max_seconds": round(self.max_seconds, 6),
            "p50_seconds": round(self.quantile(0.5), 6),
            "p99_seconds": round(self.quantile(0.99), 6),
        }

    def buckets(self):
        """``(upper_bound_seconds, cumulative_count)`` pairs, the +Inf
        bucket last -- the Prometheus ``le`` convention."""
        cumulative = 0
        out = []
        for bound, count in zip(_BUCKET_BOUNDS, self.counts):
            cumulative += count
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + self.overflow))
        return out


@dataclass
class ServiceMetrics:
    """All counters/gauges/histograms for one scheduler instance.

    ``dedup_attached`` counts requests that found their cell already
    in flight and attached to the existing future -- the service's
    duplicate-suppression figure of merit: for N concurrent identical
    requests it reads N-1 while ``executed`` reads 1.
    """

    requests: int = 0
    cache_hits: int = 0  # answered from the result cache
    cache_misses: int = 0
    dedup_attached: int = 0  # joined an in-flight job instead of enqueuing
    executed: int = 0  # simulations actually run
    failed: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    deadline_exceeded: int = 0
    queue_depth: int = 0  # gauge: jobs admitted but not yet running
    in_flight: int = 0  # gauge: distinct keys currently being computed
    shards_dispatched: int = 0
    # -- store tier ----------------------------------------------------
    remote_hits: int = 0  # objects served by a peer store, not simulated
    remote_misses: int = 0  # peer consults that found nothing
    # -- backpressure / priority lanes ---------------------------------
    shed: int = 0  # requests refused at the queue-depth bound (503s)
    priority_high: int = 0  # requests admitted on the high lane
    # -- resilience ----------------------------------------------------
    worker_failures: int = 0  # shard dispatches lost to a dead worker
    shards_replanned: int = 0  # shards re-planned onto survivors
    # -- transport payload accounting ----------------------------------
    bytes_sent: int = 0
    bytes_received: int = 0
    frames_binary: int = 0
    frames_json: int = 0
    stage_latency: dict = field(
        default_factory=lambda: {s: LatencyHistogram() for s in STAGES}
    )
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # ------------------------------------------------------------------
    def observe(self, stage: str, seconds: float) -> None:
        self.stage_latency[stage].observe(seconds)

    def count(self, name: str, delta: int = 1) -> None:
        """Thread-safe counter/gauge bump (the HTTP front end serves
        from the event loop, workers report from executor threads)."""
        with self._lock:
            setattr(self, name, getattr(self, name) + delta)

    @property
    def hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": round(self.hit_rate, 4),
            "dedup_attached": self.dedup_attached,
            "executed": self.executed,
            "failed": self.failed,
            "retries": self.retries,
            "backoff_seconds": round(self.backoff_seconds, 6),
            "deadline_exceeded": self.deadline_exceeded,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "shards_dispatched": self.shards_dispatched,
            "remote_hits": self.remote_hits,
            "remote_misses": self.remote_misses,
            "shed": self.shed,
            "priority_high": self.priority_high,
            "worker_failures": self.worker_failures,
            "shards_replanned": self.shards_replanned,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "frames_binary": self.frames_binary,
            "frames_json": self.frames_json,
            "stage_latency": {
                s: h.to_dict() for s, h in self.stage_latency.items()
            },
        }

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format (``GET /metrics``)."""
        lines = []

        def counter(name: str, value, help_text: str) -> None:
            lines.append(f"# HELP {prefix}_{name} {help_text}")
            lines.append(f"# TYPE {prefix}_{name} counter")
            lines.append(f"{prefix}_{name} {value}")

        def gauge(name: str, value, help_text: str) -> None:
            lines.append(f"# HELP {prefix}_{name} {help_text}")
            lines.append(f"# TYPE {prefix}_{name} gauge")
            lines.append(f"{prefix}_{name} {value}")

        counter("requests_total", self.requests, "Cell requests admitted")
        counter("cache_hits_total", self.cache_hits, "Requests answered from the result cache")
        counter("cache_misses_total", self.cache_misses, "Requests that missed the result cache")
        counter("dedup_attached_total", self.dedup_attached, "Requests attached to an already in-flight identical job")
        counter("executed_total", self.executed, "Simulations executed")
        counter("failed_total", self.failed, "Jobs that exhausted retries/deadline")
        counter("retries_total", self.retries, "Retry attempts granted")
        counter("deadline_exceeded_total", self.deadline_exceeded, "Jobs abandoned at their deadline budget")
        counter("backoff_seconds_total", round(self.backoff_seconds, 6), "Cumulative retry backoff sleep")
        counter("shards_dispatched_total", self.shards_dispatched, "Sweep shards dispatched to workers")
        counter("remote_hits_total", self.remote_hits, "Objects served by a peer store instead of simulating")
        counter("remote_misses_total", self.remote_misses, "Peer store consults that found nothing")
        counter("shed_total", self.shed, "Requests refused at the queue-depth bound")
        counter("priority_high_total", self.priority_high, "Requests admitted on the high-priority lane")
        counter("worker_failures_total", self.worker_failures, "Shard dispatches lost to a dead worker")
        counter("shards_replanned_total", self.shards_replanned, "Shards re-planned onto surviving workers")
        counter("bytes_sent_total", self.bytes_sent, "Transport payload bytes sent to workers and peers")
        counter("bytes_received_total", self.bytes_received, "Transport payload bytes received from workers and peers")
        counter("frames_binary_total", self.frames_binary, "Transport frames sent in binary framing")
        counter("frames_json_total", self.frames_json, "Transport frames sent in JSON framing")
        gauge("queue_depth", self.queue_depth, "Jobs admitted but not yet running")
        gauge("in_flight", self.in_flight, "Distinct cell keys currently being computed")
        for stage, hist in self.stage_latency.items():
            base = f"{prefix}_stage_latency_seconds"
            lines.append(f"# HELP {base} Per-stage request latency")
            lines.append(f"# TYPE {base} histogram")
            for bound, cumulative in hist.buckets():
                le = "+Inf" if bound == float("inf") else f"{bound:.6g}"
                lines.append(f'{base}_bucket{{stage="{stage}",le="{le}"}} {cumulative}')
            lines.append(f'{base}_sum{{stage="{stage}"}} {hist.sum_seconds:.6f}')
            lines.append(f'{base}_count{{stage="{stage}"}} {hist.total}')
        return "\n".join(lines) + "\n"
