"""Peer-replicated warm-store tier over the service transport.

The content-addressed stores (:class:`~repro.runner.cache.ResultCache`,
:class:`~repro.trace.cache.TraceCache`) make replication trivial: a key
*is* its object, on any host, forever.  A :class:`PeerStore` turns a
list of transports -- worker agents, or a designated store node, all
speaking the same ``has``/``fetch`` ops -- into one read-through tier:

* ``has`` batches existence probes (one round trip per peer for a
  whole grid);
* ``fetch`` pulls an object from the first peer holding it and
  **self-heals it into the local store**, so the next lookup for that
  key is a plain local hit and every key is simulated at most once per
  fleet.

Results travel as compact ``result-v1`` blobs on binary connections
and as plain JSON dicts on negotiated-JSON connections; traces always
travel as raw sidecar + ``.npy`` blobs (degrading to base64 on JSON
peers).  A dead or stale peer is skipped, never fatal: the store tier
is an optimization layer on top of simulation, and simulation always
remains the fallback.
"""

from __future__ import annotations

from ..runner.serialize import result_from_bytes, result_from_dict
from .transport import Blob

__all__ = ["PeerStore", "decode_fetched_result"]


def decode_fetched_result(response: dict):
    """A fetch response's result, whichever encoding it used.

    Binary peers answer with a ``result-v1`` :class:`Blob`; JSON peers
    answer with a serialized result dict.  Raises on neither.
    """
    payload = response.get("payload")
    if isinstance(payload, Blob):
        return result_from_bytes(payload.data)
    if response.get("result") is not None:
        return result_from_dict(response["result"])
    raise ValueError("fetch response carries no result payload")


class PeerStore:
    """Read-through view of peer stores, healing into local ones.

    ``transports`` are consulted in order -- put the designated store
    node first if there is one.  ``cache`` / ``trace_cache`` are the
    local stores fetched objects heal into (either may be ``None``).
    ``metrics`` (a :class:`~repro.service.metrics.ServiceMetrics`)
    receives ``remote_hits`` / ``remote_misses`` counts.
    """

    def __init__(
        self,
        transports,
        cache=None,
        trace_cache=None,
        metrics=None,
    ) -> None:
        self.transports = list(transports)
        self.cache = cache
        self.trace_cache = trace_cache
        self.metrics = metrics

    def __bool__(self) -> bool:
        return bool(self.transports)

    def _count(self, name: str, delta: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.count(name, delta)

    # ------------------------------------------------------------------
    async def has(self, keys, kind: str = "result") -> set:
        """Union of keys any peer holds (one batched probe per peer)."""
        keys = list(keys)
        present: set[str] = set()
        missing = set(keys)
        for transport in self.transports:
            if not missing:
                break
            try:
                response = await transport.call(
                    {"op": "has", "kind": kind, "keys": sorted(missing)}
                )
            except Exception:
                continue  # dead peer: the tier degrades, never fails
            if not response.get("ok"):
                continue
            found = set(response.get("present", ()))
            present |= found
            missing -= found
        return present

    async def fetch_result(self, key: str, spec=None):
        """Fetch one result by key; heals into the local cache.

        ``spec`` (when known) lets the healed object carry its full
        self-describing spec, exactly as if it had been simulated here.
        Returns the :class:`RunResult` or ``None`` if no peer holds it.
        """
        for transport in self.transports:
            try:
                response = await transport.call(
                    {"op": "fetch", "kind": "result", "key": key}
                )
                if not response.get("ok"):
                    continue
                result = decode_fetched_result(response)
            except Exception:
                continue
            if self.cache is not None and spec is not None:
                self.cache.put(spec, result)
            self._count("remote_hits")
            return result
        self._count("remote_misses")
        return None

    async def fetch_trace(self, key: str) -> bool:
        """Fetch one traceset by key into the local trace cache.

        Returns ``True`` when the object was replicated locally (the
        caller then loads it with a plain cache lookup, mmap and all).
        """
        if self.trace_cache is None:
            return False
        for transport in self.transports:
            try:
                response = await transport.call(
                    {"op": "fetch", "kind": "trace", "key": key}
                )
                if not response.get("ok"):
                    continue
                meta, records = response["meta"], response["records"]
                if not isinstance(meta, Blob) or not isinstance(records, Blob):
                    continue
                self.trace_cache.put_bytes(key, meta.data, records.data)
            except Exception:
                continue
            self._count("remote_hits")
            return True
        self._count("remote_misses")
        return False

    async def close(self) -> None:
        for transport in self.transports:
            try:
                await transport.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
