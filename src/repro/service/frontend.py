"""HTTP front end and client for the sweep service (stdlib only).

A deliberately small HTTP/1.1 server written directly on asyncio
streams, so the request path shares the scheduler's event loop -- no
threads between a warm ``POST /submit`` and the content-addressed
store.  Endpoints:

* ``GET /healthz`` -- liveness probe (``ok``).
* ``GET /status`` -- JSON snapshot: scheduler config, metrics, store
  counters, aggregator progress, uptime.
* ``GET /metrics`` -- Prometheus text exposition: hit/miss counters,
  queue depth, in-flight dedup gauge, per-stage latency histograms,
  plus the two stores' session counters.
* ``GET /result/<key>`` -- one cell by its SHA-256 content address;
  404 on a cold key (the front end never *computes* on a GET).
* ``POST /submit`` -- body ``{"specs": [specdict, ...]}`` or
  ``{"grid": {"programs": [...], "locks": [...], "models": [...],
  "scale": ..., "seed": ...}}``, optionally ``"priority": "high"``;
  cells are served through the scheduler (cache hit, peer fetch,
  dedup attach, or compute) and the response carries one entry per
  cell in request order.  When the scheduler's bounded queue is full
  the submit is refused with ``503`` and a ``Retry-After`` header
  carrying the drain-time estimate (load shedding, not queuing
  collapse).

:class:`ServiceClient` is the synchronous :mod:`urllib` counterpart the
CLI (``repro submit`` / ``repro status``) uses.
"""

from __future__ import annotations

import asyncio
import json
import time
from urllib.error import HTTPError
from urllib.request import Request, urlopen

from ..runner.executor import JobFailure
from ..runner.spec import JobSpec
from .aggregator import StreamAggregator
from .planner import grid_specs
from .scheduler import Overloaded, Scheduler

__all__ = ["ServiceServer", "ServiceClient"]

_MAX_BODY = 64 * 1024 * 1024


class _BadRequest(Exception):
    pass


class ServiceServer:
    """The sweep service: one scheduler behind an HTTP listener."""

    def __init__(
        self,
        scheduler: Scheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        aggregator: StreamAggregator | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = int(port)
        self.aggregator = aggregator if aggregator is not None else StreamAggregator()
        self._server: asyncio.AbstractServer | None = None
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    async def start(self) -> "ServiceServer":
        self._server = await asyncio.start_server(
            self._connection, self.host, self.port, limit=_MAX_BODY
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.scheduler.close()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _connection(self, reader, writer) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                extra_headers: tuple = ()
                try:
                    status, payload, content_type = await self._route(
                        method, path, body
                    )
                except _BadRequest as exc:
                    status, payload, content_type = (
                        400,
                        _json({"error": str(exc)}),
                        "application/json",
                    )
                except Overloaded as exc:
                    # load shedding: refuse now, tell the client when
                    # the queue should have drained
                    retry_after = max(1, round(exc.retry_after))
                    status, payload, content_type = (
                        503,
                        _json({"error": str(exc), "retry_after": retry_after}),
                        "application/json",
                    )
                    extra_headers = ((f"Retry-After: {retry_after}"),)
                except Exception as exc:  # route bug: report, keep serving
                    status, payload, content_type = (
                        500,
                        _json({"error": f"{type(exc).__name__}: {exc}"}),
                        "application/json",
                    )
                keep = headers.get("connection", "keep-alive").lower() != "close"
                self._write_response(
                    writer, status, payload, content_type, keep, extra_headers
                )
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # peer vanished mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    async def _read_request(reader):
        line = await reader.readline()
        if not line or not line.strip():
            return None
        try:
            method, path, _version = line.decode("latin-1").split()
        except ValueError:
            raise _BadRequest(f"malformed request line {line!r:.100}")
        headers = {}
        while True:
            h = await reader.readline()
            if h in (b"\r\n", b"\n", b""):
                break
            name, _, value = h.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY:
            raise _BadRequest(f"body of {length} bytes exceeds the limit")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    @staticmethod
    def _write_response(
        writer, status, payload: bytes, content_type, keep, extra_headers=()
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed", 500: "Internal Server Error", 503: "Service Unavailable"}.get(status, "OK")
        extra = "".join(f"{h}\r\n" for h in extra_headers)
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            f"Connection: {'keep-alive' if keep else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str, body: bytes):
        path = path.split("?", 1)[0]
        if path == "/healthz":
            return 200, b"ok\n", "text/plain; charset=utf-8"
        if path == "/metrics":
            if method != "GET":
                return 405, _json({"error": "GET only"}), "application/json"
            return 200, self._metrics_text().encode(), "text/plain; version=0.0.4; charset=utf-8"
        if path == "/status":
            return 200, _json(self._status()), "application/json"
        if path.startswith("/result/"):
            return await self._get_result(path[len("/result/") :])
        if path == "/submit":
            if method != "POST":
                return 405, _json({"error": "POST only"}), "application/json"
            return await self._submit(body)
        return 404, _json({"error": f"no route {path!r}"}), "application/json"

    def _status(self) -> dict:
        out = self.scheduler.status()
        out["uptime_s"] = round(time.monotonic() - self._started, 3)
        out["aggregator"] = self.aggregator.to_dict()
        return out

    def _metrics_text(self) -> str:
        text = self.scheduler.metrics.render_prometheus()
        lines = []
        for label, stats in (
            ("result_cache", getattr(self.scheduler.cache, "stats", None)),
            ("trace_cache", getattr(self.scheduler.trace_cache, "stats", None)),
        ):
            if stats is None:
                continue
            lines.append(f"# HELP repro_{label}_ops_total Store session counters")
            lines.append(f"# TYPE repro_{label}_ops_total counter")
            for op in ("hits", "misses", "puts", "invalidated"):
                lines.append(
                    f'repro_{label}_ops_total{{op="{op}"}} {getattr(stats, op)}'
                )
        return text + ("\n".join(lines) + "\n" if lines else "")

    async def _get_result(self, key: str):
        cache = self.scheduler.cache
        if cache is None:
            return 404, _json({"error": "service runs without a result cache"}), "application/json"
        result = cache.get_by_key(key)
        if result is None:
            return 404, _json({"error": f"no cached result for key {key}"}), "application/json"
        from ..runner.serialize import result_to_dict

        return 200, _json({"key": key, "result": result_to_dict(result)}), "application/json"

    async def _submit(self, body: bytes):
        try:
            request = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"body is not JSON: {exc}")
        if not isinstance(request, dict):
            raise _BadRequest("body must be a JSON object")
        specs = self._parse_specs(request)
        priority = request.get("priority", "normal")
        if priority not in ("normal", "high"):
            raise _BadRequest(f'priority must be "normal" or "high", got {priority!r}')
        outs = await self.scheduler.submit_grid(
            specs, n_shards=request.get("n_shards"), priority=priority
        )
        results = []
        for out in outs:
            self.aggregator.record(out.manifest_record())
            entry = {
                "key": out.key,
                "label": out.spec.label(),
                "status": out.status,
                "ok": out.ok,
                "attempts": out.attempts,
                "elapsed_s": round(out.elapsed_s, 6),
            }
            if isinstance(out.outcome, JobFailure):
                entry["error"] = {
                    "kind": out.outcome.kind,
                    "message": out.outcome.message,
                    "attempts": out.outcome.attempts,
                }
            elif request.get("include_results", True):
                from ..runner.serialize import result_to_dict

                entry["result"] = result_to_dict(out.outcome)
            results.append(entry)
        payload = {
            "results": results,
            "summary": self.aggregator.summary(),
            "metrics": self.scheduler.metrics.to_dict(),
        }
        return 200, _json(payload), "application/json"

    @staticmethod
    def _parse_specs(request: dict) -> list[JobSpec]:
        if "specs" in request:
            raw = request["specs"]
            if not isinstance(raw, list) or not raw:
                raise _BadRequest('"specs" must be a non-empty list of spec dicts')
            try:
                return [JobSpec.from_dict(d) for d in raw]
            except Exception as exc:
                raise _BadRequest(f"bad spec: {type(exc).__name__}: {exc}")
        if "grid" in request:
            grid = request["grid"]
            if not isinstance(grid, dict) or not grid.get("programs"):
                raise _BadRequest('"grid" needs at least "programs"')
            try:
                return grid_specs(
                    grid["programs"],
                    lock_schemes=grid.get("locks", ("queuing",)),
                    models=grid.get("models", ("sc",)),
                    scale=grid.get("scale", 1.0),
                    seed=grid.get("seed", 1991),
                    n_procs=grid.get("n_procs"),
                )
            except Exception as exc:
                raise _BadRequest(f"bad grid: {type(exc).__name__}: {exc}")
        raise _BadRequest('body needs "specs" or "grid"')


def _json(obj) -> bytes:
    return json.dumps(obj).encode()


# ----------------------------------------------------------------------
# Synchronous client (CLI, scripts, benchmarks)
# ----------------------------------------------------------------------
class ServiceClient:
    """Blocking HTTP client for a :class:`ServiceServer`."""

    def __init__(self, url: str, timeout: float = 300.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(self, path: str, data: bytes | None = None) -> bytes:
        req = Request(
            self.url + path,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        with urlopen(req, timeout=self.timeout) as resp:
            return resp.read()

    def healthy(self) -> bool:
        try:
            return self._request("/healthz").strip() == b"ok"
        except OSError:
            return False

    def status(self) -> dict:
        return json.loads(self._request("/status"))

    def metrics(self) -> str:
        return self._request("/metrics").decode()

    def result(self, key: str) -> dict | None:
        try:
            return json.loads(self._request(f"/result/{key}"))["result"]
        except HTTPError as exc:
            if exc.code == 404:
                return None
            raise

    def submit(
        self,
        specs=None,
        grid: dict | None = None,
        include_results: bool = True,
        n_shards: int | None = None,
        priority: str | None = None,
    ) -> dict:
        body: dict = {"include_results": include_results}
        if specs is not None:
            body["specs"] = [
                s.to_dict() if isinstance(s, JobSpec) else s for s in specs
            ]
        if grid is not None:
            body["grid"] = grid
        if n_shards is not None:
            body["n_shards"] = n_shards
        if priority is not None:
            body["priority"] = priority
        return json.loads(self._request("/submit", _json(body)))
