"""Worker agent: executes cells and shards on behalf of a scheduler.

A worker agent is the far end of a :mod:`~repro.service.transport`.  It
understands six operations, each one message in, one out:

* ``{"op": "ping"}`` -- liveness probe; echoes worker identity.
* ``{"op": "run", "spec": {...}, "timeout": ...}`` -- execute one cell
  through the executor's worker function (process pool, so the
  in-worker SIGALRM timeout machinery applies) and return its payload.
* ``{"op": "run_shard", "specs": [...], ...}`` -- execute a planned
  shard through :func:`repro.runner.run_jobs` itself, reusing its
  timeout/retry machinery and local parallelism, and return one payload
  per spec in order.
* ``{"op": "has", "kind": "result"|"trace", "keys": [...]}`` -- batch
  existence probe against the worker's content-addressed stores.
* ``{"op": "fetch", "kind": "result"|"trace", "key": ...}`` -- serve a
  stored object by key.  On binary connections results travel as
  compact ``result-v1`` blobs and traces as raw sidecar + ``.npy``
  blobs; on JSON connections results degrade to serialized dicts
  (the negotiated fallback) and trace blobs to base64.
* ``{"op": "stats"}`` -- the worker's cache/trace-cache counters.

Workers open the content-addressed stores by *root path*: co-located
workers share pages via the trace cache's mmap objects, and the
``fetch``/``has`` ops make every worker's store a replication peer --
give a worker ``peers`` (transports to other workers or a designated
store node) and it consults them before simulating, healing fetched
objects into its own stores.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ProcessPoolExecutor

from ..runner.cache import ResultCache
from ..runner.executor import JobFailure, _execute, run_jobs
from ..runner.serialize import RESULT_CODEC, result_to_bytes, result_to_dict
from ..runner.spec import JobSpec
from ..trace.cache import resolve_trace_cache, trace_key
from .stores import PeerStore
from .transport import BINARY_HINT, Blob, serve_socket

__all__ = ["WorkerAgent", "serve_worker"]


class WorkerAgent:
    """Request handler for one worker process (see module docstring)."""

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | str | None = None,
        trace_cache=None,
        name: str | None = None,
        peers=None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = (
            cache if cache is None or isinstance(cache, ResultCache) else ResultCache(cache)
        )
        self.trace_cache = resolve_trace_cache(trace_cache)
        self.name = name or f"worker-{os.getpid()}"
        self.peers = PeerStore(
            peers or (), cache=self.cache, trace_cache=self.trace_cache
        )
        self._pool: ProcessPoolExecutor | None = None

    def _worker_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------
    async def handle(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "pong", "worker": self.name, "jobs": self.jobs}
        if op == "run":
            return await self._run_one(request)
        if op == "run_shard":
            return await self._run_shard(request)
        if op == "has":
            return self._has(request)
        if op == "fetch":
            return self._fetch(request)
        if op == "stats":
            return {
                "ok": True,
                "worker": self.name,
                "cache": self.cache.stats_dict() if self.cache is not None else None,
                "trace_cache": (
                    self.trace_cache.stats_dict()
                    if self.trace_cache is not None
                    else None
                ),
            }
        return {"ok": False, "kind": "error", "message": f"unknown op {op!r}"}

    # ------------------------------------------------------------------
    # Store tier: this worker as a replication peer
    # ------------------------------------------------------------------
    def _has(self, request: dict) -> dict:
        kind = request.get("kind", "result")
        keys = request.get("keys", ())
        if kind == "result":
            store = self.cache
        elif kind == "trace":
            store = self.trace_cache
        else:
            return {"ok": False, "kind": "error", "message": f"unknown kind {kind!r}"}
        present = (
            [k for k in keys if store.has_key(k)] if store is not None else []
        )
        return {"ok": True, "worker": self.name, "present": present}

    def _fetch(self, request: dict) -> dict:
        kind = request.get("kind", "result")
        key = request.get("key", "")
        binary = bool(request.get(BINARY_HINT))
        if kind == "result":
            result = self.cache.get_by_key(key) if self.cache is not None else None
            if result is None:
                return {"ok": False, "kind": "miss", "message": f"no result for {key}"}
            if binary:
                return {
                    "ok": True,
                    "key": key,
                    "payload": Blob(result_to_bytes(result), RESULT_CODEC),
                }
            return {"ok": True, "key": key, "result": result_to_dict(result)}
        if kind == "trace":
            pair = (
                self.trace_cache.get_bytes(key)
                if self.trace_cache is not None
                else None
            )
            if pair is None:
                return {"ok": False, "kind": "miss", "message": f"no trace for {key}"}
            meta_bytes, data_bytes = pair
            return {
                "ok": True,
                "key": key,
                "meta": Blob(meta_bytes, "json"),
                "records": Blob(data_bytes, "npy"),
            }
        return {"ok": False, "kind": "error", "message": f"unknown kind {kind!r}"}

    async def _prefetch_trace(self, spec: JobSpec) -> None:
        """Replicate the spec's trace from peers before simulating, so
        the executor's trace-cache lookup becomes a local mmap hit."""
        if (
            not self.peers
            or self.trace_cache is None
            or not spec.program
            or spec.traceset is not None
        ):
            return
        key = trace_key(spec.program, spec.scale, spec.seed, spec.n_procs)
        if not self.trace_cache.has_key(key):
            await self.peers.fetch_trace(key)

    # ------------------------------------------------------------------
    async def _run_one(self, request: dict) -> dict:
        spec = JobSpec.from_dict(request["spec"])
        timeout = request.get("timeout")
        if self.cache is not None:
            hit = self.cache.get(spec)
            if hit is not None:
                return {
                    "ok": True,
                    "result": result_to_dict(hit),
                    "cached": True,
                    "elapsed_s": 0.0,
                }
        if self.peers:
            remote = await self.peers.fetch_result(spec.cache_key(), spec=spec)
            if remote is not None:
                return {
                    "ok": True,
                    "result": result_to_dict(remote),
                    "cached": True,
                    "remote": True,
                    "elapsed_s": 0.0,
                }
        await self._prefetch_trace(spec)
        tcache_root = (
            str(self.trace_cache.root) if self.trace_cache is not None else None
        )
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(
                self._worker_pool(), _execute, spec, timeout, tcache_root
            )
        except Exception as exc:  # pool worker died
            return {
                "ok": False,
                "kind": "error",
                "message": f"{type(exc).__name__}: {exc}",
                "traceback": "",
                "elapsed_s": 0.0,
            }
        if payload.get("ok") and self.cache is not None:
            from ..runner.serialize import result_from_dict

            self.cache.put(spec, result_from_dict(payload["result"]))
        return payload

    async def _run_shard(self, request: dict) -> dict:
        specs = [JobSpec.from_dict(d) for d in request.get("specs", ())]
        timeout = request.get("timeout")
        retries = int(request.get("retries", 0))
        remote = 0
        if self.peers and self.cache is not None:
            # warm the local store from peers first: any key a peer
            # already simulated is healed here and becomes a plain
            # cache hit inside run_jobs, never a re-simulation
            wanted = {
                spec.cache_key(): spec
                for spec in specs
                if not self.cache.has_key(spec.cache_key())
            }
            if wanted:
                present = await self.peers.has(wanted)
                for key in sorted(present):
                    if await self.peers.fetch_result(key, spec=wanted[key]):
                        remote += 1
            for spec in specs:
                await self._prefetch_trace(spec)
        # run_jobs spins its own scheduler in a worker thread; this
        # reuses the executor's timeout/retry/cache machinery wholesale
        batch = await asyncio.to_thread(
            run_jobs,
            specs,
            jobs=self.jobs,
            cache=self.cache,
            timeout=timeout,
            retries=retries,
            trace_cache=self.trace_cache if self.trace_cache is not None else False,
        )
        payloads = []
        for outcome in batch.outcomes:
            if isinstance(outcome, JobFailure):
                payloads.append(
                    {
                        "ok": False,
                        "kind": outcome.kind,
                        "message": outcome.message,
                        "traceback": outcome.traceback,
                        "attempts": outcome.attempts,
                        "elapsed_s": 0.0,
                    }
                )
            else:
                payloads.append(
                    {"ok": True, "result": result_to_dict(outcome), "elapsed_s": 0.0}
                )
        return {
            "ok": True,
            "worker": self.name,
            "payloads": payloads,
            "stats": {
                "executed": batch.stats.executed,
                "cached": batch.stats.cached,
                "failed": batch.stats.failed,
                "retries": batch.stats.retries,
                "remote": remote,
            },
        }


async def serve_worker(
    jobs: int = 1,
    cache=None,
    trace_cache=None,
    host: str = "127.0.0.1",
    port: int = 0,
    name: str | None = None,
    peers=None,
    binary: bool = True,
):
    """Boot a socket worker agent; returns ``(server, port, agent)``.

    ``peers`` are transports to sibling workers (or a store node) whose
    stores this worker may read through; ``binary=False`` pins the
    served framing to JSON lines (clients fall back automatically).
    """
    agent = WorkerAgent(
        jobs=jobs, cache=cache, trace_cache=trace_cache, name=name, peers=peers
    )
    server, bound_port = await serve_socket(
        agent.handle, host=host, port=port, binary=binary
    )
    return server, bound_port, agent
