"""Worker agent: executes cells and shards on behalf of a scheduler.

A worker agent is the far end of a :mod:`~repro.service.transport`.  It
understands four operations, each one JSON object in, one out:

* ``{"op": "ping"}`` -- liveness probe; echoes worker identity.
* ``{"op": "run", "spec": {...}, "timeout": ...}`` -- execute one cell
  through the executor's worker function (process pool, so the
  in-worker SIGALRM timeout machinery applies) and return its payload.
* ``{"op": "run_shard", "specs": [...], ...}`` -- execute a planned
  shard through :func:`repro.runner.run_jobs` itself, reusing its
  timeout/retry machinery and local parallelism, and return one payload
  per spec in order.
* ``{"op": "stats"}`` -- the worker's cache/trace-cache counters.

Workers open the content-addressed stores by *root path*: co-located
workers share pages via the trace cache's mmap objects, and a shared
filesystem (or rsync'd store) gives multi-host workers the same
warm-cell behaviour -- the store is the coordination medium, the
transport only moves cold work.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ProcessPoolExecutor

from ..runner.cache import ResultCache
from ..runner.executor import JobFailure, _execute, run_jobs
from ..runner.serialize import result_to_dict
from ..runner.spec import JobSpec
from ..trace.cache import resolve_trace_cache
from .transport import serve_socket

__all__ = ["WorkerAgent", "serve_worker"]


class WorkerAgent:
    """Request handler for one worker process (see module docstring)."""

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | str | None = None,
        trace_cache=None,
        name: str | None = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = (
            cache if cache is None or isinstance(cache, ResultCache) else ResultCache(cache)
        )
        self.trace_cache = resolve_trace_cache(trace_cache)
        self.name = name or f"worker-{os.getpid()}"
        self._pool: ProcessPoolExecutor | None = None

    def _worker_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------
    async def handle(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "pong", "worker": self.name, "jobs": self.jobs}
        if op == "run":
            return await self._run_one(request)
        if op == "run_shard":
            return await self._run_shard(request)
        if op == "stats":
            return {
                "ok": True,
                "worker": self.name,
                "cache": self.cache.stats_dict() if self.cache is not None else None,
                "trace_cache": (
                    self.trace_cache.stats_dict()
                    if self.trace_cache is not None
                    else None
                ),
            }
        return {"ok": False, "kind": "error", "message": f"unknown op {op!r}"}

    async def _run_one(self, request: dict) -> dict:
        spec = JobSpec.from_dict(request["spec"])
        timeout = request.get("timeout")
        if self.cache is not None:
            hit = self.cache.get(spec)
            if hit is not None:
                return {
                    "ok": True,
                    "result": result_to_dict(hit),
                    "cached": True,
                    "elapsed_s": 0.0,
                }
        tcache_root = (
            str(self.trace_cache.root) if self.trace_cache is not None else None
        )
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(
                self._worker_pool(), _execute, spec, timeout, tcache_root
            )
        except Exception as exc:  # pool worker died
            return {
                "ok": False,
                "kind": "error",
                "message": f"{type(exc).__name__}: {exc}",
                "traceback": "",
                "elapsed_s": 0.0,
            }
        if payload.get("ok") and self.cache is not None:
            from ..runner.serialize import result_from_dict

            self.cache.put(spec, result_from_dict(payload["result"]))
        return payload

    async def _run_shard(self, request: dict) -> dict:
        specs = [JobSpec.from_dict(d) for d in request.get("specs", ())]
        timeout = request.get("timeout")
        retries = int(request.get("retries", 0))
        # run_jobs spins its own scheduler in a worker thread; this
        # reuses the executor's timeout/retry/cache machinery wholesale
        batch = await asyncio.to_thread(
            run_jobs,
            specs,
            jobs=self.jobs,
            cache=self.cache,
            timeout=timeout,
            retries=retries,
            trace_cache=self.trace_cache if self.trace_cache is not None else False,
        )
        payloads = []
        for outcome in batch.outcomes:
            if isinstance(outcome, JobFailure):
                payloads.append(
                    {
                        "ok": False,
                        "kind": outcome.kind,
                        "message": outcome.message,
                        "traceback": outcome.traceback,
                        "attempts": outcome.attempts,
                        "elapsed_s": 0.0,
                    }
                )
            else:
                payloads.append(
                    {"ok": True, "result": result_to_dict(outcome), "elapsed_s": 0.0}
                )
        return {
            "ok": True,
            "worker": self.name,
            "payloads": payloads,
            "stats": {
                "executed": batch.stats.executed,
                "cached": batch.stats.cached,
                "failed": batch.stats.failed,
                "retries": batch.stats.retries,
            },
        }


async def serve_worker(
    jobs: int = 1,
    cache=None,
    trace_cache=None,
    host: str = "127.0.0.1",
    port: int = 0,
    name: str | None = None,
):
    """Boot a socket worker agent; returns ``(server, port, agent)``."""
    agent = WorkerAgent(jobs=jobs, cache=cache, trace_cache=trace_cache, name=name)
    server, bound_port = await serve_socket(agent.handle, host=host, port=port)
    return server, bound_port, agent
