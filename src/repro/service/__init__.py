"""repro.service: a sharded sweep service over the content-addressed stores.

The service turns the batch executor into simulation-as-a-service:

* :mod:`~repro.service.scheduler` -- asyncio cell scheduler: cache-first
  lookup, one in-flight job per content address (later requesters attach
  to the same future), pooled execution with retries, exponential
  backoff, and per-job deadline budgets.  Its synchronous facade
  :func:`~repro.service.scheduler.run_batch` is the engine behind
  :func:`repro.runner.run_jobs`.
* :mod:`~repro.service.planner` -- cost-balanced shard planning for
  sweep grids dispatched to remote workers.
* :mod:`~repro.service.transport` -- in-process and socket transports
  (stdlib only) with dual JSON / length-prefixed-binary framing and
  per-connection negotiation; multi-host workers are a config change.
* :mod:`~repro.service.worker` -- the worker agent at the far end of a
  transport (``ping`` / ``run`` / ``run_shard`` / ``has`` / ``fetch``
  / ``stats``).
* :mod:`~repro.service.stores` -- the peer-replicated warm-store tier:
  read-through ``has``/``fetch`` against peer stores, healing fetched
  objects into the local caches.
* :mod:`~repro.service.aggregator` -- streaming fold of finished cells
  into JSONL manifests and incremental suite tables.
* :mod:`~repro.service.frontend` -- HTTP front end (``/submit``,
  ``/status``, ``/metrics``, ``/result/<key>``) and the synchronous
  client behind ``repro serve`` / ``repro submit`` / ``repro status``.
* :mod:`~repro.service.metrics` -- service counters and per-stage
  latency histograms with Prometheus text exposition.
"""

from .aggregator import StreamAggregator
from .frontend import ServiceClient, ServiceServer
from .metrics import LatencyHistogram, ServiceMetrics
from .planner import Shard, estimate_cost, grid_specs, plan_shards, replan
from .scheduler import CellOutcome, Overloaded, Scheduler, run_batch
from .stores import PeerStore
from .transport import (
    Blob,
    FrameTooLarge,
    InProcessTransport,
    SocketTransport,
    serve_socket,
)
from .worker import WorkerAgent, serve_worker

__all__ = [
    "Blob",
    "CellOutcome",
    "FrameTooLarge",
    "InProcessTransport",
    "LatencyHistogram",
    "Overloaded",
    "PeerStore",
    "Scheduler",
    "ServiceClient",
    "ServiceMetrics",
    "ServiceServer",
    "Shard",
    "SocketTransport",
    "StreamAggregator",
    "WorkerAgent",
    "estimate_cost",
    "grid_specs",
    "plan_shards",
    "replan",
    "run_batch",
    "serve_socket",
    "serve_worker",
]
