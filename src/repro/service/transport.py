"""Thin request/response transport abstraction (stdlib only).

A transport carries one JSON-ready dict to a worker agent and returns
one JSON-ready dict.  Two implementations:

* :class:`InProcessTransport` -- calls an async handler directly; zero
  copies, used by tests and by single-process deployments.
* :class:`SocketTransport` / :func:`serve_socket` -- newline-delimited
  JSON over a TCP stream (asyncio streams, one request in flight per
  connection, transparent reconnect).  Point it at ``127.0.0.1`` today;
  pointing it at another host *is the whole multi-host story* -- the
  scheduler neither knows nor cares where the worker runs.

The wire format is deliberately boring: one JSON object per line, UTF-8,
no framing beyond the newline (payloads are ``json.dumps`` output, so
they never contain a raw newline).  Anything smarter (TLS, auth,
compression) belongs in front of the socket, not in this layer.
"""

from __future__ import annotations

import asyncio
import json

__all__ = [
    "Transport",
    "InProcessTransport",
    "SocketTransport",
    "serve_socket",
]

#: refuse absurd frames instead of buffering without bound
MAX_FRAME_BYTES = 256 * 1024 * 1024


class Transport:
    """One request dict in, one response dict out."""

    async def call(self, request: dict) -> dict:
        raise NotImplementedError

    async def close(self) -> None:  # pragma: no cover - trivial default
        pass


class InProcessTransport(Transport):
    """Direct dispatch to an async handler -- the degenerate transport."""

    def __init__(self, handler) -> None:
        self.handler = handler

    async def call(self, request: dict) -> dict:
        # round-trip through JSON so in-process behaves exactly like the
        # socket: only JSON-expressible payloads survive either way
        return json.loads(json.dumps(await self.handler(json.loads(json.dumps(request)))))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InProcessTransport({self.handler!r})"


def _encode(obj: dict) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


async def _read_frame(reader: asyncio.StreamReader) -> dict | None:
    """One newline-delimited JSON frame, or ``None`` on EOF."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise ConnectionError("oversized transport frame")
    if not line:
        return None
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ConnectionError(f"expected a JSON object frame, got {type(obj).__name__}")
    return obj


class SocketTransport(Transport):
    """Persistent newline-delimited-JSON client connection.

    One request is in flight per transport at a time (an internal lock
    serializes callers); the scheduler fans out across *several*
    transports for parallelism.  A dead connection is re-opened once
    per call before the error propagates.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = int(port)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    @classmethod
    def from_address(cls, address: str) -> "SocketTransport":
        """``host:port`` (or ``:port`` for localhost) -> transport."""
        host, _, port = address.rpartition(":")
        return cls(host or "127.0.0.1", int(port))

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=MAX_FRAME_BYTES
            )

    async def _roundtrip(self, request: dict) -> dict:
        await self._connect()
        self._writer.write(_encode(request))
        await self._writer.drain()
        response = await _read_frame(self._reader)
        if response is None:
            raise ConnectionError("worker closed the connection mid-request")
        return response

    async def call(self, request: dict) -> dict:
        async with self._lock:
            try:
                return await self._roundtrip(request)
            except (ConnectionError, OSError, json.JSONDecodeError):
                # stale connection (worker restarted, idle timeout...):
                # reconnect once, then let a second failure propagate
                await self.close()
                return await self._roundtrip(request)

    async def close(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - racy peer reset
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SocketTransport({self.host}:{self.port})"


async def serve_socket(handler, host: str = "127.0.0.1", port: int = 0):
    """Serve ``handler`` (async dict -> dict) over newline-delimited
    JSON; returns ``(server, bound_port)``.  ``port=0`` binds an
    ephemeral port -- the test and CI lanes use that to avoid clashes.
    """

    async def on_connection(reader, writer) -> None:
        try:
            while True:
                try:
                    request = await _read_frame(reader)
                except (json.JSONDecodeError, ConnectionError) as exc:
                    writer.write(_encode({"ok": False, "message": str(exc)}))
                    await writer.drain()
                    break
                if request is None:
                    break
                try:
                    response = await handler(request)
                except Exception as exc:  # handler bug: report, keep serving
                    response = {
                        "ok": False,
                        "kind": "error",
                        "message": f"{type(exc).__name__}: {exc}",
                    }
                writer.write(_encode(response))
                await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - peer vanished
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    server = await asyncio.start_server(
        on_connection, host, port, limit=MAX_FRAME_BYTES
    )
    bound_port = server.sockets[0].getsockname()[1]
    return server, bound_port
