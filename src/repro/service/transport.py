"""Request/response transport with dual JSON / binary framing (stdlib only).

A transport carries one request dict to a worker agent and returns one
response dict.  Two implementations:

* :class:`InProcessTransport` -- calls an async handler directly; zero
  copies, used by tests and by single-process deployments.
* :class:`SocketTransport` / :func:`serve_socket` -- a TCP stream
  (asyncio streams, one request in flight per connection, transparent
  reconnect).  Point it at ``127.0.0.1`` today; pointing it at another
  host *is the whole multi-host story* -- the scheduler neither knows
  nor cares where the worker runs.

Two frame encodings share every connection:

* **JSON frames** (the PR-6 wire format, still the control plane): one
  JSON object per line, UTF-8.  Binary payloads are expressible here
  too -- a :class:`Blob` becomes a base64 marker object -- so JSON is a
  complete, slow fallback, not a restricted subset.
* **Binary frames** (the bulk plane): a fixed :mod:`struct` header
  ``!4sBIQ`` -- magic ``0xAB 'RF1'``, flags, meta length, body length --
  followed by the body: a JSON *meta* document (the control dict with
  each :class:`Blob` replaced by an index placeholder, plus a segment
  table of ``[codec, length]`` pairs) concatenated with the raw blob
  payload segments.  Flag bit 0 marks a zlib-deflated body.  Because
  the magic's first byte can neither begin a JSON document nor a UTF-8
  sequence, a server (or client) sniffs one byte and knows the framing.

Framing is negotiated, never assumed: a client in ``binary="auto"``
mode opens every connection with a ``__negotiate__`` JSON line; servers
built on :func:`serve_socket` answer it at the framing layer, anything
else answers with an unknown-op error, and either way the client knows
whether binary frames are welcome before it sends one.  Responses are
always framed like the request they answer.
"""

from __future__ import annotations

import asyncio
import base64
import json
import struct
import zlib

__all__ = [
    "Blob",
    "FrameTooLarge",
    "Transport",
    "InProcessTransport",
    "SocketTransport",
    "serve_socket",
    "encode_frame",
    "decode_binary_body",
    "read_frame",
]

#: refuse absurd frames instead of buffering without bound
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: binary frame header: magic, flags, meta length, body length.
#: ``body length`` counts on-wire bytes after the header (post-deflate);
#: ``meta length`` counts bytes of the *inflated* meta document so the
#: reader can split meta from payload after decompressing.
FRAME_MAGIC = b"\xabRF1"
_HEADER = struct.Struct("!4sBIQ")
FLAG_DEFLATE = 0x01

#: deflate the body when it shrinks; tiny control frames skip the call
_DEFLATE_THRESHOLD = 512

#: request key injected by the framing layer so handlers can answer in
#: a wire-appropriate encoding (dicts for JSON peers, blobs for binary)
BINARY_HINT = "@binary"

_NEGOTIATE_OP = "__negotiate__"

_B64_KEY = "__blob_b64__"
_REF_KEY = "__blob__"


class FrameTooLarge(ValueError):
    """An encoded frame exceeded :data:`MAX_FRAME_BYTES`."""


class Blob:
    """A raw byte payload riding inside a transport message.

    ``codec`` names the payload encoding (``"result-v1"``, ``"npy"``,
    ``"json"``, ...) so receivers dispatch without sniffing.  In binary
    frames the bytes travel verbatim; in JSON frames they degrade to a
    base64 marker object, so every message stays expressible on every
    negotiated framing.
    """

    __slots__ = ("data", "codec")

    def __init__(self, data: bytes, codec: str = "bytes") -> None:
        self.data = bytes(data)
        self.codec = codec

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Blob)
            and self.data == other.data
            and self.codec == other.codec
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Blob({len(self.data)} bytes, codec={self.codec!r})"


def _frame_identity(obj: dict) -> str:
    """``key=... op=...`` fragment for cap errors (satellite: the frame
    cap must name the offending key, not just the limit)."""
    parts = []
    if isinstance(obj, dict):
        key = obj.get("key")
        if key:
            parts.append(f"key={key!r}")
        op = obj.get("op")
        if op:
            parts.append(f"op={op!r}")
        if not parts and "payloads" in obj:
            parts.append(f"shard of {len(obj['payloads'])} payload(s)")
    return ", ".join(parts) or "unkeyed frame"


def _check_cap(nbytes: int, obj: dict) -> None:
    if nbytes > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"transport frame of {nbytes} bytes ({_frame_identity(obj)}) "
            f"exceeds the {MAX_FRAME_BYTES}-byte cap"
        )


# ----------------------------------------------------------------------
# Blob <-> JSON degradation (the negotiated fallback)
# ----------------------------------------------------------------------
def _jsonify(obj):
    """Copy of ``obj`` with every :class:`Blob` as a base64 marker."""
    if isinstance(obj, Blob):
        return {
            _B64_KEY: base64.b64encode(obj.data).decode("ascii"),
            "codec": obj.codec,
        }
    if isinstance(obj, dict):
        return {k: _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    return obj


def _dejsonify(obj):
    """Inverse of :func:`_jsonify`: base64 markers back to blobs."""
    if isinstance(obj, dict):
        if _B64_KEY in obj and len(obj) <= 2:
            return Blob(
                base64.b64decode(obj[_B64_KEY]), obj.get("codec", "bytes")
            )
        return {k: _dejsonify(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_dejsonify(v) for v in obj]
    return obj


# ----------------------------------------------------------------------
# Binary frame codec
# ----------------------------------------------------------------------
def _strip_blobs(obj, blobs: list):
    """Copy of ``obj`` with blobs hoisted into ``blobs`` by index."""
    if isinstance(obj, Blob):
        blobs.append(obj)
        return {_REF_KEY: len(blobs) - 1}
    if isinstance(obj, dict):
        return {k: _strip_blobs(v, blobs) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_strip_blobs(v, blobs) for v in obj]
    return obj


def _inject_blobs(obj, blobs: list):
    if isinstance(obj, dict):
        if _REF_KEY in obj and len(obj) == 1:
            return blobs[obj[_REF_KEY]]
        return {k: _inject_blobs(v, blobs) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_inject_blobs(v, blobs) for v in obj]
    return obj


def encode_frame(obj: dict, binary: bool) -> bytes:
    """One message -> on-wire bytes in the requested framing.

    Raises :class:`FrameTooLarge` (naming the offending key and size)
    instead of emitting a frame the far end would refuse to read.
    """
    if not binary:
        line = json.dumps(_jsonify(obj), separators=(",", ":")).encode() + b"\n"
        _check_cap(len(line), obj)
        return line
    blobs: list[Blob] = []
    control = _strip_blobs(obj, blobs)
    meta = {
        "c": control,
        "b": [[b.codec, len(b.data)] for b in blobs],
    }
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode()
    body = meta_bytes + b"".join(b.data for b in blobs)
    flags = 0
    if len(body) >= _DEFLATE_THRESHOLD:
        packed = zlib.compress(body, 6)
        if len(packed) < len(body):
            body, flags = packed, FLAG_DEFLATE
    _check_cap(_HEADER.size + len(body), obj)
    return _HEADER.pack(FRAME_MAGIC, flags, len(meta_bytes), len(body)) + body


def decode_binary_body(flags: int, meta_len: int, body: bytes) -> dict:
    """Inverse of the binary arm of :func:`encode_frame`."""
    if flags & FLAG_DEFLATE:
        inflater = zlib.decompressobj()
        body = inflater.decompress(body, MAX_FRAME_BYTES)
        if inflater.unconsumed_tail or not inflater.eof:
            raise ConnectionError(
                "deflated transport frame is truncated or inflates past "
                f"the {MAX_FRAME_BYTES}-byte cap"
            )
    if meta_len > len(body):
        raise ConnectionError(
            f"binary frame meta length {meta_len} exceeds body of {len(body)} bytes"
        )
    meta = json.loads(body[:meta_len])
    segments = meta.get("b", [])
    blobs, offset = [], meta_len
    for codec, length in segments:
        end = offset + int(length)
        if end > len(body):
            raise ConnectionError(
                f"binary frame segment table overruns the body "
                f"({end} > {len(body)} bytes)"
            )
        blobs.append(Blob(body[offset:end], codec))
        offset = end
    obj = _inject_blobs(meta.get("c"), blobs)
    if not isinstance(obj, dict):
        raise ConnectionError(
            f"expected an object frame, got {type(obj).__name__}"
        )
    return obj


async def read_frame(reader: asyncio.StreamReader):
    """Read one frame of either framing.

    Returns ``(obj, is_binary, nbytes)`` or ``None`` on a clean EOF.
    Torn frames (EOF mid-header or mid-body) raise ``ConnectionError``.
    """
    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError:
        return None
    if first == FRAME_MAGIC[:1]:
        try:
            header = first + await reader.readexactly(_HEADER.size - 1)
            magic, flags, meta_len, body_len = _HEADER.unpack(header)
            if magic != FRAME_MAGIC:
                raise ConnectionError(
                    f"bad binary frame magic {magic!r}"
                )
            if body_len > MAX_FRAME_BYTES:
                raise ConnectionError(
                    f"binary transport frame of {body_len} bytes exceeds "
                    f"the {MAX_FRAME_BYTES}-byte cap"
                )
            body = await reader.readexactly(body_len)
        except asyncio.IncompleteReadError as exc:
            raise ConnectionError(
                f"torn binary frame: connection closed after "
                f"{len(exc.partial)} of {exc.expected} bytes"
            ) from None
        return decode_binary_body(flags, meta_len, body), True, _HEADER.size + body_len
    try:
        rest = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise ConnectionError("oversized transport frame")
    line = first + rest
    obj = _dejsonify(json.loads(line))
    if not isinstance(obj, dict):
        raise ConnectionError(
            f"expected a JSON object frame, got {type(obj).__name__}"
        )
    return obj, False, len(line)


class Transport:
    """One request dict in, one response dict out."""

    async def call(self, request: dict) -> dict:
        raise NotImplementedError

    async def close(self) -> None:  # pragma: no cover - trivial default
        pass


class InProcessTransport(Transport):
    """Direct dispatch to an async handler -- the degenerate transport."""

    def __init__(self, handler) -> None:
        self.handler = handler

    async def call(self, request: dict) -> dict:
        # round-trip through the JSON fallback framing so in-process
        # behaves exactly like a JSON socket peer: only frame-expressible
        # payloads survive either way (blobs degrade to base64 and back)
        request = _dejsonify(json.loads(json.dumps(_jsonify(request))))
        response = await self.handler(request)
        return _dejsonify(json.loads(json.dumps(_jsonify(response))))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InProcessTransport({self.handler!r})"


class SocketTransport(Transport):
    """Persistent socket client connection with framing negotiation.

    One request is in flight per transport at a time (an internal lock
    serializes callers); the scheduler fans out across *several*
    transports for parallelism.  A dead connection is re-opened once
    per call before the error propagates.

    ``binary="auto"`` (default) negotiates binary framing on each new
    connection and falls back to JSON lines when the far end declines;
    ``binary="never"`` speaks the PR-6 JSON wire format unconditionally.
    An attached :class:`~repro.service.metrics.ServiceMetrics` receives
    ``bytes_sent`` / ``bytes_received`` / ``frames_binary`` /
    ``frames_json`` counts for every round trip.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        binary: str = "auto",
        metrics=None,
    ) -> None:
        if binary not in ("auto", "never"):
            raise ValueError(f"binary must be 'auto' or 'never', got {binary!r}")
        self.host = host
        self.port = int(port)
        self.binary = binary
        self.metrics = metrics
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        #: framing of the *current* connection; None = not yet negotiated
        self._use_binary: bool | None = False if binary == "never" else None
        self._lock = asyncio.Lock()

    @classmethod
    def from_address(cls, address: str, **kwargs) -> "SocketTransport":
        """``host:port`` (or ``:port`` for localhost) -> transport."""
        host, _, port = address.rpartition(":")
        return cls(host or "127.0.0.1", int(port), **kwargs)

    def _count(self, name: str, delta: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.count(name, delta)

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=MAX_FRAME_BYTES
            )
            self._use_binary = False if self.binary == "never" else None

    async def _send(self, obj: dict, binary: bool) -> dict:
        frame = encode_frame(obj, binary)
        self._count("frames_binary" if binary else "frames_json")
        self._count("bytes_sent", len(frame))
        self._writer.write(frame)
        await self._writer.drain()
        read = await read_frame(self._reader)
        if read is None:
            raise ConnectionError("worker closed the connection mid-request")
        response, _, nbytes = read
        self._count("bytes_received", nbytes)
        return response

    async def _roundtrip(self, request: dict) -> dict:
        await self._connect()
        if self._use_binary is None:
            # first use of this connection: offer binary framing over a
            # plain JSON line.  serve_socket answers at the framing
            # layer; a plain JSON server answers unknown-op -- either
            # response tells us what the far end accepts, and neither
            # can hang a line-oriented reader.
            hello = await self._send(
                {"op": _NEGOTIATE_OP, "binary": True}, binary=False
            )
            self._use_binary = bool(hello.get("binary"))
        return await self._send(request, self._use_binary)

    async def call(self, request: dict) -> dict:
        async with self._lock:
            try:
                return await self._roundtrip(request)
            except (ConnectionError, OSError, json.JSONDecodeError):
                # stale connection (worker restarted, idle timeout...):
                # reconnect once, then let a second failure propagate
                await self.close()
                return await self._roundtrip(request)

    async def close(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        self._use_binary = False if self.binary == "never" else None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - racy peer reset
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SocketTransport({self.host}:{self.port}, binary={self.binary})"


async def serve_socket(handler, host: str = "127.0.0.1", port: int = 0, binary: bool = True):
    """Serve ``handler`` (async dict -> dict) over the dual framing;
    returns ``(server, bound_port)``.  ``port=0`` binds an ephemeral
    port -- the test and CI lanes use that to avoid clashes.

    ``binary=False`` keeps the server on JSON lines only: negotiation
    offers are declined and binary frames are answered with an error,
    which is exactly what an auto-negotiating client needs to fall
    back.  Each request reaches the handler with a :data:`BINARY_HINT`
    key describing its framing, so handlers can answer JSON peers with
    dicts and binary peers with blobs.
    """

    async def on_connection(reader, writer) -> None:
        try:
            while True:
                try:
                    read = await read_frame(reader)
                except (json.JSONDecodeError, ConnectionError) as exc:
                    writer.write(
                        encode_frame({"ok": False, "message": str(exc)}, False)
                    )
                    await writer.drain()
                    break
                if read is None:
                    break
                request, is_binary, _ = read
                if is_binary and not binary:
                    response, is_binary = {
                        "ok": False,
                        "kind": "error",
                        "message": "binary framing not enabled on this server",
                    }, False
                elif request.get("op") == _NEGOTIATE_OP:
                    response = {
                        "ok": True,
                        "op": _NEGOTIATE_OP,
                        "binary": bool(binary),
                    }
                else:
                    request[BINARY_HINT] = is_binary
                    try:
                        response = await handler(request)
                    except Exception as exc:  # handler bug: report, keep serving
                        response = {
                            "ok": False,
                            "kind": "error",
                            "message": f"{type(exc).__name__}: {exc}",
                        }
                # answer in the framing the request arrived in
                try:
                    frame = encode_frame(response, is_binary)
                except FrameTooLarge as exc:
                    frame = encode_frame(
                        {"ok": False, "kind": "error", "message": str(exc)},
                        is_binary,
                    )
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - peer vanished
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    server = await asyncio.start_server(
        on_connection, host, port, limit=MAX_FRAME_BYTES
    )
    bound_port = server.sockets[0].getsockname()[1]
    return server, bound_port
