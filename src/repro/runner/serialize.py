"""JSON serialization for simulation results and their components.

Results must cross two boundaries the in-memory objects cannot:

* **process boundaries** — the parallel executor ships every worker
  result back to the coordinator as JSON, which both exercises this
  module on every parallel run and guarantees workers cannot leak
  non-picklable state into the batch;
* **time** — the content-addressed result cache and the batch manifest
  persist results on disk between invocations.

Every field of :class:`~repro.machine.metrics.RunResult` is integer or
string valued (cycle counts, event counts, names), so the round trip is
lossless: ``result_from_json(result_to_json(r)) == r`` exactly.  The one
deliberate exception is ``diagnostics`` (fast-path profiling counters,
``compare=False``): two byte-identical results can carry different
counters, so persisting them would make cached bytes, worker payloads
and golden fixtures depend on which engine produced the run.  They live
only in memory and surface through ``repro run --profile``.

Integer-keyed mappings (per-lock breakdowns, bus op counts) are stored
with stringified keys -- JSON object keys are always strings -- and
converted back on load.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from ..machine.config import MachineConfig
from ..machine.metrics import ProcMetrics, RunResult
from ..sync.stats import LockStats

__all__ = [
    "lockstats_to_dict",
    "lockstats_from_dict",
    "result_to_dict",
    "result_from_dict",
    "result_to_json",
    "result_from_json",
    "result_to_bytes",
    "result_from_bytes",
    "machine_to_dict",
    "machine_from_dict",
    "RESULT_CODEC",
]

#: RunResult scalar fields carried verbatim (all ints or strings).
_SCALAR_FIELDS = (
    "program",
    "n_procs",
    "lock_scheme",
    "consistency",
    "run_time",
    "bus_busy_cycles",
    "read_hits",
    "read_misses",
    "write_hits",
    "write_misses",
    "ifetch_hits",
    "ifetch_misses",
    "writebacks",
    "c2c_supplied",
    "invalidations_received",
    "buffer_max_occupancy",
)

_LOCKSTATS_SCALARS = (
    "acquisitions",
    "hold_cycles_total",
    "transfers",
    "waiters_at_transfer_total",
    "transfer_hold_cycles_total",
    "handoff_cycles_total",
    "uncontended_acquire_cycles_total",
    "uncontended_acquires",
)

_LOCKSTATS_MAPS = (
    "per_lock_acquisitions",
    "per_lock_transfers",
    "per_lock_waiters_total",
    "per_lock_hold_total",
)


def _intkeys_out(d: dict) -> dict:
    return {str(k): v for k, v in d.items()}


def _intkeys_in(d: dict) -> dict:
    return {int(k): v for k, v in d.items()}


def lockstats_to_dict(ls: LockStats) -> dict:
    d = {name: getattr(ls, name) for name in _LOCKSTATS_SCALARS}
    for name in _LOCKSTATS_MAPS:
        d[name] = _intkeys_out(getattr(ls, name))
    return d


def lockstats_from_dict(d: dict) -> LockStats:
    kwargs = {name: d[name] for name in _LOCKSTATS_SCALARS}
    for name in _LOCKSTATS_MAPS:
        kwargs[name] = _intkeys_in(d.get(name, {}))
    return LockStats(**kwargs)


def machine_to_dict(config: MachineConfig | None) -> dict | None:
    """``None``-tolerant wrapper around :meth:`MachineConfig.to_dict`."""
    return None if config is None else config.to_dict()


def machine_from_dict(d: dict | None) -> MachineConfig | None:
    return None if d is None else MachineConfig.from_dict(d)


def result_to_dict(r: RunResult) -> dict:
    d = {name: getattr(r, name) for name in _SCALAR_FIELDS}
    d["proc_metrics"] = [m.as_dict() for m in r.proc_metrics]
    d["lock_stats"] = lockstats_to_dict(r.lock_stats)
    d["bus_op_counts"] = _intkeys_out(r.bus_op_counts)
    d["meta"] = dict(r.meta)
    return d


def result_from_dict(d: dict) -> RunResult:
    kwargs = {name: d[name] for name in _SCALAR_FIELDS}
    return RunResult(
        proc_metrics=tuple(ProcMetrics.from_dict(m) for m in d["proc_metrics"]),
        lock_stats=lockstats_from_dict(d["lock_stats"]),
        bus_op_counts=_intkeys_in(d["bus_op_counts"]),
        meta=dict(d.get("meta", {})),
        **kwargs,
    )


def result_to_json(r: RunResult, indent: int | None = None) -> str:
    return json.dumps(result_to_dict(r), indent=indent, sort_keys=True)


def result_from_json(text: str) -> RunResult:
    return result_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Binary result codec (the transport's bulk encoding)
# ----------------------------------------------------------------------
#: codec name carried on transport blobs; bump on layout changes
RESULT_CODEC = "result-v1"

_CODEC_MAGIC = b"RRB1"
_CODEC_HEADER = struct.Struct("!4sI")

#: _SCALAR_FIELDS that are integers (the three strings travel in the
#: descriptor instead)
_NUMERIC_SCALARS = tuple(
    name
    for name in _SCALAR_FIELDS
    if name not in ("program", "lock_scheme", "consistency")
)

#: ProcMetrics slot order is the codec's per-processor column order
_PROC_COLUMNS = ProcMetrics.__slots__


def result_to_bytes(r: RunResult) -> bytes:
    """Pack a result as one descriptor + one numeric array.

    Every numeric field of a :class:`RunResult` -- scalars, the
    per-processor metric rows, the lock-stats scalars and integer-keyed
    maps, bus op counts, and (integer-valued) meta entries -- lands in a
    single adaptively-typed ``int32``/``int64`` array behind a small
    JSON descriptor that records the shapes.  The round trip through
    :func:`result_from_bytes` is exact: ``result_from_bytes(
    result_to_bytes(r)) == r``.
    """
    meta_items = list(r.meta.items())
    meta_numeric = all(
        isinstance(v, int) and not isinstance(v, bool) for _, v in meta_items
    )
    values: list[int] = [getattr(r, name) for name in _NUMERIC_SCALARS]
    for m in r.proc_metrics:
        values.extend(getattr(m, name) for name in _PROC_COLUMNS)
    ls = r.lock_stats
    values.extend(getattr(ls, name) for name in _LOCKSTATS_SCALARS)
    map_lens = []
    for name in _LOCKSTATS_MAPS:
        mapping = getattr(ls, name)
        keys = sorted(mapping)
        map_lens.append(len(keys))
        values.extend(keys)
        values.extend(mapping[k] for k in keys)
    bus_keys = sorted(r.bus_op_counts)
    values.extend(bus_keys)
    values.extend(r.bus_op_counts[k] for k in bus_keys)
    if meta_numeric:
        values.extend(v for _, v in meta_items)
    desc = {
        "program": r.program,
        "lock_scheme": r.lock_scheme,
        "consistency": r.consistency,
        "rows": len(r.proc_metrics),
        "maps": map_lens,
        "bus": len(bus_keys),
    }
    if meta_numeric:
        desc["meta_keys"] = [k for k, _ in meta_items]
    else:  # non-integer meta values ride in the descriptor verbatim
        desc["meta"] = dict(r.meta)
    wide = any(not (-(2**31) <= v < 2**31) for v in values)
    desc["dtype"] = "<i8" if wide else "<i4"
    arr = np.asarray(values, dtype=np.dtype(desc["dtype"]))
    desc_bytes = json.dumps(desc, separators=(",", ":")).encode()
    return (
        _CODEC_HEADER.pack(_CODEC_MAGIC, len(desc_bytes))
        + desc_bytes
        + arr.tobytes()
    )


def result_from_bytes(data: bytes) -> RunResult:
    """Exact inverse of :func:`result_to_bytes`."""
    if len(data) < _CODEC_HEADER.size:
        raise ValueError(f"result blob of {len(data)} bytes is too short")
    magic, desc_len = _CODEC_HEADER.unpack_from(data)
    if magic != _CODEC_MAGIC:
        raise ValueError(f"bad result codec magic {magic!r}")
    desc_end = _CODEC_HEADER.size + desc_len
    desc = json.loads(data[_CODEC_HEADER.size : desc_end])
    arr = np.frombuffer(data[desc_end:], dtype=np.dtype(desc["dtype"]))
    values = arr.tolist()  # native python ints, exactly as serialized

    cursor = 0

    def take(n: int) -> list:
        nonlocal cursor
        chunk = values[cursor : cursor + n]
        if len(chunk) != n:
            raise ValueError("result blob numeric section is truncated")
        cursor += n
        return chunk

    scalars = dict(zip(_NUMERIC_SCALARS, take(len(_NUMERIC_SCALARS))))
    procs = []
    for _ in range(desc["rows"]):
        row = take(len(_PROC_COLUMNS))
        m = ProcMetrics(row[0])
        for name, v in zip(_PROC_COLUMNS, row):
            setattr(m, name, v)
        procs.append(m)
    ls_kwargs = dict(zip(_LOCKSTATS_SCALARS, take(len(_LOCKSTATS_SCALARS))))
    for name, n in zip(_LOCKSTATS_MAPS, desc["maps"]):
        keys = take(n)
        ls_kwargs[name] = dict(zip(keys, take(n)))
    bus_keys = take(desc["bus"])
    bus_op_counts = dict(zip(bus_keys, take(desc["bus"])))
    if "meta_keys" in desc:
        meta = dict(zip(desc["meta_keys"], take(len(desc["meta_keys"]))))
    else:
        meta = dict(desc.get("meta", {}))
    return RunResult(
        program=desc["program"],
        lock_scheme=desc["lock_scheme"],
        consistency=desc["consistency"],
        proc_metrics=tuple(procs),
        lock_stats=LockStats(**ls_kwargs),
        bus_op_counts=bus_op_counts,
        meta=meta,
        **scalars,
    )
