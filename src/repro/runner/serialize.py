"""JSON serialization for simulation results and their components.

Results must cross two boundaries the in-memory objects cannot:

* **process boundaries** — the parallel executor ships every worker
  result back to the coordinator as JSON, which both exercises this
  module on every parallel run and guarantees workers cannot leak
  non-picklable state into the batch;
* **time** — the content-addressed result cache and the batch manifest
  persist results on disk between invocations.

Every field of :class:`~repro.machine.metrics.RunResult` is integer or
string valued (cycle counts, event counts, names), so the round trip is
lossless: ``result_from_json(result_to_json(r)) == r`` exactly.  The one
deliberate exception is ``diagnostics`` (fast-path profiling counters,
``compare=False``): two byte-identical results can carry different
counters, so persisting them would make cached bytes, worker payloads
and golden fixtures depend on which engine produced the run.  They live
only in memory and surface through ``repro run --profile``.

Integer-keyed mappings (per-lock breakdowns, bus op counts) are stored
with stringified keys -- JSON object keys are always strings -- and
converted back on load.
"""

from __future__ import annotations

import json

from ..machine.config import MachineConfig
from ..machine.metrics import ProcMetrics, RunResult
from ..sync.stats import LockStats

__all__ = [
    "lockstats_to_dict",
    "lockstats_from_dict",
    "result_to_dict",
    "result_from_dict",
    "result_to_json",
    "result_from_json",
    "machine_to_dict",
    "machine_from_dict",
]

#: RunResult scalar fields carried verbatim (all ints or strings).
_SCALAR_FIELDS = (
    "program",
    "n_procs",
    "lock_scheme",
    "consistency",
    "run_time",
    "bus_busy_cycles",
    "read_hits",
    "read_misses",
    "write_hits",
    "write_misses",
    "ifetch_hits",
    "ifetch_misses",
    "writebacks",
    "c2c_supplied",
    "invalidations_received",
    "buffer_max_occupancy",
)

_LOCKSTATS_SCALARS = (
    "acquisitions",
    "hold_cycles_total",
    "transfers",
    "waiters_at_transfer_total",
    "transfer_hold_cycles_total",
    "handoff_cycles_total",
    "uncontended_acquire_cycles_total",
    "uncontended_acquires",
)

_LOCKSTATS_MAPS = (
    "per_lock_acquisitions",
    "per_lock_transfers",
    "per_lock_waiters_total",
    "per_lock_hold_total",
)


def _intkeys_out(d: dict) -> dict:
    return {str(k): v for k, v in d.items()}


def _intkeys_in(d: dict) -> dict:
    return {int(k): v for k, v in d.items()}


def lockstats_to_dict(ls: LockStats) -> dict:
    d = {name: getattr(ls, name) for name in _LOCKSTATS_SCALARS}
    for name in _LOCKSTATS_MAPS:
        d[name] = _intkeys_out(getattr(ls, name))
    return d


def lockstats_from_dict(d: dict) -> LockStats:
    kwargs = {name: d[name] for name in _LOCKSTATS_SCALARS}
    for name in _LOCKSTATS_MAPS:
        kwargs[name] = _intkeys_in(d.get(name, {}))
    return LockStats(**kwargs)


def machine_to_dict(config: MachineConfig | None) -> dict | None:
    """``None``-tolerant wrapper around :meth:`MachineConfig.to_dict`."""
    return None if config is None else config.to_dict()


def machine_from_dict(d: dict | None) -> MachineConfig | None:
    return None if d is None else MachineConfig.from_dict(d)


def result_to_dict(r: RunResult) -> dict:
    d = {name: getattr(r, name) for name in _SCALAR_FIELDS}
    d["proc_metrics"] = [m.as_dict() for m in r.proc_metrics]
    d["lock_stats"] = lockstats_to_dict(r.lock_stats)
    d["bus_op_counts"] = _intkeys_out(r.bus_op_counts)
    d["meta"] = dict(r.meta)
    return d


def result_from_dict(d: dict) -> RunResult:
    kwargs = {name: d[name] for name in _SCALAR_FIELDS}
    return RunResult(
        proc_metrics=tuple(ProcMetrics.from_dict(m) for m in d["proc_metrics"]),
        lock_stats=lockstats_from_dict(d["lock_stats"]),
        bus_op_counts=_intkeys_in(d["bus_op_counts"]),
        meta=dict(d.get("meta", {})),
        **kwargs,
    )


def result_to_json(r: RunResult, indent: int | None = None) -> str:
    return json.dumps(result_to_dict(r), indent=indent, sort_keys=True)


def result_from_json(text: str) -> RunResult:
    return result_from_dict(json.loads(text))
