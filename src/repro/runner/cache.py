"""Content-addressed on-disk result cache.

Layout (git-style fan-out to keep directories small)::

    <root>/objects/<key[:2]>/<key>.json

Each object stores the full job spec alongside the result so entries
are self-describing and verifiable: a load checks the payload's format
version and that its embedded key matches the file's address, and
anything unreadable or stale is *invalidated* -- counted, deleted, and
treated as a miss -- rather than trusted.

Writes are atomic (temp file + ``os.replace``) so a crashed or
concurrent writer can never leave a half-written object where a later
run would find it.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..machine.metrics import RunResult
from .serialize import result_from_dict, result_to_dict
from .spec import CACHE_FORMAT, JobSpec

__all__ = ["CacheStats", "ResultCache", "default_cache_dir"]


def _mtime(path: Path) -> float:
    """mtime, with vanished-under-us files treated as just touched."""
    try:
        return path.stat().st_mtime
    except OSError:
        return float("inf")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one cache handle."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses "
            f"({100 * self.hit_rate:.0f}% hit rate), {self.puts} stored, "
            f"{self.invalidated} invalidated"
        )


class ResultCache:
    """Content-addressed store of :class:`RunResult`s keyed by job spec."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _objects_dir(self) -> Path:
        return self.root / "objects"

    def path_for(self, key: str) -> Path:
        return self._objects_dir() / key[:2] / f"{key}.json"

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def get(self, spec: JobSpec) -> RunResult | None:
        """The cached result for ``spec``, or ``None`` on a miss.

        Corrupt, truncated, or format-stale entries are deleted and
        counted in ``stats.invalidated``.
        """
        return self.get_by_key(spec.cache_key())

    def get_by_key(self, key: str) -> RunResult | None:
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.stats.invalidated += 1
            self.stats.misses += 1
            self._discard(path)
            return None
        try:
            if payload["format"] != CACHE_FORMAT or payload["key"] != key:
                raise ValueError("stale or mismatched cache object")
            result = result_from_dict(payload["result"])
        except Exception:
            # *any* parse failure means the object is corrupt or stale --
            # a cache must self-heal (discard + miss), never raise: the
            # narrower (KeyError, TypeError, ValueError) let e.g. an
            # AttributeError from a malformed payload escape to callers
            self.stats.invalidated += 1
            self.stats.misses += 1
            self._discard(path)
            return None
        self.stats.hits += 1
        return result

    def put(self, spec: JobSpec, result: RunResult) -> str:
        """Store ``result`` under ``spec``'s key; returns the key."""
        key = spec.cache_key()
        payload = {
            "format": CACHE_FORMAT,
            "key": key,
            "spec": spec.to_dict(),
            "result": result_to_dict(result),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            self._discard(Path(tmp))
            raise
        self.stats.puts += 1
        return key

    def __contains__(self, spec: JobSpec) -> bool:
        return self.path_for(spec.cache_key()).exists()

    def has_key(self, key: str) -> bool:
        """Cheap existence probe (peer ``has`` ops); no stats, no parse."""
        return self.path_for(key).exists()

    # ------------------------------------------------------------------
    def _object_files(self) -> list[Path]:
        objects = self._objects_dir()
        if not objects.is_dir():
            return []
        return sorted(objects.glob("*/*.json"))

    def count(self) -> int:
        return len(self._object_files())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._object_files())

    def clear(self, older_than_days: float | None = None) -> int:
        """Delete cached objects; returns how many were removed.

        ``older_than_days`` keeps the warm set: only objects whose mtime
        is older than that many days are garbage-collected.
        """
        files = self._object_files()
        if older_than_days is not None:
            import time

            cutoff = time.time() - float(older_than_days) * 86400.0
            files = [p for p in files if _mtime(p) < cutoff]
        for p in files:
            self._discard(p)
        for d in sorted(self._objects_dir().glob("*")):
            try:
                d.rmdir()
            except OSError:
                pass
        return len(files)

    def describe(self) -> str:
        """Multi-line human-readable cache report (``repro cache stats``)."""
        n = self.count()
        size = self.size_bytes()
        return (
            f"cache directory : {self.root}\n"
            f"cached results  : {n}\n"
            f"total size      : {size / 1024:.1f} KiB\n"
            f"this session    : {self.stats.summary()}"
        )

    def stats_dict(self) -> dict:
        """JSON-ready cache report (``repro cache stats --json``, the
        service ``/status`` endpoint, worker ``stats`` ops)."""
        return {
            "root": str(self.root),
            "count": self.count(),
            "size_bytes": self.size_bytes(),
            "session": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "puts": self.stats.puts,
                "invalidated": self.stats.invalidated,
                "hit_rate": round(self.stats.hit_rate, 4),
            },
        }
