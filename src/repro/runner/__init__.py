"""Parallel experiment orchestration with a content-addressed result
cache.

Every simulation in the reproduction is deterministic in its inputs --
``(program, scale, seed, machine, lock scheme, consistency model)`` --
so a run is worth exactly one execution, ever.  This package turns that
observation into infrastructure:

* :class:`JobSpec` canonically describes one simulation and hashes to a
  stable cache key (:mod:`repro.runner.spec`);
* :mod:`repro.runner.serialize` moves :class:`~repro.machine.metrics.
  RunResult`s across process boundaries and onto disk as lossless JSON;
* :class:`ResultCache` is a content-addressed on-disk store with
  hit/miss/invalidation accounting (:mod:`repro.runner.cache`);
* :func:`run_jobs` fans a batch of specs across worker processes with
  per-job timeout, bounded retry, and structured :class:`JobFailure`
  capture (:mod:`repro.runner.executor`);
* each batch appends a JSONL manifest enabling ``resume`` of partially
  completed grids (:mod:`repro.runner.manifest`).

The suite runner (:func:`repro.core.experiment.run_suite`), the sweep
API (:mod:`repro.core.sweep`) and the CLI (``repro suite --jobs N``,
``repro batch``, ``repro cache``) are all built on this layer; serial
execution is just the ``jobs=1`` degenerate case, so the paper tables
stay byte-identical however they are produced.
"""

from .cache import CacheStats, ResultCache, default_cache_dir
from .executor import BatchResult, BatchStats, JobFailure, run_jobs
from .manifest import append_record, load_completed, load_records
from .serialize import (
    machine_from_dict,
    machine_to_dict,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from .spec import CACHE_FORMAT, JobSpec, traceset_digest

__all__ = [
    "BatchResult",
    "BatchStats",
    "CACHE_FORMAT",
    "CacheStats",
    "JobFailure",
    "JobSpec",
    "ResultCache",
    "append_record",
    "default_cache_dir",
    "load_completed",
    "load_records",
    "machine_from_dict",
    "machine_to_dict",
    "result_from_dict",
    "result_from_json",
    "result_to_dict",
    "result_to_json",
    "run_jobs",
    "traceset_digest",
]
