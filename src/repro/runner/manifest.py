"""Append-only JSONL batch manifest.

Every job the executor finishes -- successfully, from cache, restored
on resume, or failed -- appends one self-contained JSON line::

    {"key": ..., "label": ..., "status": "ok" | "cached" | "resumed"
        | "failed",
     "attempts": ..., "elapsed_s": ..., "spec": {...},
     "result": {...}    # present on "ok" lines
     "error": {...}}    # present on "failed" lines

Because ``"ok"`` lines embed the full serialized result, a manifest is
sufficient on its own to resume a partially completed grid: a later
invocation with ``resume=True`` restores every completed job from the
manifest and re-runs only the pending and failed ones, even with the
object cache disabled.  Truncated or corrupt lines (e.g. from a run
killed mid-write) are skipped, never fatal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["append_record", "load_completed", "load_records"]


def append_record(path: str | os.PathLike, record: dict) -> None:
    """Append one manifest line, creating parent directories as needed."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def load_records(path: str | os.PathLike) -> list[dict]:
    """All decodable manifest records, in file order."""
    p = Path(path)
    if not p.exists():
        return []
    records = []
    # binary + per-line decode: a crash can tear a line mid-character
    # (or splice raw garbage), which must skip that line, not abort the
    # whole load with UnicodeDecodeError
    with p.open("rb") as fh:
        for raw in fh:
            try:
                line = raw.decode().strip()
            except UnicodeDecodeError:
                continue
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from an interrupted run
            if isinstance(rec, dict):
                records.append(rec)
    return records


def load_completed(path: str | os.PathLike) -> dict[str, dict]:
    """Map cache-key -> serialized result for every completed job.

    Latest ``"ok"`` line per key wins; other statuses are ignored (a
    ``"failed"`` line never shadows an earlier success of a *different*
    attempt batch -- completed work stays completed).
    """
    completed: dict[str, dict] = {}
    for rec in load_records(path):
        if rec.get("status") == "ok" and "result" in rec and "key" in rec:
            completed[rec["key"]] = rec["result"]
    return completed
