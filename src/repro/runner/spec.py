"""Canonical description of one simulation job.

A :class:`JobSpec` pins down everything a simulation's outcome depends
on -- program, scale, seed, machine configuration, lock scheme (and its
kwargs), consistency model -- and nothing else.  Because every run is
deterministic in those inputs, a spec's :meth:`~JobSpec.cache_key` is a
true content address for its result: the same key always denotes the
same numbers, on any machine, in any process.

Two ways to name the trace:

* **by provenance** (the normal case): ``program``/``scale``/``seed``
  (plus an optional ``n_procs`` override) identify a regenerable
  :class:`~repro.trace.records.TraceSet`.  A pre-generated traceset may
  ride along in ``traceset`` so executors need not regenerate it, but it
  MUST be the canonical trace for those parameters -- it does not enter
  the cache key.
* **by content** (custom traces, e.g. :func:`repro.core.sweep.
  sweep_machine` families): leave ``program`` empty and attach the
  traceset; its SHA-256 content digest becomes part of the key instead.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from ..consistency import get_model
from ..machine.config import MachineConfig
from ..machine.metrics import RunResult
from ..machine.system import System
from ..sync import get_lock_manager
from ..trace.records import TraceSet
from .serialize import machine_from_dict, machine_to_dict

__all__ = ["CACHE_FORMAT", "JobSpec", "traceset_digest"]

#: bump to invalidate every previously cached result (e.g. after a
#: simulator change that alters the numbers for identical specs)
CACHE_FORMAT = 1


def traceset_digest(ts: TraceSet) -> str:
    """SHA-256 content digest of a traceset (records + identity)."""
    cached = getattr(ts, "_runner_digest", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(ts.program.encode())
    h.update(str(ts.n_procs).encode())
    for t in ts:
        h.update(str(t.proc).encode())
        h.update(str(t.records.dtype).encode())
        h.update(t.records.tobytes())
    digest = h.hexdigest()
    try:
        ts._runner_digest = digest
    except AttributeError:  # pragma: no cover - slotted traceset variants
        pass
    return digest


@dataclass(frozen=True)
class JobSpec:
    """One simulation, canonically described.

    ``lock_kwargs`` may be passed as a dict; it is normalized to a
    sorted item tuple so specs stay hashable and their keys canonical.
    """

    program: str = ""
    scale: float = 1.0
    seed: int = 1991
    lock_scheme: str = "queuing"
    lock_kwargs: tuple = ()
    consistency: str = "sc"
    machine: MachineConfig | None = None
    n_procs: int | None = None
    max_events: int | None = None
    #: content digest of an attached non-regenerable traceset (filled
    #: automatically when ``program`` is empty)
    trace_digest: str = ""
    #: optional pre-generated trace; never serialized, not part of the
    #: cache key unless ``program`` is empty (see module docstring)
    traceset: TraceSet | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if isinstance(self.lock_kwargs, dict):
            object.__setattr__(
                self, "lock_kwargs", tuple(sorted(self.lock_kwargs.items()))
            )
        else:
            object.__setattr__(self, "lock_kwargs", tuple(self.lock_kwargs))
        if not self.program:
            if self.traceset is None and not self.trace_digest:
                raise ValueError("need either a program name or a traceset")
            if self.traceset is not None and not self.trace_digest:
                object.__setattr__(
                    self, "trace_digest", traceset_digest(self.traceset)
                )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical JSON-ready description (the cache-key preimage)."""
        return {
            "format": CACHE_FORMAT,
            "program": self.program,
            "scale": self.scale,
            "seed": self.seed,
            "lock_scheme": self.lock_scheme,
            "lock_kwargs": [list(kv) for kv in self.lock_kwargs],
            "consistency": self.consistency,
            "machine": machine_to_dict(self.machine),
            "n_procs": self.n_procs,
            "max_events": self.max_events,
            "trace_digest": self.trace_digest,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        spec = cls(
            program=d.get("program", ""),
            scale=d.get("scale", 1.0),
            seed=d.get("seed", 1991),
            lock_scheme=d.get("lock_scheme", "queuing"),
            lock_kwargs=tuple(tuple(kv) for kv in d.get("lock_kwargs", ())),
            consistency=d.get("consistency", "sc"),
            machine=machine_from_dict(d.get("machine")),
            n_procs=d.get("n_procs"),
            max_events=d.get("max_events"),
            trace_digest=d.get("trace_digest", ""),
        )
        return spec

    def cache_key(self) -> str:
        """Stable content address for this job's result."""
        canon = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable job name for progress/manifest lines."""
        name = self.program or f"trace:{self.trace_digest[:8]}"
        return f"{name}/{self.lock_scheme}/{self.consistency}"

    def with_traceset(self, traceset: TraceSet) -> "JobSpec":
        return replace(self, traceset=traceset)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def resolve_traceset(self) -> TraceSet:
        if self.traceset is not None:
            return self.traceset
        if not self.program:
            raise ValueError(
                f"spec {self.label()} names a trace by content digest but no "
                "traceset is attached; content-addressed jobs cannot be "
                "regenerated from the spec alone"
            )
        from ..workloads.registry import generate_trace

        return generate_trace(
            self.program, scale=self.scale, seed=self.seed, n_procs=self.n_procs
        )

    def run(self, traceset: TraceSet | None = None) -> RunResult:
        """Execute the simulation this spec describes."""
        ts = traceset if traceset is not None else self.resolve_traceset()
        config = self.machine or MachineConfig(n_procs=ts.n_procs)
        system = System(
            ts,
            config,
            get_lock_manager(self.lock_scheme, **dict(self.lock_kwargs)),
            get_model(self.consistency),
            max_events=self.max_events,
        )
        return system.run()
