"""Batch executor: fan a list of :class:`JobSpec`s across worker
processes with caching, per-job timeout, bounded retry, and structured
failure capture.

This module owns the *worker side* (:func:`_execute`, the in-worker
timeout timer, the trace memo) and the batch datatypes; the coordinator
is the sweep-service scheduler -- :func:`run_jobs` is a thin synchronous
client of :func:`repro.service.scheduler.run_batch`, which adds
in-flight deduplication, exponential backoff, and per-job deadline
budgets on top of the semantics documented here.

Design points:

* ``jobs=1`` is the degenerate serial path: specs run in order, in
  process, with no executor machinery between the spec and the
  simulator -- existing callers (and the byte-identical table outputs)
  ride on this path unless they opt into parallelism.
* Workers return results as JSON dictionaries, never live objects, so
  every parallel result crosses the process boundary through the same
  serialization layer the cache uses.
* A failing or timing-out job yields a :class:`JobFailure` in the batch
  outcome -- it never aborts the remaining jobs.  Timeouts are enforced
  *inside* the worker with an interval timer, so a timed-out worker
  survives to take its next job instead of poisoning the pool.
* Every outcome is appended to a JSONL manifest (see
  :mod:`repro.runner.manifest`); ``resume=True`` restores completed
  jobs from a previous manifest and runs only the rest.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from ..machine.metrics import RunResult
from .cache import ResultCache
from .serialize import result_to_dict
from .spec import JobSpec

__all__ = ["JobFailure", "BatchStats", "BatchResult", "run_jobs"]


@dataclass(frozen=True)
class JobFailure:
    """Structured record of one job that could not produce a result."""

    key: str
    label: str
    kind: str  # "timeout" | "error"
    message: str
    attempts: int
    spec: dict = field(default_factory=dict)
    traceback: str = ""

    def __str__(self) -> str:
        # the key prefix makes a failure line grep-able against manifest
        # records and cache paths (same content address everywhere)
        tag = f" [{self.key[:12]}]" if self.key else ""
        return (
            f"{self.label}{tag}: {self.kind} after "
            f"{self.attempts} attempt(s): {self.message}"
        )


@dataclass
class BatchStats:
    """What actually happened while running one batch."""

    total: int = 0
    executed: int = 0  # simulations that ran to completion
    cached: int = 0  # restored from the result cache
    resumed: int = 0  # restored from a previous batch manifest
    failed: int = 0
    retries: int = 0

    def summary(self) -> str:
        return (
            f"{self.total} jobs: {self.executed} executed, "
            f"{self.cached} from cache, {self.resumed} resumed, "
            f"{self.failed} failed ({self.retries} retries)"
        )


@dataclass
class BatchResult:
    """Outcomes of one batch, in spec order."""

    specs: list
    outcomes: list  # RunResult | JobFailure, aligned with specs
    stats: BatchStats
    manifest_path: str | None = None

    def results(self) -> list:
        return [o for o in self.outcomes if isinstance(o, RunResult)]

    def failures(self) -> list:
        return [o for o in self.outcomes if isinstance(o, JobFailure)]

    def ok(self) -> bool:
        return not self.failures()

    def raise_on_failure(self) -> "BatchResult":
        fails = self.failures()
        if fails:
            lines = "\n  ".join(str(f) for f in fails)
            raise RuntimeError(f"{len(fails)} job(s) failed:\n  {lines}")
        return self


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _JobTimeout(Exception):
    pass


def _on_alarm(signum, frame):  # pragma: no cover - fires asynchronously
    raise _JobTimeout()


def _arm_timer(timeout: float | None):
    """Install a real-time interval timer; returns a disarm callback."""
    if (
        not timeout
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return lambda: None
    old_handler = signal.signal(signal.SIGALRM, _on_alarm)
    # Periodic, not one-shot: a raise from the handler can land inside an
    # unrelated ``except`` block (lazy imports are the usual victim) and be
    # swallowed, so keep re-firing until one delivery propagates.
    signal.setitimer(signal.ITIMER_REAL, timeout, min(timeout, 1.0))

    def disarm() -> None:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)

    return disarm


#: per-worker memo of generated traces, so the several configurations of
#: one program landing on the same worker share a single generation
_TRACE_MEMO: dict[tuple, object] = {}
_TRACE_MEMO_MAX = 8


def _memoized_traceset(spec: JobSpec, trace_cache=None):
    if spec.traceset is not None or not spec.program:
        return spec.traceset
    key = (spec.program, spec.scale, spec.seed, spec.n_procs)
    ts = _TRACE_MEMO.get(key)
    if ts is None:
        tcache = None
        if trace_cache is not None:
            from ..trace.cache import TraceCache

            tcache = (
                trace_cache
                if isinstance(trace_cache, TraceCache)
                else TraceCache(trace_cache)
            )
            ts = tcache.get(spec.program, spec.scale, spec.seed, spec.n_procs)
        if ts is None:
            ts = spec.resolve_traceset()
            if tcache is not None:
                tcache.put(ts, scale=spec.scale, seed=spec.seed, n_procs=spec.n_procs)
        if len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
            _TRACE_MEMO.clear()
        _TRACE_MEMO[key] = ts
    return ts


def _execute(spec: JobSpec, timeout: float | None, trace_cache=None) -> dict:
    """Run one job; always returns a JSON-ready payload, never raises.

    ``trace_cache`` (a :class:`repro.trace.cache.TraceCache` in-process,
    or its root directory as a string when crossing into a worker) lets
    the job memory-map a previously generated trace instead of
    regenerating it.
    """
    start = time.perf_counter()
    disarm = _arm_timer(timeout)
    try:
        result = spec.run(traceset=_memoized_traceset(spec, trace_cache))
        disarm()  # idempotent; a late re-fire must not escape _execute
        payload = {"ok": True, "result": result_to_dict(result)}
    except _JobTimeout:
        disarm()
        payload = {
            "ok": False,
            "kind": "timeout",
            "message": f"job exceeded {timeout:g}s",
            "traceback": "",
        }
    except BaseException as exc:  # noqa: BLE001 - failures must be captured
        disarm()
        payload = {
            "ok": False,
            "kind": "error",
            "message": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    finally:
        disarm()
    payload["elapsed_s"] = round(time.perf_counter() - start, 6)
    return payload


# ----------------------------------------------------------------------
# Coordinator side: a thin client of the service scheduler
# ----------------------------------------------------------------------
def run_jobs(
    specs,
    jobs: int = 1,
    cache: ResultCache | str | Path | None = None,
    timeout: float | None = None,
    retries: int = 0,
    manifest_path: str | Path | None = None,
    resume: bool = False,
    trace_cache=None,
    backoff: float = 0.0,
    deadline: float | None = None,
) -> BatchResult:
    """Run a list of :class:`JobSpec`s and return their outcomes in order.

    The batch is served by the sweep-service scheduler
    (:func:`repro.service.scheduler.run_batch`): cache hits are answered
    from the content-addressed store, duplicate specs within the batch
    collapse onto one in-flight job, and misses run inline (``jobs=1``,
    the byte-identical serial path) or on a local process pool.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` runs serially in this process.
    cache:
        A :class:`ResultCache`, a cache directory path, or ``None`` to
        disable caching.  Hits skip simulation entirely.
    timeout:
        Per-job wall-clock limit in seconds (enforced in the worker; a
        timed-out job becomes a ``"timeout"`` :class:`JobFailure`).
    retries:
        Extra attempts granted to a failing job before it is recorded
        as a :class:`JobFailure`.
    manifest_path:
        JSONL file receiving one record per outcome.
    resume:
        Restore jobs already completed in ``manifest_path`` from a
        previous invocation instead of re-running them.
    trace_cache:
        A :class:`repro.trace.cache.TraceCache`, a directory, ``True``
        (default directory), ``False`` (off), or ``None`` (defer to
        ``$REPRO_TRACE_CACHE``).  Provenance-named jobs then load their
        trace from the cache (memory-mapped, so parallel workers share
        pages) instead of regenerating it per worker.
    backoff:
        Base of the exponential backoff between retry attempts; ``0``
        (default) retries immediately.
    deadline:
        Per-job wall-clock budget across all attempts; once exhausted
        the job fails with kind ``"deadline"`` instead of retrying.
    """
    # imported lazily: repro.service imports this module for _execute
    # and the batch dataclasses, so the top level must stay acyclic
    from ..service.scheduler import run_batch

    return run_batch(
        specs,
        jobs=jobs,
        cache=cache,
        timeout=timeout,
        retries=retries,
        manifest_path=manifest_path,
        resume=resume,
        trace_cache=trace_cache,
        backoff=backoff,
        deadline=deadline,
    )
