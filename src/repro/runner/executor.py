"""Batch executor: fan a list of :class:`JobSpec`s across worker
processes with caching, per-job timeout, bounded retry, and structured
failure capture.

Design points:

* ``jobs=1`` is the degenerate serial path: specs run in order, in
  process, with no executor machinery between the spec and the
  simulator -- existing callers (and the byte-identical table outputs)
  ride on this path unless they opt into parallelism.
* Workers return results as JSON dictionaries, never live objects, so
  every parallel result crosses the process boundary through the same
  serialization layer the cache uses.
* A failing or timing-out job yields a :class:`JobFailure` in the batch
  outcome -- it never aborts the remaining jobs.  Timeouts are enforced
  *inside* the worker with an interval timer, so a timed-out worker
  survives to take its next job instead of poisoning the pool.
* Every outcome is appended to a JSONL manifest (see
  :mod:`repro.runner.manifest`); ``resume=True`` restores completed
  jobs from a previous manifest and runs only the rest.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..machine.metrics import RunResult
from .cache import ResultCache
from .manifest import append_record, load_completed
from .serialize import result_from_dict, result_to_dict
from .spec import JobSpec

__all__ = ["JobFailure", "BatchStats", "BatchResult", "run_jobs"]


@dataclass(frozen=True)
class JobFailure:
    """Structured record of one job that could not produce a result."""

    key: str
    label: str
    kind: str  # "timeout" | "error"
    message: str
    attempts: int
    spec: dict = field(default_factory=dict)
    traceback: str = ""

    def __str__(self) -> str:
        return f"{self.label}: {self.kind} after {self.attempts} attempt(s): {self.message}"


@dataclass
class BatchStats:
    """What actually happened while running one batch."""

    total: int = 0
    executed: int = 0  # simulations that ran to completion
    cached: int = 0  # restored from the result cache
    resumed: int = 0  # restored from a previous batch manifest
    failed: int = 0
    retries: int = 0

    def summary(self) -> str:
        return (
            f"{self.total} jobs: {self.executed} executed, "
            f"{self.cached} from cache, {self.resumed} resumed, "
            f"{self.failed} failed ({self.retries} retries)"
        )


@dataclass
class BatchResult:
    """Outcomes of one batch, in spec order."""

    specs: list
    outcomes: list  # RunResult | JobFailure, aligned with specs
    stats: BatchStats
    manifest_path: str | None = None

    def results(self) -> list:
        return [o for o in self.outcomes if isinstance(o, RunResult)]

    def failures(self) -> list:
        return [o for o in self.outcomes if isinstance(o, JobFailure)]

    def ok(self) -> bool:
        return not self.failures()

    def raise_on_failure(self) -> "BatchResult":
        fails = self.failures()
        if fails:
            lines = "\n  ".join(str(f) for f in fails)
            raise RuntimeError(f"{len(fails)} job(s) failed:\n  {lines}")
        return self


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _JobTimeout(Exception):
    pass


def _on_alarm(signum, frame):  # pragma: no cover - fires asynchronously
    raise _JobTimeout()


def _arm_timer(timeout: float | None):
    """Install a real-time interval timer; returns a disarm callback."""
    if (
        not timeout
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return lambda: None
    old_handler = signal.signal(signal.SIGALRM, _on_alarm)
    # Periodic, not one-shot: a raise from the handler can land inside an
    # unrelated ``except`` block (lazy imports are the usual victim) and be
    # swallowed, so keep re-firing until one delivery propagates.
    signal.setitimer(signal.ITIMER_REAL, timeout, min(timeout, 1.0))

    def disarm() -> None:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)

    return disarm


#: per-worker memo of generated traces, so the several configurations of
#: one program landing on the same worker share a single generation
_TRACE_MEMO: dict[tuple, object] = {}
_TRACE_MEMO_MAX = 8


def _memoized_traceset(spec: JobSpec, trace_cache=None):
    if spec.traceset is not None or not spec.program:
        return spec.traceset
    key = (spec.program, spec.scale, spec.seed, spec.n_procs)
    ts = _TRACE_MEMO.get(key)
    if ts is None:
        tcache = None
        if trace_cache is not None:
            from ..trace.cache import TraceCache

            tcache = (
                trace_cache
                if isinstance(trace_cache, TraceCache)
                else TraceCache(trace_cache)
            )
            ts = tcache.get(spec.program, spec.scale, spec.seed, spec.n_procs)
        if ts is None:
            ts = spec.resolve_traceset()
            if tcache is not None:
                tcache.put(ts, scale=spec.scale, seed=spec.seed, n_procs=spec.n_procs)
        if len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
            _TRACE_MEMO.clear()
        _TRACE_MEMO[key] = ts
    return ts


def _execute(spec: JobSpec, timeout: float | None, trace_cache=None) -> dict:
    """Run one job; always returns a JSON-ready payload, never raises.

    ``trace_cache`` (a :class:`repro.trace.cache.TraceCache` in-process,
    or its root directory as a string when crossing into a worker) lets
    the job memory-map a previously generated trace instead of
    regenerating it.
    """
    start = time.perf_counter()
    disarm = _arm_timer(timeout)
    try:
        result = spec.run(traceset=_memoized_traceset(spec, trace_cache))
        disarm()  # idempotent; a late re-fire must not escape _execute
        payload = {"ok": True, "result": result_to_dict(result)}
    except _JobTimeout:
        disarm()
        payload = {
            "ok": False,
            "kind": "timeout",
            "message": f"job exceeded {timeout:g}s",
            "traceback": "",
        }
    except BaseException as exc:  # noqa: BLE001 - failures must be captured
        disarm()
        payload = {
            "ok": False,
            "kind": "error",
            "message": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    finally:
        disarm()
    payload["elapsed_s"] = round(time.perf_counter() - start, 6)
    return payload


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
def _normalize_cache(cache) -> ResultCache | None:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


class _Batch:
    """Mutable coordinator state for one run_jobs invocation."""

    def __init__(self, specs, cache, manifest_path):
        self.specs = list(specs)
        self.keys = [s.cache_key() for s in self.specs]
        self.cache = cache
        self.manifest_path = str(manifest_path) if manifest_path else None
        self.outcomes: list = [None] * len(self.specs)
        self.stats = BatchStats(total=len(self.specs))

    def _record(self, idx: int, status: str, **extra) -> None:
        if self.manifest_path is None:
            return
        rec = {
            "key": self.keys[idx],
            "label": self.specs[idx].label(),
            "status": status,
            "spec": self.specs[idx].to_dict(),
        }
        rec.update(extra)
        append_record(self.manifest_path, rec)

    def restore(self, idx: int, result_dict: dict, how: str) -> None:
        self.outcomes[idx] = result_from_dict(result_dict)
        if how == "resumed":
            self.stats.resumed += 1
        self._record(idx, how, attempts=0, elapsed_s=0.0)

    def restore_cached(self, idx: int, result: RunResult) -> None:
        self.outcomes[idx] = result
        self.stats.cached += 1
        self._record(idx, "cached", attempts=0, elapsed_s=0.0)

    def finish_ok(self, idx: int, payload: dict, attempts: int) -> None:
        result = result_from_dict(payload["result"])
        self.outcomes[idx] = result
        self.stats.executed += 1
        if self.cache is not None:
            self.cache.put(self.specs[idx], result)
        self._record(
            idx,
            "ok",
            attempts=attempts,
            elapsed_s=payload.get("elapsed_s", 0.0),
            result=payload["result"],
        )

    def finish_failed(self, idx: int, payload: dict, attempts: int) -> None:
        failure = JobFailure(
            key=self.keys[idx],
            label=self.specs[idx].label(),
            kind=payload.get("kind", "error"),
            message=payload.get("message", ""),
            attempts=attempts,
            spec=self.specs[idx].to_dict(),
            traceback=payload.get("traceback", ""),
        )
        self.outcomes[idx] = failure
        self.stats.failed += 1
        self._record(
            idx,
            "failed",
            attempts=attempts,
            elapsed_s=payload.get("elapsed_s", 0.0),
            error={
                "kind": failure.kind,
                "message": failure.message,
                "traceback": failure.traceback,
            },
        )


def run_jobs(
    specs,
    jobs: int = 1,
    cache: ResultCache | str | Path | None = None,
    timeout: float | None = None,
    retries: int = 0,
    manifest_path: str | Path | None = None,
    resume: bool = False,
    trace_cache=None,
) -> BatchResult:
    """Run a list of :class:`JobSpec`s and return their outcomes in order.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` runs serially in this process.
    cache:
        A :class:`ResultCache`, a cache directory path, or ``None`` to
        disable caching.  Hits skip simulation entirely.
    timeout:
        Per-job wall-clock limit in seconds (enforced in the worker; a
        timed-out job becomes a ``"timeout"`` :class:`JobFailure`).
    retries:
        Extra attempts granted to a failing job before it is recorded
        as a :class:`JobFailure`.
    manifest_path:
        JSONL file receiving one record per outcome.
    resume:
        Restore jobs already completed in ``manifest_path`` from a
        previous invocation instead of re-running them.
    trace_cache:
        A :class:`repro.trace.cache.TraceCache`, a directory, ``True``
        (default directory), ``False`` (off), or ``None`` (defer to
        ``$REPRO_TRACE_CACHE``).  Provenance-named jobs then load their
        trace from the cache (memory-mapped, so parallel workers share
        pages) instead of regenerating it per worker.
    """
    from ..trace.cache import resolve_trace_cache

    if resume and manifest_path is None:
        raise ValueError("resume=True requires a manifest_path")
    jobs = max(1, int(jobs))
    tcache = resolve_trace_cache(trace_cache)
    batch = _Batch(specs, _normalize_cache(cache), manifest_path)

    pending = list(range(len(batch.specs)))

    if resume:
        completed = load_completed(manifest_path)
        still = []
        for idx in pending:
            if batch.keys[idx] in completed:
                batch.restore(idx, completed[batch.keys[idx]], "resumed")
            else:
                still.append(idx)
        pending = still

    if batch.cache is not None:
        still = []
        for idx in pending:
            hit = batch.cache.get(batch.specs[idx])
            if hit is not None:
                batch.restore_cached(idx, hit)
            else:
                still.append(idx)
        pending = still

    if pending:
        if jobs == 1:
            _run_serial(batch, pending, timeout, retries, tcache)
        else:
            _run_parallel(batch, pending, jobs, timeout, retries, tcache)

    return BatchResult(
        specs=batch.specs,
        outcomes=batch.outcomes,
        stats=batch.stats,
        manifest_path=batch.manifest_path,
    )


def _run_serial(batch: _Batch, pending, timeout, retries, tcache=None) -> None:
    for idx in pending:
        attempt = 1
        while True:
            payload = _execute(batch.specs[idx], timeout, tcache)
            if payload["ok"]:
                batch.finish_ok(idx, payload, attempt)
                break
            if attempt > retries:
                batch.finish_failed(idx, payload, attempt)
                break
            attempt += 1
            batch.stats.retries += 1


def _run_parallel(batch: _Batch, pending, jobs, timeout, retries, tcache=None) -> None:
    # workers get the cache root (a plain string), not the handle: each
    # worker opens its own handle and memory-maps the shared objects
    tcache_root = str(tcache.root) if tcache is not None else None
    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        in_flight = {}

        def submit(idx: int, attempt: int) -> None:
            spec = batch.specs[idx]
            if spec.program and spec.traceset is not None:
                # don't pickle megabytes of trace into the job queue: a
                # provenance-named trace is cheaper to load from the trace
                # cache or regenerate in the worker (where the memo shares
                # it across configs)
                spec = replace(spec, traceset=None)
            fut = pool.submit(_execute, spec, timeout, tcache_root)
            in_flight[fut] = (idx, attempt)

        for idx in pending:
            submit(idx, 1)

        while in_flight:
            done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
            for fut in done:
                idx, attempt = in_flight.pop(fut)
                try:
                    payload = fut.result()
                except BaseException as exc:  # worker process died
                    payload = {
                        "ok": False,
                        "kind": "error",
                        "message": f"{type(exc).__name__}: {exc}",
                        "traceback": "",
                        "elapsed_s": 0.0,
                    }
                if payload["ok"]:
                    batch.finish_ok(idx, payload, attempt)
                elif attempt <= retries:
                    batch.stats.retries += 1
                    submit(idx, attempt + 1)
                else:
                    batch.finish_failed(idx, payload, attempt)
