"""Spin-phase certification checks.

The spin-phase kernel (:mod:`repro.machine.spinphase`) may collapse a
lock-wait phase only when every blocked processor carries a *certified*
spin signature and no collapsed bounce fires past a waiter's pending
wakeup.  This auditor re-derives every claim **independently** at every
waiter-bearing collapse -- it never calls ``spin_wakeup`` (the port the
kernel trusts), reading the manager's raw timer table and idle
declarations instead, so a corrupted port or detector (see the SPIN
faults in :mod:`repro.audit.faults`) cannot blind it:

``spin-waiter-disjointness``
    The certified waiter list names each processor at most once, names
    no processor that also has a collapsed span, and covers exactly the
    lock-blocked processors: every ``_WAIT_LOCK`` processor certified,
    no RUNNING/DONE processor certified, no processor blocked outside
    ``_WAIT_LOCK`` at all.

``spin-phase-periodicity``
    The phase really is silent-periodic: machine-wide nothing is in
    flight (bus, memory, buffers, queued issues), each certified waiter
    has no access/write-back/drain outstanding, and each certification
    matches the manager's own declarations -- an idle waiter has no
    pending ``_timed_call`` timer and a scheme idle signature, a timed
    waiter's claimed wakeup is exactly the earliest timer the manager
    holds for it, and an OPAQUE waiter is never admitted.

``spin-release-boundary``
    The collapse never fast-forwards through a wakeup: the kernel's
    claimed horizon lies at or before the earliest pending manager
    timer machine-wide, and every span's last collapsed bounce fires
    strictly before that timer (the hand-off itself always replays on
    the per-record path).

Span geometry and the silent-hit replay are the same obligations as a
base kernel collapse, so each span is additionally run through
:meth:`repro.audit.kernel.KernelAuditor._check_span` (reported under
the KERNEL category, as for quiet segments).
"""

from __future__ import annotations

from ..machine.processor import _DONE, _RUNNING, _WAIT_LOCK
from ..sync.base import SPIN_IDLE, SPIN_OPAQUE
from .report import KERNEL, SPIN, Violation

__all__ = ["SpinAuditor"]


class SpinAuditor:
    """Checks every waiter-bearing spin-phase collapse (see module
    docstring)."""

    def __init__(self, parent) -> None:
        self.parent = parent

    # -- the hook (SpinKernel._audit_collapse, pre-mutation) --------------
    def on_collapse(self, system, plan, waiters, horizon, now: int) -> None:
        rep = self.parent.report
        self._check_disjoint(system, plan, waiters, now)
        rep.count(SPIN)
        self._check_periodicity(system, waiters, now)
        rep.count(SPIN, len(waiters))
        self._check_boundary(system, plan, horizon, now)
        rep.count(SPIN)
        # span geometry + silent-hit replay: identical obligations to a
        # quiet-segment collapse
        kc = self.parent.kernel_checks
        batch = system.config.batch_records
        for proc, i0, e, j_dyn in plan:
            kc._check_span(system, proc, i0, e, j_dyn, batch, now)
            rep.count(KERNEL, 2)

    # -- spin-waiter-disjointness ------------------------------------------
    def _check_disjoint(self, system, plan, waiters, now: int) -> None:
        def bad(message, **kw):
            self.parent.violation(
                Violation(SPIN, "spin-waiter-disjointness", message, cycle=now, **kw)
            )

        certified = set()
        for proc, _w in waiters:
            if proc in certified:
                bad(
                    "a processor is certified twice in one phase "
                    "(stale waiter list)",
                    proc=proc,
                )
            certified.add(proc)
        for proc in sorted(certified & {pr for pr, *_ in plan}):
            bad(
                "a certified waiter also has a collapsed span (it would "
                "advance while provably lock-blocked)",
                proc=proc,
            )
        for q in system.procs:
            st = q.state
            if st == _WAIT_LOCK:
                if q.proc not in certified:
                    bad(
                        "a lock-blocked processor was not certified",
                        proc=q.proc,
                    )
            elif st == _RUNNING or st == _DONE:
                if q.proc in certified:
                    bad(
                        "a certified waiter is not lock-blocked",
                        proc=q.proc,
                        observed=st,
                    )
            else:
                bad(
                    "spin collapse while a processor is blocked outside "
                    "the lock wait",
                    proc=q.proc,
                    observed=st,
                )

    # -- spin-phase-periodicity ----------------------------------------------
    def _check_periodicity(self, system, waiters, now: int) -> None:
        def bad(message, **kw):
            self.parent.violation(
                Violation(SPIN, "spin-phase-periodicity", message, cycle=now, **kw)
            )

        if system.bus.busy:
            bad("spin collapse while a bus transaction is in flight")
        pending = system.memory.pending()
        if pending:
            bad(
                "spin collapse while the memory module is active",
                observed=pending,
            )
        for buf in system.buffers:
            for op in buf.entries:
                if not op.cancelled:
                    bad(
                        "spin collapse over a buffered operation",
                        proc=buf.proc,
                        line=op.line,
                    )
        iq = getattr(system, "_issue_q", None)
        if iq is not None:
            for p, q_pending in enumerate(iq):
                if q_pending:
                    bad("spin collapse over a queued issue", proc=p)
        mgr = system.locks
        for proc, w in waiters:
            q = system.procs[proc]
            if q.state == _WAIT_LOCK:
                if q.outstanding:
                    bad(
                        "certified waiter has an outstanding access",
                        proc=proc,
                        observed=q.outstanding,
                    )
                if q.outstanding_wb:
                    bad(
                        "certified waiter has an in-flight write-back",
                        proc=proc,
                        observed=q.outstanding_wb,
                    )
                if q._draining:
                    bad("certified waiter has an active sync drain", proc=proc)
            # re-derive the signature from the manager's raw
            # declarations, never through spin_wakeup
            times = mgr._spin_timers.get(proc)
            if w == SPIN_OPAQUE:
                bad(
                    "an uncertifiable waiter was admitted into a phase",
                    proc=proc,
                )
            elif w == SPIN_IDLE:
                if times:
                    bad(
                        "waiter certified idle while the manager holds "
                        "pending timers for it",
                        proc=proc,
                        observed=sorted(times),
                    )
                elif not mgr._spin_idle(proc):
                    bad(
                        "waiter certified idle without a scheme idle "
                        "signature",
                        proc=proc,
                    )
            else:
                if not times:
                    bad(
                        "waiter certified with a timer the manager does "
                        "not hold",
                        proc=proc,
                        observed=w,
                    )
                elif w != min(times):
                    bad(
                        "certified wakeup is not the waiter's earliest "
                        "pending timer",
                        proc=proc,
                        expected=min(times),
                        observed=w,
                    )

    # -- spin-release-boundary -------------------------------------------------
    def _check_boundary(self, system, plan, horizon, now: int) -> None:
        def bad(message, **kw):
            self.parent.violation(
                Violation(SPIN, "spin-release-boundary", message, cycle=now, **kw)
            )

        earliest = None
        for times in system.locks._spin_timers.values():
            for t in times:
                if earliest is None or t < earliest:
                    earliest = t
        if earliest is None:
            return  # idle-only phase: no wakeup to overrun
        if horizon > earliest:
            bad(
                "claimed collapse horizon lies beyond the earliest "
                "pending manager timer",
                expected=earliest,
                observed=horizon,
            )
        kc = self.parent.kernel_checks
        batch = system.config.batch_records
        for proc, i0, e, _j_dyn in plan:
            q = system.procs[proc]
            ac = kc._tab(system, proc).a_cycles
            last = q.time + int(ac[e - batch]) - int(ac[i0])
            if last >= earliest:
                bad(
                    "a collapsed bounce fires at or after a waiter's "
                    "wakeup",
                    proc=proc,
                    expected=earliest,
                    observed=last,
                )
