"""Runtime invariant auditing for the simulator (a "simulator sanitizer").

The differential harness and the golden fixtures check *outputs*; this
package checks *in-flight protocol state*.  A :class:`SystemAuditor`
attached to a :class:`~repro.machine.system.System` observes every bus
arbitration and grant, every cache install, and every lock acquire /
grant / release, and verifies five invariant families while the
simulation runs:

* :mod:`~repro.audit.coherence` -- MESI legality (one M/E owner, no M
  beside S, snoop/supplier consistency, directory exactness);
* :mod:`~repro.audit.busproto` -- split-transaction bus protocol (no
  overlapping grants, request/data-return pairing, round-robin order
  and fairness);
* :mod:`~repro.audit.locks` -- mutual exclusion, queuing-lock FIFO
  order, LockStats accounting;
* :mod:`~repro.audit.accounting` -- cycle/reference conservation and
  RunResult aggregate consistency;
* :mod:`~repro.audit.kernel` -- segment-kernel collapse legality
  (machine genuinely quiet, spans on bounce boundaries and replay-silent,
  segments disjoint).

Auditing is observation-only: results are byte-identical with it on or
off.  Enable it per run with ``MachineConfig(audit=True)`` (CLI
``--audit``), or process-wide with :func:`set_default` / the
``REPRO_AUDIT`` environment variable (``raise`` or ``1`` to fail at the
first violation, ``collect`` to accumulate into an
:class:`~repro.audit.report.AuditReport`).

:mod:`~repro.audit.faults` injects deliberate protocol corruptions so
the test suite can prove each checker actually fires (no vacuous
sanitizers); see docs/audit.md.
"""

from __future__ import annotations

import os

from .core import SystemAuditor
from .report import (
    ACCOUNTING,
    BUS,
    CATEGORIES,
    COHERENCE,
    KERNEL,
    LOCK,
    SPIN,
    AuditError,
    AuditReport,
    Violation,
)

__all__ = [
    "SystemAuditor",
    "AuditError",
    "AuditReport",
    "Violation",
    "CATEGORIES",
    "COHERENCE",
    "BUS",
    "LOCK",
    "ACCOUNTING",
    "KERNEL",
    "SPIN",
    "set_default",
    "default_mode",
    "maybe_attach",
]

#: process-wide default set by set_default(); None defers to $REPRO_AUDIT
_default: str | None = None


def set_default(mode: str | None) -> None:
    """Set the process-wide default audit mode for new Systems.

    ``"raise"`` or ``"collect"`` audits every subsequently constructed
    :class:`~repro.machine.system.System` (the pytest fixtures use this);
    ``None`` restores opt-in behaviour.
    """
    global _default
    if mode not in (None, "raise", "collect"):
        raise ValueError(f"mode must be None, 'raise' or 'collect', got {mode!r}")
    _default = mode


def default_mode() -> str | None:
    """The audit mode Systems adopt when their config does not ask."""
    if _default is not None:
        return _default
    env = os.environ.get("REPRO_AUDIT", "").strip().lower()
    if env in ("1", "true", "raise"):
        return "raise"
    if env == "collect":
        return "collect"
    return None


def maybe_attach(system, force: bool = False) -> SystemAuditor | None:
    """Attach an auditor to a freshly built system if configured to.

    Called from ``System.__init__``: ``force`` reflects
    ``MachineConfig.audit`` (raise mode), otherwise the process default
    applies.  Returns the auditor, or None when auditing is off.
    """
    mode = "raise" if force else default_mode()
    if mode is None:
        return None
    return SystemAuditor.attach(system, mode)
