"""Conservation invariants over the final accounting (§3's metrics).

Everything here runs once, after the simulation drained and the
:class:`~repro.machine.metrics.RunResult` was collected:

* **per-processor cycle conservation** -- ``work + stall_miss +
  stall_lock + stall_drain + stall_buffer == completion_time``: every
  cycle of a processor's lifetime is attributed to exactly one cause
  (the paper's utilization and stall-cause percentages all divide
  through this identity);
* **run time** -- the reported run time is the completion time of the
  last processor;
* **reference conservation** -- the processors together retired exactly
  the elementary references their traces contain;
* **aggregate consistency** -- the RunResult's cache aggregates equal
  the per-cache counter sums, and its bus/memory fields match the
  grants the bus auditor observed independently (busy cycles == sum of
  holds, op counts equal, memory reads == data returns, memory writes
  == granted write-kind operations).
"""

from __future__ import annotations

import numpy as np

from ..machine.buffers import DATA_RETURN, OP_NAMES, UPDATE, WRITEBACK, WRITETHROUGH
from ..trace.records import IBLOCK, READ, WRITE
from .report import ACCOUNTING, Violation

__all__ = ["AccountingAuditor"]

#: cache-counter fields aggregated into the RunResult
_AGG_FIELDS = (
    "read_hits",
    "read_misses",
    "write_hits",
    "write_misses",
    "ifetch_hits",
    "ifetch_misses",
    "writebacks",
    "c2c_supplied",
    "invalidations_received",
)


class AccountingAuditor:
    def __init__(self, top) -> None:
        self.top = top
        self.n_checks = 0

    def _mismatch(self, check: str, what: str, expected, observed, proc: int = -1):
        self.top.violation(
            Violation(
                ACCOUNTING,
                check,
                f"accounting does not balance: {what}",
                proc=proc,
                expected=expected,
                observed=observed,
            )
        )

    def finalize(self, result) -> None:
        system = self.top.system

        # per-processor cycle conservation
        for m in result.proc_metrics:
            self.n_checks += 1
            attributed = m.work_cycles + m.total_stall
            if attributed != m.completion_time:
                self._mismatch(
                    "cycle-conservation",
                    "work + stalls must equal the processor's lifetime",
                    m.completion_time,
                    attributed,
                    proc=m.proc,
                )
        self.n_checks += 1
        last = max(m.completion_time for m in result.proc_metrics)
        if result.run_time != last:
            self._mismatch(
                "run-time",
                "run time must be the last processor's completion time",
                last,
                result.run_time,
            )

        # reference conservation against the traces themselves
        self.n_checks += 1
        expected_refs = 0
        for p in range(system.traceset.n_procs):
            rec = system.traceset[p].records
            kinds = rec["kind"]
            data = (kinds == READ) | (kinds == WRITE) | (kinds == IBLOCK)
            expected_refs += int(np.sum(rec["arg"][data]))
        got_refs = sum(m.refs_processed for m in result.proc_metrics)
        if got_refs != expected_refs:
            self._mismatch(
                "reference-conservation",
                "references retired must equal references traced",
                expected_refs,
                got_refs,
            )

        # cache aggregates
        for name in _AGG_FIELDS:
            self.n_checks += 1
            total = sum(getattr(c.counters, name) for c in system.caches)
            if getattr(result, name) != total:
                self._mismatch(
                    "cache-aggregates",
                    f"RunResult.{name} vs per-cache counters",
                    total,
                    getattr(result, name),
                )

        # bus and memory totals vs the independently observed grants
        bus_obs = self.top.busproto
        self.n_checks += 3
        if result.bus_busy_cycles != bus_obs.hold_total:
            self._mismatch(
                "bus-busy-cycles",
                "bus busy cycles vs the sum of observed grant holds",
                bus_obs.hold_total,
                result.bus_busy_cycles,
            )
        if result.meta.get("bus_grants") != bus_obs.grants:
            self._mismatch(
                "bus-grants",
                "bus grant count vs observed grants",
                bus_obs.grants,
                result.meta.get("bus_grants"),
            )
        if result.bus_op_counts != bus_obs.op_counts:
            diff = {
                OP_NAMES[k]: (bus_obs.op_counts.get(k, 0), result.bus_op_counts.get(k, 0))
                for k in bus_obs.op_counts.keys() | result.bus_op_counts.keys()
                if bus_obs.op_counts.get(k, 0) != result.bus_op_counts.get(k, 0)
            }
            self._mismatch(
                "bus-op-counts",
                "per-kind bus op counts vs observed grants",
                {k: v[0] for k, v in diff.items()},
                {k: v[1] for k, v in diff.items()},
            )
        self.n_checks += 2
        returns = bus_obs.op_counts.get(DATA_RETURN, 0)
        if result.meta.get("memory_reads") != returns:
            self._mismatch(
                "memory-reads",
                "memory reads serviced vs granted DATA_RETURNs",
                returns,
                result.meta.get("memory_reads"),
            )
        writes = sum(
            bus_obs.op_counts.get(k, 0) for k in (WRITEBACK, WRITETHROUGH, UPDATE)
        )
        if result.meta.get("memory_writes") != writes:
            self._mismatch(
                "memory-writes",
                "memory writes serviced vs granted write-kind operations",
                writes,
                result.meta.get("memory_writes"),
            )
        self.top.report.count(ACCOUNTING, self.n_checks)
