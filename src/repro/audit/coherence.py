"""Coherence invariants of the Illinois (MESI) protocol (§2.2).

Write-invalidate MESI admits exactly these global line states: one
MODIFIED or EXCLUSIVE owner and nobody else, or any number of SHARED
copies.  The auditor checks that in flight:

* **at grant** of any data operation, the touched line's holders (from
  the residency directory) are in a legal combination, and each listed
  holder really has the line in its state dict;
* **supplier consistency** -- when the arbiter decided a line would be
  sourced cache-to-cache, the chosen cache must actually hold the line
  (a snoop response of "present" must match recorded state), and a
  chosen write-back buffer entry must be a live WRITEBACK of that line;
* **after the address phase** of an RFO / write-through / upgrade, no
  other cache may still hold a copy (the invalidation must have reached
  every holder);
* **at install**, an EXCLUSIVE/MODIFIED fill must make the requester the
  sole holder, and a SHARED fill must not coexist with another cache's
  E/M copy;
* **at end of run**, the state dicts and the residency directory must
  agree in both directions, every cache's internal way-array invariants
  must hold (:meth:`~repro.machine.cache.Cache.check_invariants`), and
  the M/E-exclusivity sweep must pass over the final state.

The per-grant checks are O(holders of one line); the full sweeps run
once at finalize.
"""

from __future__ import annotations

from ..machine.buffers import (
    OP_NAMES,
    READ_MISS,
    RFO,
    UPGRADE,
    WRITEBACK,
    WRITETHROUGH,
)
from ..machine.cache import EXCLUSIVE, MODIFIED, STATE_NAMES
from .report import COHERENCE, Violation

__all__ = ["CoherenceAuditor"]

#: operations whose grant touches a data line (lock words live outside
#: the data caches and are audited by the lock auditor)
_DATA_KINDS = frozenset({READ_MISS, RFO, UPGRADE, WRITEBACK, WRITETHROUGH})
#: operations whose address phase must leave the requester the only holder
_INVALIDATING = frozenset({RFO, WRITETHROUGH})


class CoherenceAuditor:
    def __init__(self, top) -> None:
        self.top = top
        self.n_checks = 0

    # -- shared core ----------------------------------------------------
    def check_line(self, line: int, cycle: int = -1) -> None:
        """A legal MESI combination: one E/M owner alone, or only S."""
        system = self.top.system
        holders = system.directory.get(line)
        self.n_checks += 1
        if not holders:
            return
        owner = -1
        for p in holders:
            st = system.caches[p].state.get(line)
            if st is None:
                self.top.violation(
                    Violation(
                        COHERENCE,
                        "holder-stateless",
                        f"directory lists proc {p} as holding the line but "
                        "its cache has no state for it",
                        cycle=cycle,
                        proc=p,
                        line=line,
                        expected="a resident MESI state",
                        observed="INVALID",
                    )
                )
            elif st >= EXCLUSIVE:
                if owner >= 0 or len(holders) > 1:
                    self.top.violation(
                        Violation(
                            COHERENCE,
                            "exclusive-owner",
                            f"proc {p} holds the line {STATE_NAMES[st]} "
                            "while other copies exist",
                            cycle=cycle,
                            proc=p,
                            line=line,
                            expected="sole holder for E/M",
                            observed=f"holders {sorted(holders)}",
                        )
                    )
                owner = p

    # -- grant-time hooks ----------------------------------------------
    def on_grant_pre(self, op, time: int) -> None:
        if op.kind not in _DATA_KINDS:
            return
        self.check_line(op.line, cycle=time)
        supplier = op.supplier
        if supplier is None:
            return
        self.n_checks += 1
        where, p, wb = supplier
        system = self.top.system
        if where == "cache":
            if op.line not in system.caches[p].state:
                self.top.violation(
                    Violation(
                        COHERENCE,
                        "supplier-stateless",
                        f"proc {p} was chosen to supply the line "
                        "cache-to-cache but does not hold it",
                        cycle=time,
                        proc=p,
                        line=op.line,
                        expected="a resident copy in the supplier",
                        observed="INVALID",
                    )
                )
        elif where == "buffer":
            if wb is None or wb.cancelled or wb.kind != WRITEBACK or wb.line != op.line:
                self.top.violation(
                    Violation(
                        COHERENCE,
                        "supplier-buffer",
                        f"proc {p}'s write-back buffer was chosen to supply "
                        "the line but holds no live write-back of it",
                        cycle=time,
                        proc=p,
                        line=op.line,
                        expected="a live buffered WRITEBACK of the line",
                        observed=repr(wb),
                    )
                )

    def on_grant_post(self, op, time: int) -> None:
        kind = op.kind
        if kind in _INVALIDATING or (kind == UPGRADE and not op.converted):
            self.n_checks += 1
            system = self.top.system
            holders = system.directory.get(op.line)
            if holders and any(p != op.proc for p in holders):
                self.top.violation(
                    Violation(
                        COHERENCE,
                        "stale-copy-after-invalidate",
                        f"{OP_NAMES[kind]}'s address phase left other "
                        "cached copies alive",
                        cycle=time,
                        proc=op.proc,
                        line=op.line,
                        expected=f"holders ⊆ {{{op.proc}}}",
                        observed=f"holders {sorted(holders)}",
                    )
                )

    # -- install hook (called by Cache.install) -------------------------
    def on_install(self, proc: int, line: int, state: int) -> None:
        self.n_checks += 1
        holders = self.top.system.directory.get(line) or []
        if state >= EXCLUSIVE:
            if holders != [proc]:
                self.top.violation(
                    Violation(
                        COHERENCE,
                        "install-owner",
                        f"line installed {STATE_NAMES[state]} while other "
                        "caches still hold copies",
                        proc=proc,
                        line=line,
                        expected=f"holders == [{proc}]",
                        observed=f"holders {sorted(holders)}",
                    )
                )
            return
        system = self.top.system
        for p in holders:
            if p != proc and system.caches[p].state.get(line, 0) >= EXCLUSIVE:
                self.top.violation(
                    Violation(
                        COHERENCE,
                        "shared-beside-owner",
                        "line installed SHARED while another cache holds "
                        f"it {STATE_NAMES[system.caches[p].state[line]]}",
                        proc=proc,
                        line=line,
                        expected=f"no E/M copy outside proc {proc}",
                        observed=f"proc {p} owns the line",
                    )
                )

    # -- end of run -----------------------------------------------------
    def finalize(self) -> None:
        system = self.top.system
        directory = system.directory
        for p, cache in enumerate(system.caches):
            self.n_checks += 1
            try:
                cache.check_invariants()
            except AssertionError as exc:
                self.top.violation(
                    Violation(
                        COHERENCE,
                        "cache-internal",
                        f"cache {p} internal invariants broken: {exc}",
                        proc=p,
                    )
                )
            for line in cache.state:
                holders = directory.get(line)
                if holders is None or p not in holders:
                    self.top.violation(
                        Violation(
                            COHERENCE,
                            "directory-missing-holder",
                            "cache holds a line the residency directory "
                            "does not credit to it",
                            proc=p,
                            line=line,
                            expected=f"proc {p} listed in the directory",
                            observed=f"holders {sorted(holders or ())}",
                        )
                    )
        for line in directory:
            self.check_line(line)
        self.top.report.count(COHERENCE, self.n_checks)
