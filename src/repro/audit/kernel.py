"""Segment-kernel legality checks.

The columnar segment kernel (:mod:`repro.machine.kernel`) may only
collapse interpreter bounces that are provably silent while the whole
machine is quiet.  This auditor re-derives both claims **independently**
at every collapse -- it shares no code path with the kernel's own
detector, so a corrupted detector (see the KERNEL faults in
:mod:`repro.audit.faults`) cannot blind it:

``segment-quiet``
    Its own machine scan: no bus transaction, memory operation, live
    buffer entry, queued issue, or processor with an access, write-back
    or drain in flight; every processor RUNNING or DONE.

``segment-boundary``
    Each collapsed span starts at the processor's cursor, ends on a
    whole-bounce (``batch_records``) boundary within the analyzed run,
    and -- replayed record by record against the *current* cache state
    with the static window code -- consists exclusively of silent hits
    (resident lines, >= EXCLUSIVE for writes).  The replay probes only
    (never touches LRU): auditing stays observation-only.

``segment-disjoint``
    Per processor, spans never overlap and never go backwards: each
    collapse begins at or after the previous one ended.
"""

from __future__ import annotations

from ..machine.cache import EXCLUSIVE
from ..machine.processor import _DONE, _RUNNING, _interp_tables
from .report import KERNEL, Violation

__all__ = ["KernelAuditor"]


class KernelAuditor:
    """Checks every segment-kernel collapse (see module docstring)."""

    def __init__(self, parent) -> None:
        self.parent = parent
        self._last_end: dict[int, int] = {}  # proc -> end of last span
        self._tabs: dict[int, object] = {}  # proc -> WindowTables

    def _tab(self, system, proc: int):
        tab = self._tabs.get(proc)
        if tab is None:
            cfg = system.config.cache
            *_cols, tab = _interp_tables(
                system.traceset[proc],
                cfg.offset_bits,
                cfg.write_policy == "writethrough",
                True,
            )
            self._tabs[proc] = tab
        return tab

    # -- the hook (called by SegmentKernel.attempt before any mutation) --
    def on_collapse(self, system, plan, now: int) -> None:
        rep = self.parent.report
        self._check_quiet(system, plan, now)
        rep.count(KERNEL)
        batch = system.config.batch_records
        for proc, i0, e, j_dyn in plan:
            self._check_span(system, proc, i0, e, j_dyn, batch, now)
            rep.count(KERNEL, 2)

    # -- segment-quiet ---------------------------------------------------
    def _check_quiet(self, system, plan, now: int) -> None:
        def bad(message, **kw):
            self.parent.violation(
                Violation(KERNEL, "segment-quiet", message, cycle=now, **kw)
            )

        if system.bus.busy:
            bad("segment collapsed while a bus transaction is in flight")
        pending = system.memory.pending()
        if pending:
            bad(
                "segment collapsed while the memory module is active",
                observed=pending,
            )
        for buf in system.buffers:
            for op in buf.entries:
                if not op.cancelled:
                    bad(
                        "segment collapsed over a buffered operation",
                        proc=buf.proc,
                        line=op.line,
                    )
        iq = getattr(system, "_issue_q", None)
        if iq is not None:
            for p, q_pending in enumerate(iq):
                if q_pending:
                    bad("segment collapsed over a queued issue", proc=p)
        for q in system.procs:
            st = q.state
            if st != _RUNNING and st != _DONE:
                bad(
                    "segment collapsed while a processor is blocked",
                    proc=q.proc,
                    observed=st,
                )
            elif st == _RUNNING:
                if q.outstanding:
                    bad(
                        "segment collapsed over an outstanding access "
                        "(a stale drain obligation)",
                        proc=q.proc,
                        observed=q.outstanding,
                    )
                if q.outstanding_wb:
                    bad(
                        "segment collapsed over an in-flight write-back",
                        proc=q.proc,
                        observed=q.outstanding_wb,
                    )
                if q._draining:
                    bad(
                        "segment collapsed over an active sync drain",
                        proc=q.proc,
                    )

    # -- segment-boundary + segment-disjoint -----------------------------
    def _check_span(
        self, system, proc: int, i0: int, e: int, j_dyn: int, batch: int, now: int
    ) -> None:
        def bad(check, message, **kw):
            self.parent.violation(
                Violation(KERNEL, check, message, cycle=now, proc=proc, **kw)
            )

        q = system.procs[proc]
        n = q._n
        if q.idx != i0:
            bad(
                "segment-boundary",
                "collapsed span does not start at the processor's cursor",
                expected=q.idx,
                observed=i0,
            )
        if not (i0 < e <= n):
            bad(
                "segment-boundary",
                "collapsed span leaves the trace",
                expected=n,
                observed=e,
            )
        if (e - i0) % batch:
            bad(
                "segment-boundary",
                "collapsed span is not a whole number of interpreter "
                "bounces (the resume cadence would diverge)",
                expected=batch,
                observed=e - i0,
            )
        last = self._last_end.get(proc, 0)
        if i0 < last:
            bad(
                "segment-disjoint",
                "collapsed span overlaps a previously retired segment",
                expected=last,
                observed=i0,
            )
        self._last_end[proc] = max(last, e)

        # replay: every collapsed record must be a silent hit *right now*
        # (validity inside a quiet segment is position-independent, so
        # pre-collapse state decides all of them).  Probe-only -- the
        # cache's LRU is never touched.
        code = self._tab(system, proc).code
        sget = system.caches[proc].state.get
        for r in range(i0, min(e, n)):
            v = code[r]
            if v is None:
                bad(
                    "segment-boundary",
                    "collapsed span swallows a record that is not "
                    "window-eligible (a sync record or write-through "
                    "write)",
                    line=-1,
                    observed=r,
                )
                continue
            if type(v) is int:
                if v >= 0:
                    if sget(v) is None:
                        bad(
                            "segment-boundary",
                            "collapsed read of a non-resident line",
                            line=v,
                            observed=r,
                        )
                else:
                    line = ~v
                    st = sget(line)
                    if st is None or st < EXCLUSIVE:
                        bad(
                            "segment-boundary",
                            "collapsed write to a non-writable line",
                            line=line,
                            observed=r,
                        )
            else:
                lo, hi, wr = v
                for line in range(lo, hi + 1):
                    st = sget(line)
                    if st is None or (wr and st < EXCLUSIVE):
                        bad(
                            "segment-boundary",
                            "collapsed multi-line record fails validation",
                            line=line,
                            observed=r,
                        )
                        break
