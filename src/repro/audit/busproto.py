"""Bus-protocol invariants (§2.2: split transactions, round-robin).

Checked at arbitration/grant time via the hooks :class:`~repro.machine.
bus.Bus` calls when an auditor is attached:

* **no overlapping grants** -- a new grant may not start before the
  previous holder's ``time + hold`` release point (one transaction on
  the bus at a time);
* **positive hold** -- every granted operation holds the bus for at
  least one cycle;
* **round-robin scan order** -- within one arbitration, the skipped
  ports and the eventual grantee appear in ascending wrap-around order
  starting after the previous grantee;
* **fairness bound** -- a port with live (non-cancelled) entries is
  scanned (granted or skipped) within ``n_ports + 1`` grants; a longer
  gap means the arbiter is starving it;
* **split-transaction pairing** -- every granted request that reserves a
  memory read (``return_cycles > 0``) is answered by exactly one
  DATA_RETURN, every DATA_RETURN answers exactly one outstanding
  request, and no request is left unanswered at end of run.
"""

from __future__ import annotations

from ..machine.buffers import DATA_RETURN, OP_NAMES
from .report import BUS, Violation

__all__ = ["BusAuditor"]


def _has_live(port) -> bool:
    """Whether a bus port holds any non-cancelled entry.  Runs on every
    port at every grant, so it must not walk the whole buffer: the
    common cases are an empty deque (falsy check) and a live head
    (first iteration); only the rare cancelled-head buffer scans on."""
    entries = getattr(port, "entries", None)
    if entries is None:
        return len(port) > 0
    for e in entries:
        if not e.cancelled:
            return True
    return False


class BusAuditor:
    """Observes every arbitration and grant; see the module docstring."""

    def __init__(self, top) -> None:
        self.top = top  # SystemAuditor
        self.n_checks = 0
        #: end of the current bus tenancy (grant time + hold)
        self._busy_until = 0
        #: ports skipped in the arbitration currently scanning
        self._arb_skips: list[int] = []
        #: _rr captured when that arbitration started
        self._arb_rr = 0
        #: ports granted-or-skipped since the last grant was evaluated
        self._touched: set[int] = set()
        #: port -> grant counter when it was last touched while pending
        self._pending_since: dict[int, int] = {}
        # observed totals (cross-checked against Bus/Memory statistics by
        # the accounting auditor at end of run)
        self.grants = 0
        self.hold_total = 0
        self.op_counts: dict[int, int] = {}
        #: id(op) -> op for requests awaiting their DATA_RETURN
        self._awaiting_return: dict[int, object] = {}

    # -- hooks (called by Bus._grant) -----------------------------------
    def on_arbitrate(self, time: int) -> None:
        self._arb_skips.clear()
        self._arb_rr = self.top.system.bus._rr

    def on_skip(self, idx: int, op, time: int) -> None:
        self._arb_skips.append(idx)
        self._touched.add(idx)

    def on_grant_pre(self, op, time: int, idx: int) -> None:
        top = self.top
        self.n_checks += 2
        if time < self._busy_until:
            top.violation(
                Violation(
                    BUS,
                    "overlapping-grant",
                    f"{OP_NAMES[op.kind]} granted while the bus is held",
                    cycle=time,
                    proc=op.proc,
                    line=op.line,
                    expected=f"grant at or after cycle {self._busy_until}",
                    observed=f"grant at cycle {time}",
                )
            )
        if op.kind == DATA_RETURN:
            orig = op.orig
            if orig is None or id(orig) not in self._awaiting_return:
                top.violation(
                    Violation(
                        BUS,
                        "unmatched-data-return",
                        "DATA_RETURN granted with no outstanding request "
                        "for it (duplicated or fabricated return)",
                        cycle=time,
                        proc=op.proc,
                        line=op.line,
                        expected="a request awaiting its data return",
                        observed="none outstanding" if orig is None else
                        f"request {orig!r} not outstanding",
                    )
                )
            else:
                del self._awaiting_return[id(orig)]

    def on_grant_post(self, op, time: int, hold: int, idx: int) -> None:
        top = self.top
        system = top.system
        n_ports = len(system.bus.ports)
        self.n_checks += 2

        if hold < 1:
            top.violation(
                Violation(
                    BUS,
                    "nonpositive-hold",
                    f"{OP_NAMES[op.kind]} holds the bus for {hold} cycles",
                    cycle=time,
                    proc=op.proc,
                    line=op.line,
                    expected=">= 1",
                    observed=hold,
                )
            )
        self._busy_until = time + hold
        self.grants += 1
        self.hold_total += hold
        self.op_counts[op.kind] = self.op_counts.get(op.kind, 0) + 1
        if op.kind != DATA_RETURN and op.return_cycles > 0:
            self._awaiting_return[id(op)] = op

        # round-robin scan order: skipped ports then the grantee, in
        # ascending wrap-around order from the previous grantee + 1
        rr = self._arb_rr
        prev_key = -1
        for scanned in (*self._arb_skips, idx):
            key = (scanned - rr) % n_ports
            if key < prev_key:
                top.violation(
                    Violation(
                        BUS,
                        "round-robin-order",
                        "arbitration scanned ports out of round-robin order",
                        cycle=time,
                        expected=f"ascending from port {rr}",
                        observed=f"skips {self._arb_skips} then grant to {idx}",
                    )
                )
                break
            prev_key = key

        # fairness: every port with live entries must have been scanned
        # within the last n_ports + 1 grants
        counter = self.grants
        touched = self._touched
        touched.add(idx)
        pending = self._pending_since
        for p_idx, port in enumerate(system.bus.ports):
            if not _has_live(port):
                pending.pop(p_idx, None)
            elif p_idx in touched:
                pending[p_idx] = counter
            else:
                since = pending.setdefault(p_idx, counter)
                if counter - since > n_ports + 1:
                    top.violation(
                        Violation(
                            BUS,
                            "fairness-bound",
                            f"port {p_idx} has waited unscanned through "
                            f"{counter - since} grants",
                            cycle=time,
                            expected=f"scanned within {n_ports + 1} grants",
                            observed=f"{counter - since} grants",
                        )
                    )
                    pending[p_idx] = counter  # do not re-fire every grant
        touched.clear()

    # -- end of run -----------------------------------------------------
    def finalize(self) -> None:
        self.n_checks += 1
        if self._awaiting_return:
            sample = next(iter(self._awaiting_return.values()))
            self.top.violation(
                Violation(
                    BUS,
                    "missing-data-return",
                    f"{len(self._awaiting_return)} split transaction(s) "
                    "never received a DATA_RETURN",
                    proc=sample.proc,
                    line=sample.line,
                    expected="all split transactions answered",
                    observed=f"{len(self._awaiting_return)} unanswered",
                )
            )
        self.top.report.count(BUS, self.n_checks)
