"""Deliberate protocol corruptions for auditor self-tests.

A sanitizer that never fires is indistinguishable from one that checks
nothing, so every auditor family has at least two registered *faults*:
small monkeypatches applied to a freshly built
:class:`~repro.machine.system.System` that corrupt exactly one protocol
obligation.  The mutation-coverage tests (tests/test_audit_faults.py)
run each fault under a raise-mode auditor and assert the corresponding
checker reports it -- with the right category and context.

Faults are designed for ``mode="raise"``: several of them (the bus
faults especially) leave the machine in a state that is only safe
because the auditor aborts the run at the first violation.

Usage::

    system = System(ts, config, manager, model)
    auditor = SystemAuditor.attach(system, mode="raise")
    inject(system, "skip-invalidation")
    with pytest.raises(AuditError) as exc:
        system.run()
    assert exc.value.violation.category == FAULTS["skip-invalidation"].category
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..machine.buffers import DATA_RETURN, BusOp
from ..machine.memory import _WRITE_KINDS
from .report import ACCOUNTING, BUS, COHERENCE, KERNEL, LOCK, SPIN

__all__ = [
    "FaultSpec",
    "FAULTS",
    "KERNEL_FAULTS",
    "LOCK_FAULTS",
    "SPIN_FAULTS",
    "inject",
]


@dataclass(frozen=True)
class FaultSpec:
    """One registered corruption."""

    name: str
    category: str  #: invariant family whose auditor must detect it
    #: check names that may legitimately report this fault (the exact
    #: one depends on which operation first trips over the corruption)
    checks: frozenset
    description: str
    apply: Callable  #: apply(system) -> None; installs the corruption
    #: lock scheme the fault targets; only meaningful for LOCK_FAULTS,
    #: whose corruptions reach into one manager's internals
    scheme: str = "queuing"


def _skip_invalidation(system) -> None:
    """One cache ignores the next invalidation snoop it receives: its
    stale copy survives another processor's RFO/upgrade."""
    victim = system.caches[min(1, len(system.caches) - 1)]
    real = victim.snoop_invalidate
    armed = [True]

    def deaf(line, _real=real):
        if armed:
            armed.clear()
            return (False, False)  # pretend the line was not here
        return _real(line)

    victim.snoop_invalidate = deaf


def _directory_leak(system) -> None:
    """One cache skips its next residency-directory removal: the
    directory keeps listing it for a line it no longer holds."""
    cache = system.caches[0]
    real = cache._dir_remove
    armed = [True]

    def leaky(line, _real=real):
        if armed:
            armed.clear()
            return  # forget to deregister
        _real(line)

    cache._dir_remove = leaky


def _double_grant(system) -> None:
    """The arbiter grants a second operation while the bus is held."""
    bus = system.bus
    real_kick = bus.kick

    def eager(time, _real=real_kick):
        # membership lives in _waiting (reference arbiter) or the
        # _ready bitmask (fast arbiter); either means pending work
        if bus.busy and (bus._waiting or bus._ready):
            bus._grant(time)  # corrupt: ignore the busy flag
        _real(time)

    bus.kick = eager


def _phantom_data_return(system) -> None:
    """Memory emits a duplicate DATA_RETURN for its first read."""
    memory = system.memory
    real = memory._done
    armed = [True]

    def chatty(op, time, _real=real):
        _real(op, time)
        if armed and op.kind not in _WRITE_KINDS:
            armed.clear()
            ghost = BusOp(DATA_RETURN, op.line, op.proc)
            ghost.orig = op
            memory._out.append(ghost)
            if memory.port.ready_cb is not None:
                memory.port.ready_cb()

    memory._done = chatty


def _reorder_queue_waiter(system) -> None:
    """A queuing-lock release pops the back of the queue instead of the
    front (requires a FIFO scheme and >= 2 queued waiters to matter)."""
    mgr = system.locks
    real = mgr.release
    armed = [True]

    def shuffled(proc, lock_id, line, time, done_cb, _real=real):
        st = mgr.locks.get(lock_id)
        if armed and st is not None and len(st.queue) >= 2:
            armed.clear()
            st.queue.reverse()
        _real(proc, lock_id, line, time, done_cb)

    mgr.release = shuffled


def _double_owner(system) -> None:
    """The manager grants a held lock to a second requester."""
    mgr = system.locks
    real = mgr.acquire
    armed = [True]

    def generous(proc, lock_id, line, time, grant_cb, _real=real):
        st = mgr.locks.get(lock_id)
        if armed and st is not None and st.owner is not None and st.owner != proc:
            armed.clear()
            grant_cb(time, True)  # corrupt: lock is already held
            return
        _real(proc, lock_id, line, time, grant_cb)

    mgr.acquire = generous


def _waiter_count_skew(system) -> None:
    """LockStats records one extra waiter at every transfer."""
    stats = system.locks.stats
    real = stats.on_release

    def inflated(hold_cycles, waiters_left, transferred, lock_id=None, _real=real):
        if transferred:
            waiters_left += 1
        _real(hold_cycles, waiters_left, transferred, lock_id)

    stats.on_release = inflated


def _drop_stall_increment(system) -> None:
    """The first processor to finish loses one recorded stall cycle."""
    real = system.on_proc_done
    armed = [True]

    def lossy(proc, t, _real=real):
        if armed:
            armed.clear()
            system.procs[proc].metrics.stall_miss -= 1
        _real(proc, t)

    system.on_proc_done = lossy


def _busy_cycle_skew(system) -> None:
    """The bus busy-cycle counter drifts by one."""
    real = system.on_proc_done
    armed = [True]

    def drifting(proc, t, _real=real):
        if armed:
            armed.clear()
            system.bus.busy_cycles += 1
        _real(proc, t)

    system.on_proc_done = drifting


FAULTS: dict[str, FaultSpec] = {
    spec.name: spec
    for spec in (
        FaultSpec(
            "skip-invalidation",
            COHERENCE,
            frozenset(
                {
                    "stale-copy-after-invalidate",
                    "exclusive-owner",
                    "install-owner",
                    "shared-beside-owner",
                    "holder-stateless",
                }
            ),
            "a cache ignores an invalidation snoop; its stale copy survives",
            _skip_invalidation,
        ),
        FaultSpec(
            "directory-leak",
            COHERENCE,
            frozenset(
                {
                    "holder-stateless",
                    "stale-copy-after-invalidate",
                    "exclusive-owner",
                    "install-owner",
                    "directory-missing-holder",
                }
            ),
            "the residency directory keeps listing a cache that dropped a line",
            _directory_leak,
        ),
        FaultSpec(
            "double-grant",
            BUS,
            frozenset({"overlapping-grant"}),
            "the arbiter grants a second operation while the bus is held",
            _double_grant,
        ),
        FaultSpec(
            "phantom-data-return",
            BUS,
            frozenset({"unmatched-data-return"}),
            "memory emits a duplicate DATA_RETURN for a read",
            _phantom_data_return,
        ),
        FaultSpec(
            "reorder-queue-waiter",
            LOCK,
            frozenset({"fifo-order"}),
            "a queuing-lock release serves the back of the queue first",
            _reorder_queue_waiter,
        ),
        FaultSpec(
            "double-owner",
            LOCK,
            frozenset({"mutual-exclusion"}),
            "the manager grants a held lock to a second requester",
            _double_owner,
        ),
        FaultSpec(
            "waiter-count-skew",
            LOCK,
            frozenset({"stats-waiter-count"}),
            "LockStats records one extra waiter at every transfer",
            _waiter_count_skew,
        ),
        FaultSpec(
            "drop-stall-increment",
            ACCOUNTING,
            frozenset({"cycle-conservation"}),
            "a processor loses one recorded stall cycle",
            _drop_stall_increment,
        ),
        FaultSpec(
            "busy-cycle-skew",
            ACCOUNTING,
            frozenset({"bus-busy-cycles"}),
            "the bus busy-cycle counter drifts by one",
            _busy_cycle_skew,
        ),
    )
}


# -- lock-scheme faults ---------------------------------------------------
#
# A separate registry: these corrupt one *specific* lock manager's
# internals (``spec.scheme`` names it), exercising the queue-node
# hand-off and deadlock diagnostics the lock auditor grew with the
# extension lock zoo.  tests/test_audit_faults.py drives each one on a
# contended traceset under its target scheme.


def _queue_node_skip(system) -> None:
    """An MCS release unlinks the wrong queue node: the head waiter is
    silently dropped and the lock passes to the second in line."""
    mgr = system.locks
    real = mgr.release
    armed = [True]

    def skipping(proc, lock_id, line, time, done_cb, _real=real):
        st = mgr.locks.get(lock_id)
        if armed and st is not None and len(st.queue) >= 2:
            armed.clear()
            st.queue.pop(0)
        _real(proc, lock_id, line, time, done_cb)

    mgr.release = skipping


def _stale_ticket_grant(system) -> None:
    """A ticket release advances now-serving past the next ticket: the
    lock is granted to the holder of a later ticket while the rightful
    next holder keeps spinning."""
    mgr = system.locks
    real = mgr.release
    armed = [True]

    def stale(proc, lock_id, line, time, done_cb, _real=real):
        st = mgr.locks.get(lock_id)
        if armed and st is not None and len(st.queue) >= 2:
            armed.clear()
            st.queue[0], st.queue[1] = st.queue[1], st.queue[0]
        _real(proc, lock_id, line, time, done_cb)

    mgr.release = stale


def _lost_backoff_wakeup(system) -> None:
    """A backed-off retry timer is dropped: the spinner sleeps forever,
    the run deadlocks, and the auditor's deadlock sweep must name the
    stranded waiter."""
    mgr = system.locks
    if not hasattr(mgr, "_schedule_retry"):
        raise RuntimeError(
            "lost-backoff-wakeup needs the exponential-backoff lock scheme"
        )
    real = mgr._schedule_retry
    armed = [True]

    def dropped(st, proc, when, _real=real):
        if armed:
            armed.clear()
            return  # the wakeup is never armed
        _real(st, proc, when)

    mgr._schedule_retry = dropped


LOCK_FAULTS: dict[str, FaultSpec] = {
    spec.name: spec
    for spec in (
        FaultSpec(
            "queue-node-skip",
            LOCK,
            frozenset({"fifo-order", "queue-node-handoff"}),
            "an MCS release drops the head queue node and serves the second",
            _queue_node_skip,
            scheme="mcs",
        ),
        FaultSpec(
            "stale-ticket-grant",
            LOCK,
            frozenset({"fifo-order", "queue-node-handoff"}),
            "a ticket release grants a later ticket than now-serving",
            _stale_ticket_grant,
            scheme="ticket",
        ),
        FaultSpec(
            "lost-backoff-wakeup",
            LOCK,
            frozenset({"waiters-at-exit"}),
            "a backed-off retry is never armed; the waiter sleeps forever",
            _lost_backoff_wakeup,
            scheme="backoff",
        ),
    )
}


# -- segment-kernel faults -----------------------------------------------
#
# A separate registry: these corrupt the columnar segment kernel
# (repro.machine.kernel), so they only arm on a System built with
# ``segment_kernel=True`` on the production Engine, and they only
# *trigger* on workloads with machine-quiet phases -- unlike FAULTS,
# which trigger on any contended run.  tests/test_kernel_faults.py
# drives them on purpose-built tracesets.


def _kernel(system):
    kern = system.kernel
    if kern is None:
        raise RuntimeError(
            "kernel faults need a System with a collapse kernel "
            "(segment_kernel or spin_kernel) on the production Engine"
        )
    return kern


def _kernel_overrun(system) -> None:
    """The analyzer claims one record too many is silently valid: the
    collapsed span swallows the first *invalid* record (a cold line or
    an ineligible sync record)."""
    kern = _kernel(system)
    kern.min_span = 1  # let short crafted runs attempt at all
    real = kern._analyze

    def over(q, tab, i0, j_s, _real=real):
        j = _real(q, tab, i0, j_s)
        # persistent (not one-shot): an overrun only matters once it
        # lands inside a *collapsed* span, which the analyzer cannot
        # know; raise-mode auditing aborts at the first one that does
        return j + 1 if j < q._n else j

    kern._analyze = over


def _kernel_phantom_quiet(system) -> None:
    """The quiet scan always says yes: segments can span live bus
    transactions, memory operations and blocked processors.  Always-on
    (every pre-mutation collapse is either genuinely legal or flagged by
    the auditor before any state changes)."""
    kern = _kernel(system)
    kern.min_span = 1
    kern.backoff = 0  # keep attempting: the scan no longer gates anything
    kern._quiet = lambda: True


def _kernel_stale_drain(system) -> None:
    """Per-processor quiet ignores in-flight obligations (``outstanding``
    accesses, write-backs, sync drains): a weakly-ordered processor with
    an issued-but-not-yet-buffered write looks collapsible."""
    kern = _kernel(system)
    kern.min_span = 1
    kern.backoff = 0
    from ..machine.processor import _DONE, _RUNNING

    kern._proc_quiet = lambda q: q.state in (_RUNNING, _DONE)


KERNEL_FAULTS: dict[str, FaultSpec] = {
    spec.name: spec
    for spec in (
        FaultSpec(
            "kernel-overrun",
            KERNEL,
            frozenset({"segment-boundary"}),
            "the span analyzer overruns the first invalid record by one",
            _kernel_overrun,
        ),
        FaultSpec(
            "kernel-phantom-quiet",
            KERNEL,
            frozenset({"segment-quiet"}),
            "the machine-quiet scan always passes; segments span bus traffic",
            _kernel_phantom_quiet,
        ),
        FaultSpec(
            "kernel-stale-drain",
            KERNEL,
            frozenset({"segment-quiet"}),
            "per-processor quiet ignores outstanding accesses and drains",
            _kernel_stale_drain,
        ),
    )
}


# -- spin-phase faults -----------------------------------------------------
#
# A separate registry: these corrupt the spin-phase collapse kernel's
# *certification* apparatus (repro.machine.spinphase), so they only arm
# on a System built with ``spin_kernel=True`` on the production Engine,
# and they only trigger on workloads with contended lock-wait phases.
# Unlike most protocol faults they need not diverge the simulation --
# the horizon is a conservative legality bound, and a corrupted proof
# can still cover a collapse that happens to commute -- which is exactly
# why the auditor re-derives every claim independently.
# tests/test_spin_faults.py drives them on contended hot-loop tracesets
# under the scheme each one targets.


def _spin(system):
    kern = system.kernel
    if kern is None or not hasattr(kern, "_begin_phase"):
        raise RuntimeError(
            "spin faults need a System with spin_kernel=True on the "
            "production Engine"
        )
    return kern


def _spin_idle_lie(system) -> None:
    """The lock port claims every waiter is idle: pending backoff/retry
    timers are hidden from the kernel, so the collapse horizon is never
    bounded.  The auditor re-derives the signature from the manager's
    raw timer table and must flag the lie at the first waiter-bearing
    collapse."""
    kern = _spin(system)
    kern.min_span = 1  # let short crafted runs attempt at all
    from ..sync.base import SPIN_IDLE

    system.locks.spin_wakeup = lambda proc: SPIN_IDLE


def _spin_horizon_overrun(system) -> None:
    """The kernel ignores the certified timer horizon (collapses start
    unbounded, like a pure quiet segment): bounces past a waiter's
    wakeup are fast-forwarded.  The waiter list itself stays honest, so
    only the release-boundary check can catch this."""
    kern = _spin(system)
    kern.min_span = 1
    from ..machine.kernel import _INF

    kern._horizon0 = lambda: _INF


def _spin_stale_waiters(system) -> None:
    """The per-phase waiter list is never reset: certified waiters
    accumulate across scans, so from the second waiter-bearing collapse
    on, the list names processors twice (and, eventually, processors
    that are no longer lock-blocked)."""
    kern = _spin(system)
    kern.min_span = 1
    kern._begin_phase = lambda: None


SPIN_FAULTS: dict[str, FaultSpec] = {
    spec.name: spec
    for spec in (
        FaultSpec(
            "spin-idle-lie",
            SPIN,
            frozenset({"spin-phase-periodicity"}),
            "the lock port certifies every waiter idle, hiding pending timers",
            _spin_idle_lie,
            scheme="backoff",
        ),
        FaultSpec(
            "spin-horizon-overrun",
            SPIN,
            frozenset({"spin-release-boundary"}),
            "the kernel collapses past the earliest certified waiter timer",
            _spin_horizon_overrun,
            scheme="backoff",
        ),
        FaultSpec(
            "spin-stale-waiters",
            SPIN,
            frozenset({"spin-waiter-disjointness"}),
            "the certified-waiter list accumulates across phases",
            _spin_stale_waiters,
            scheme="ticket",
        ),
    )
}


def inject(system, name: str) -> FaultSpec:
    """Apply a registered fault (protocol, kernel or spin-phase) to a
    built (not yet run) system."""
    spec = (
        FAULTS.get(name)
        or LOCK_FAULTS.get(name)
        or KERNEL_FAULTS.get(name)
        or SPIN_FAULTS.get(name)
    )
    if spec is None:
        raise KeyError(
            f"unknown fault {name!r}; known: "
            f"{sorted(FAULTS) + sorted(LOCK_FAULTS) + sorted(KERNEL_FAULTS) + sorted(SPIN_FAULTS)}"
        )
    spec.apply(system)
    return spec
