"""Lock-protocol invariants (§2.4, Tables 4/6/8).

The system routes every lock acquire/release through one funnel
(:meth:`System.lock_acquire` / :meth:`System.lock_release`); the auditor
wraps the grant callbacks there, so it sees the acquire request, the
grant, and the release of every critical section regardless of scheme:

* **mutual exclusion** -- a lock is granted only while no processor is
  between its own grant and release of that lock;
* **grants answer requests** -- a processor is only granted a lock it
  is actually waiting for, and no waiter is left at end of run;
* **FIFO order** (queuing schemes only, ``manager.fifo``) -- a shadow
  queue mirrors every enqueue the manager performs
  (:meth:`on_enqueue`); a contended grant must go to its head, and an
  uncontended grant is illegal while waiters are queued.  Schemes whose
  ownership decision precedes the grant completion (CLH claims the
  queue position at the tail swap, then still pays a read of the
  predecessor's node) declare the claim (:meth:`on_claim`) so the
  auditor can tell a legitimately-early decision from a queue-jump --
  the claim itself is checked: it is only legal on a free lock with an
  empty queue;
* **queue-node hand-off** (queuing schemes) -- a contended release
  hands its queue node to the waiter at the head of the shadow queue;
  the auditor records that successor and the very next grant of the
  lock must be the recorded hand-off (same processor, contended);
* **statistics accounting** -- the manager's
  :class:`~repro.sync.stats.LockStatsCollector` must agree with the
  independently observed totals: acquisitions with grants (globally and
  per lock), transfers with contended grants, and waiters-at-transfer
  with the waiter population the auditor saw (shadow-queue length at a
  contended release for FIFO schemes, waiting-set size at a contended
  grant for spin schemes).
"""

from __future__ import annotations

from .report import LOCK, Violation

__all__ = ["LockAuditor"]


class LockAuditor:
    def __init__(self, top) -> None:
        self.top = top
        self.n_checks = 0
        #: lock id -> procs that requested but were not yet granted
        self.waiting: dict[int, set[int]] = {}
        #: lock id -> proc currently inside the critical section
        self.in_cs: dict[int, int | None] = {}
        #: lock id -> shadow of the manager's FIFO queue (fifo schemes)
        self.shadow: dict[int, list[int]] = {}
        #: lock id -> proc that claimed ownership ahead of its grant
        self.claimed: dict[int, int] = {}
        #: lock id -> successor recorded at a contended release; the
        #: next grant of the lock must hand the queue node to it
        self.pending_handoff: dict[int, int] = {}
        # independently observed totals, compared to LockStats at the end
        self.grants = 0
        self.contended_grants = 0
        self.per_lock_grants: dict[int, int] = {}
        self.expected_transfers = 0
        self.expected_waiters_total = 0

    @property
    def _fifo(self) -> bool:
        return bool(getattr(self.top.system.locks, "fifo", False))

    # -- events (from the System funnel and the managers) ----------------
    def on_acquire(self, proc: int, lock_id: int, time: int) -> None:
        self.waiting.setdefault(lock_id, set()).add(proc)

    def on_enqueue(self, lock_id: int, proc: int, time: int) -> None:
        """A FIFO manager appended ``proc`` to its wait queue."""
        self.n_checks += 1
        if proc not in self.waiting.get(lock_id, ()):
            self.top.violation(
                Violation(
                    LOCK,
                    "enqueue-without-request",
                    "manager queued a processor that never requested the lock",
                    cycle=time,
                    proc=proc,
                    lock_id=lock_id,
                )
            )
        self.shadow.setdefault(lock_id, []).append(proc)

    def on_claim(self, lock_id: int, proc: int, time: int) -> None:
        """A manager fixed ownership ahead of the grant completing
        (CLH: the tail swap decides, the predecessor-node read still has
        to finish).  The claim is only legal on a free, queue-empty
        lock -- otherwise it is a queue jump."""
        self.n_checks += 1
        holder = self.in_cs.get(lock_id)
        q = self.shadow.get(lock_id) or []
        if holder is not None or q:
            self.top.violation(
                Violation(
                    LOCK,
                    "queue-node-handoff",
                    "ownership claimed on a lock that is held or has "
                    "queued waiters",
                    cycle=time,
                    proc=proc,
                    lock_id=lock_id,
                    expected="free lock, empty wait queue",
                    observed=f"holder {holder}, queue {q}",
                )
            )
        self.claimed[lock_id] = proc

    def on_grant(self, proc: int, lock_id: int, time: int, contended: bool) -> None:
        top = self.top
        self.n_checks += 2
        holder = self.in_cs.get(lock_id)
        if holder is not None:
            top.violation(
                Violation(
                    LOCK,
                    "mutual-exclusion",
                    f"lock granted while proc {holder} is still inside "
                    "the critical section",
                    cycle=time,
                    proc=proc,
                    lock_id=lock_id,
                    expected="free lock",
                    observed=f"held by proc {holder}",
                )
            )
        waiting = self.waiting.get(lock_id)
        if waiting is None or proc not in waiting:
            top.violation(
                Violation(
                    LOCK,
                    "grant-without-request",
                    "lock granted to a processor that was not waiting for it",
                    cycle=time,
                    proc=proc,
                    lock_id=lock_id,
                    expected=f"proc {proc} in the waiting set",
                    observed=f"waiting {sorted(waiting or ())}",
                )
            )
        if self._fifo:
            q = self.shadow.get(lock_id) or []
            self.n_checks += 1
            if contended:
                if not q or q[0] != proc:
                    top.violation(
                        Violation(
                            LOCK,
                            "fifo-order",
                            "contended grant did not go to the head of "
                            "the wait queue",
                            cycle=time,
                            proc=proc,
                            lock_id=lock_id,
                            expected=f"head {q[0] if q else '<empty>'}",
                            observed=f"granted to proc {proc}",
                        )
                    )
                if proc in q:
                    q.remove(proc)
            elif q and self.claimed.get(lock_id) != proc:
                # An early ownership claim (on_claim) makes waiters that
                # queued between claim and grant legitimate bystanders.
                top.violation(
                    Violation(
                        LOCK,
                        "fifo-order",
                        "uncontended grant while processors are queued",
                        cycle=time,
                        proc=proc,
                        lock_id=lock_id,
                        expected="empty wait queue",
                        observed=f"queue {q}",
                    )
                )
            pending = self.pending_handoff.pop(lock_id, None)
            if pending is not None:
                self.n_checks += 1
                if not contended or proc != pending:
                    top.violation(
                        Violation(
                            LOCK,
                            "queue-node-handoff",
                            "the release handed its queue node to the "
                            "recorded successor, but a different grant "
                            "followed",
                            cycle=time,
                            proc=proc,
                            lock_id=lock_id,
                            expected=f"contended grant to proc {pending}",
                            observed=f"{'contended' if contended else 'uncontended'}"
                            f" grant to proc {proc}",
                        )
                    )
        elif contended:
            # spin schemes record waiters-left when the winner's
            # test-and-set completes, i.e. everyone still waiting but it
            self.expected_transfers += 1
            self.expected_waiters_total += len(waiting or ()) - 1
        if waiting is not None:
            waiting.discard(proc)
        if self.claimed.get(lock_id) == proc:
            del self.claimed[lock_id]
        self.in_cs[lock_id] = proc
        self.grants += 1
        if contended:
            self.contended_grants += 1
        self.per_lock_grants[lock_id] = self.per_lock_grants.get(lock_id, 0) + 1

    def on_release(self, proc: int, lock_id: int, line: int, time: int) -> None:
        self.n_checks += 1
        holder = self.in_cs.get(lock_id)
        if holder != proc:
            self.top.violation(
                Violation(
                    LOCK,
                    "release-by-non-owner",
                    "lock released by a processor that does not hold it",
                    cycle=time,
                    proc=proc,
                    lock_id=lock_id,
                    expected=f"held by proc {proc}",
                    observed="free" if holder is None else f"held by proc {holder}",
                )
            )
        self.in_cs[lock_id] = None
        if self._fifo:
            # the manager pops one waiter and records the rest as
            # "waiters at transfer" -- mirror that from the shadow queue
            q = self.shadow.get(lock_id)
            if q:
                self.expected_transfers += 1
                self.expected_waiters_total += len(q) - 1
                self.pending_handoff[lock_id] = q[0]

    # -- end of run -----------------------------------------------------
    def on_deadlock(self, stuck) -> None:
        """The engine drained with processors still blocked.  Diagnose
        the lock picture before the machine raises its RuntimeError: a
        manager that dropped a wakeup (lost retry, unsignalled waiter)
        deadlocks the run, and this turns that into a LOCK violation
        naming who is stuck where instead of a bare hang."""
        self.n_checks += 1
        leftovers = {
            lock_id: sorted(w) for lock_id, w in self.waiting.items() if w
        }
        queued = {lock_id: q for lock_id, q in self.shadow.items() if q}
        held = {lock_id: p for lock_id, p in self.in_cs.items() if p is not None}
        if leftovers or queued:
            self.top.violation(
                Violation(
                    LOCK,
                    "waiters-at-exit",
                    f"deadlock: processors {sorted(stuck)} never finished "
                    "while lock waiters are pending",
                    expected="no waiters",
                    observed=f"waiting {leftovers}, queued {queued}, held {held}",
                )
            )

    def finalize(self) -> None:
        top = self.top
        stats = top.system.locks.stats

        def check(check: str, what: str, expected, observed, lock_id: int = -1):
            self.n_checks += 1
            if expected != observed:
                top.violation(
                    Violation(
                        LOCK,
                        check,
                        f"LockStats disagree with observed lock events: {what}",
                        lock_id=lock_id,
                        expected=expected,
                        observed=observed,
                    )
                )

        check("stats-acquisitions", "total acquisitions", self.grants, stats.acquisitions)
        check("stats-transfers", "transfers", self.contended_grants, stats.transfers)
        check(
            "stats-transfers",
            "transfers (from releases seen)",
            self.expected_transfers,
            stats.transfers,
        )
        check(
            "stats-waiter-count",
            "waiters-at-transfer total",
            self.expected_waiters_total,
            stats.waiters_at_transfer_total,
        )
        for lock_id, n in sorted(self.per_lock_grants.items()):
            check(
                "stats-acquisitions",
                f"acquisitions of lock {lock_id}",
                n,
                stats.per_lock_acquisitions.get(lock_id, 0),
                lock_id=lock_id,
            )
        self.n_checks += 1
        leftovers = {
            lock_id: sorted(w) for lock_id, w in self.waiting.items() if w
        }
        queued = {lock_id: q for lock_id, q in self.shadow.items() if q}
        held = {lock_id: p for lock_id, p in self.in_cs.items() if p is not None}
        if leftovers or queued:
            top.violation(
                Violation(
                    LOCK,
                    "waiters-at-exit",
                    "processors still waiting for locks at end of run",
                    expected="no waiters",
                    observed=f"waiting {leftovers}, queued {queued}",
                )
            )
        if held:
            top.violation(
                Violation(
                    LOCK,
                    "held-at-exit",
                    "locks still held at end of run",
                    expected="all locks released",
                    observed=f"held {held}",
                )
            )
        top.report.count(LOCK, self.n_checks)
