"""The system auditor: attachment, event dispatch, finalization.

One :class:`SystemAuditor` watches one :class:`~repro.machine.system.
System`.  :meth:`SystemAuditor.attach` plants it on the hook points the
machine exposes (``system.audit``, ``bus.audit``, ``cache.audit``,
``lock_manager.audit``) and wraps the lock grant callbacks at the
system's acquire/release funnel.  Every hook is **observation-only**:
the auditor never mutates machine state, schedules events, or changes a
decision, so an audited run's :class:`~repro.machine.metrics.RunResult`
is byte-identical to an unaudited one (pinned by tests/test_audit_grid
and the audit property suite).

``mode="raise"`` raises :class:`~repro.audit.report.AuditError` at the
first violation, with the faulty cycle/processor/line in the message --
the sanitizer behaviour.  ``mode="collect"`` accumulates everything
into :attr:`report` for harnesses that want to compare or count.
"""

from __future__ import annotations

from .accounting import AccountingAuditor
from .busproto import BusAuditor
from .coherence import CoherenceAuditor
from .kernel import KernelAuditor
from .locks import LockAuditor
from .report import AuditError, AuditReport, Violation
from .spinphase import SpinAuditor

__all__ = ["SystemAuditor"]


class SystemAuditor:
    """Runtime invariant auditor for one simulation (single use)."""

    def __init__(self, system, mode: str = "raise") -> None:
        if mode not in ("raise", "collect"):
            raise ValueError(f"mode must be 'raise' or 'collect', got {mode!r}")
        self.system = system
        self.mode = mode
        self.report = AuditReport()
        self.coherence = CoherenceAuditor(self)
        self.busproto = BusAuditor(self)
        self.locks = LockAuditor(self)
        self.accounting = AccountingAuditor(self)
        self.kernel_checks = KernelAuditor(self)
        self.spin_checks = SpinAuditor(self)
        self.finalized = False

    @classmethod
    def attach(cls, system, mode: str = "raise") -> "SystemAuditor":
        """Create an auditor and plant it on ``system``'s hook points."""
        if system.audit is not None:
            raise RuntimeError("system already has an auditor attached")
        auditor = cls(system, mode)
        system.audit = auditor
        system.bus.audit = auditor
        system.locks.audit = auditor
        for cache in system.caches:
            cache.audit = auditor
        return auditor

    # -- violation sink --------------------------------------------------
    def violation(self, v: Violation) -> None:
        self.report.add(v)
        if self.mode == "raise":
            raise AuditError(v)

    # -- bus hooks (Bus._grant) ------------------------------------------
    def on_arbitrate(self, time: int) -> None:
        self.busproto.on_arbitrate(time)

    def on_skip(self, idx: int, op, time: int) -> None:
        self.busproto.on_skip(idx, op, time)

    def on_grant_pre(self, op, time: int, idx: int) -> None:
        self.busproto.on_grant_pre(op, time, idx)
        self.coherence.on_grant_pre(op, time)

    def on_grant_post(self, op, time: int, hold: int, idx: int) -> None:
        self.busproto.on_grant_post(op, time, hold, idx)
        self.coherence.on_grant_post(op, time)

    # -- cache hook (Cache.install) --------------------------------------
    def on_install(self, proc: int, line: int, state: int) -> None:
        self.coherence.on_install(proc, line, state)

    # -- lock funnel hooks (System.lock_acquire/lock_release) ------------
    def wrap_acquire(self, proc: int, lock_id: int, line: int, time: int, cb):
        self.locks.on_acquire(proc, lock_id, time)

        def granted(t: int, contended: bool, _cb=cb) -> None:
            self.locks.on_grant(proc, lock_id, t, contended)
            _cb(t, contended)

        return granted

    def on_lock_release(self, proc: int, lock_id: int, line: int, time: int) -> None:
        self.locks.on_release(proc, lock_id, line, time)

    # -- manager hooks (queuing schemes) ---------------------------------
    def on_lock_enqueue(self, lock_id: int, proc: int, time: int) -> None:
        self.locks.on_enqueue(lock_id, proc, time)

    def on_lock_claim(self, lock_id: int, proc: int, time: int) -> None:
        self.locks.on_claim(lock_id, proc, time)

    # -- deadlock (System.run, before its RuntimeError) ------------------
    def on_deadlock(self, stuck) -> None:
        self.locks.on_deadlock(stuck)

    # -- segment-kernel hook (SegmentKernel.attempt, pre-mutation) -------
    def on_kernel_collapse(self, system, plan, now: int) -> None:
        self.kernel_checks.on_collapse(system, plan, now)

    # -- spin-phase hook (SpinKernel._audit_collapse, pre-mutation) ------
    def on_spin_collapse(self, system, plan, waiters, horizon, now: int) -> None:
        self.spin_checks.on_collapse(system, plan, waiters, horizon, now)

    # -- end of run ------------------------------------------------------
    def finalize(self, result) -> AuditReport:
        """Run the end-of-run sweeps.  Called by :meth:`System.run` after
        the RunResult is collected (so the result is never perturbed)."""
        if self.finalized:
            return self.report
        self.finalized = True
        self.busproto.finalize()
        self.coherence.finalize()
        self.locks.finalize()
        self.accounting.finalize(result)
        return self.report
