"""Violation records and the audit report.

A :class:`Violation` is one observed breach of a simulator invariant,
with enough structured context (cycle, processor, line, lock id,
expected vs. observed) to localize the bug without re-running.  An
:class:`AuditReport` accumulates violations plus a per-category count of
checks actually executed -- the counts exist so tests can prove the
auditors are not vacuous (a sanitizer that ran zero checks also reports
zero violations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "AuditError",
    "AuditReport",
    "Violation",
    "COHERENCE",
    "BUS",
    "LOCK",
    "ACCOUNTING",
    "KERNEL",
    "SPIN",
    "CATEGORIES",
]

#: invariant families (§3 of the paper: MESI snooping, split-transaction
#: bus arbitration, lock semantics, stall-cycle accounting) plus the
#: segment-kernel legality checks (repro.machine.kernel collapses) and
#: the spin-phase certification checks (repro.machine.spinphase)
COHERENCE = "coherence"
BUS = "bus"
LOCK = "lock"
ACCOUNTING = "accounting"
KERNEL = "kernel"
SPIN = "spin"
CATEGORIES = (COHERENCE, BUS, LOCK, ACCOUNTING, KERNEL, SPIN)


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with structured context."""

    category: str  #: one of :data:`CATEGORIES`
    check: str  #: machine-readable check name ("exclusive-owner", ...)
    message: str  #: human-readable description
    cycle: int = -1  #: global cycle at detection (-1: end-of-run check)
    proc: int = -1  #: processor involved, if any
    line: int = -1  #: cache line involved, if any
    lock_id: int = -1  #: lock involved, if any
    expected: object = None
    observed: object = None

    def __str__(self) -> str:
        ctx = []
        if self.cycle >= 0:
            ctx.append(f"cycle {self.cycle}")
        if self.proc >= 0:
            ctx.append(f"proc {self.proc}")
        if self.line >= 0:
            ctx.append(f"line {self.line:#x}")
        if self.lock_id >= 0:
            ctx.append(f"lock {self.lock_id}")
        where = f" [{', '.join(ctx)}]" if ctx else ""
        detail = ""
        if self.expected is not None or self.observed is not None:
            detail = f" (expected {self.expected!r}, observed {self.observed!r})"
        return f"{self.category}/{self.check}{where}: {self.message}{detail}"


class AuditError(AssertionError):
    """Raised (in ``raise`` mode) on the first invariant violation."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass
class AuditReport:
    """Accumulated outcome of one audited simulation."""

    violations: list = field(default_factory=list)
    #: checks executed per category -- anti-vacuity evidence
    checks: dict = field(default_factory=dict)

    def count(self, category: str, n: int = 1) -> None:
        self.checks[category] = self.checks.get(category, 0) + n

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_category(self, category: str) -> list:
        return [v for v in self.violations if v.category == category]

    def summary(self) -> str:
        total = sum(self.checks.values())
        head = (
            f"audit: {len(self.violations)} violation(s), "
            f"{total:,} checks "
            f"({', '.join(f'{k}: {v:,}' for k, v in sorted(self.checks.items()))})"
        )
        if not self.violations:
            return head
        return head + "\n" + "\n".join(f"  {v}" for v in self.violations[:40])
