"""Per-processor trace interpreter.

Each processor replays its reference stream against its own cache,
stalling per the configured consistency model and lock scheme.  The
interpreter advances its *local* clock through cache hits without
touching the global event queue, re-synchronizing with the engine every
``batch_records`` records or whenever it must interact with the shared
machinery (a miss, a buffered write, a synchronization point).

Stall bookkeeping matches the paper's: time lost to cache misses, to
waiting for locks (including acquire/release overhead), to weak-ordering
drains at synchronization points, and to a full cache--bus buffer.
"""

from __future__ import annotations

from ..consistency.base import ConsistencyModel
from ..trace.records import BARRIER, IBLOCK, LOCK, READ, UNLOCK, WRITE, Trace
from .buffers import (
    READ_MISS,
    RFO,
    UPDATE,
    UPGRADE,
    WRITEBACK,
    WRITETHROUGH,
    BusOp,
)
from .cache import EXCLUSIVE, MODIFIED, SHARED, Cache
from .metrics import ProcMetrics

__all__ = ["Processor"]

_WORD_SHIFT = 2  # REP_STRIDE == 4-byte elements
_INSTR_BYTES = 4

# blocked states
_RUNNING = 0
_WAIT_MISS = 1
_WAIT_LOCK = 2
_WAIT_DRAIN = 3
_WAIT_BUFFER = 4
_DONE = 5


class Processor:
    """One simulated CPU: trace cursor, local clock, stall state."""

    def __init__(
        self,
        proc: int,
        trace: Trace,
        cache: Cache,
        system,  # repro.machine.system.System
        model: ConsistencyModel,
        batch_records: int,
    ) -> None:
        self.proc = proc
        self.cache = cache
        self.system = system
        self.model = model
        self.batch = batch_records
        self.metrics = ProcMetrics(proc)

        rec = trace.records
        # Plain lists index several times faster than numpy scalars in
        # the per-record hot loop (see the hpc guides: measure first --
        # this was the profiled bottleneck).
        self._kind = rec["kind"].tolist()
        self._addr = rec["addr"].tolist()
        self._arg = rec["arg"].tolist()
        self._cycles = rec["cycles"].tolist()
        self._n = len(self._kind)

        self._line_shift = cache.config.offset_bits
        self._words_per_line = cache.config.line_bytes >> _WORD_SHIFT
        self._writethrough = cache.config.write_policy == "writethrough"
        self._write_update = system.protocol.write_update

        self.time = 0
        self.idx = 0
        self.pos = 0  # elementary refs consumed within the current record
        self.state = _RUNNING
        #: program accesses issued but not performed (gates WO drains)
        self.outstanding = 0
        #: write-backs in flight -- visible to snooping, so they never
        #: gate a synchronization drain (the store that dirtied the line
        #: already performed when it hit the cache)
        self.outstanding_wb = 0
        self._stall_start = 0
        self._wait_op: BusOp | None = None
        self._draining = False
        self._post_drain: tuple | None = None
        # weak ordering: lines with a buffered (non-stalling) RFO in flight
        self.pending_writes: dict[int, BusOp] = {}
        # weak ordering: SHARED lines with a buffered invalidation in flight
        self.pending_upgrades: set[int] = set()
        self.done = False

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        self.system.engine.at(0, self._run)

    def _finish(self, t: int) -> None:
        self.state = _DONE
        self.done = True
        self.metrics.completion_time = t
        self.system.on_proc_done(self.proc, t)

    # -- the interpreter loop ------------------------------------------------------
    def _run(self, _t: int) -> None:
        # self.time is authoritative; the engine event merely resumes us.
        kinds = self._kind
        addrs = self._addr
        args = self._arg
        cycs = self._cycles
        cache = self.cache
        ctr = cache.counters
        met = self.metrics
        line_shift = self._line_shift
        wpl = self._words_per_line
        budget = self.batch
        self.state = _RUNNING

        while True:
            if budget <= 0:
                self.system.engine.at(self.time, self._run)
                return
            budget -= 1
            i = self.idx
            if i >= self._n:
                self._finish(self.time)
                return
            k = kinds[i]

            if k == IBLOCK:
                base = addrs[i]
                n_i = args[i]
                pos = self.pos
                blocked = False
                while pos < n_i:
                    byte = base + _INSTR_BYTES * pos
                    line = byte >> line_shift
                    word = (byte >> _WORD_SHIFT) & (wpl - 1)
                    chunk = n_i - pos
                    room = wpl - word
                    if chunk > room:
                        chunk = room
                    if cache.lookup(line):
                        ctr.ifetch_hits += chunk
                        pos += chunk
                    else:
                        ctr.ifetch_misses += 1
                        ctr.ifetch_hits += chunk - 1
                        met.refs_processed += chunk
                        self.pos = pos + chunk
                        self._block_on_read_miss(line, ifetch=True)
                        blocked = True
                        break
                    met.refs_processed += chunk
                if blocked:
                    return
                self.pos = 0
                c = cycs[i]
                self.time += c
                met.work_cycles += c
                self.idx = i + 1

            elif k == READ:
                base = addrs[i]
                reps = args[i]
                pos = self.pos
                blocked = False
                while pos < reps:
                    byte = base + (pos << _WORD_SHIFT)
                    line = byte >> line_shift
                    word = (byte >> _WORD_SHIFT) & (wpl - 1)
                    chunk = reps - pos
                    room = wpl - word
                    if chunk > room:
                        chunk = room
                    if cache.lookup(line):
                        ctr.read_hits += chunk
                        pos += chunk
                        met.refs_processed += chunk
                        continue
                    # A weakly-ordered read of a line whose write miss is
                    # still buffered must wait for its own store's data.
                    wop = self.pending_writes.get(line)
                    if wop is not None:
                        ctr.read_hits += chunk
                        met.refs_processed += chunk
                        self.pos = pos + chunk
                        self._block_on_op(wop)
                        blocked = True
                        break
                    # Buffer hit: our own evicted dirty copy is still
                    # queued for write-back; reclaim it.
                    if self._reclaim_from_buffer(line):
                        ctr.read_hits += chunk
                        met.refs_processed += chunk
                        pos += chunk
                        continue
                    ctr.read_misses += 1
                    ctr.read_hits += chunk - 1
                    met.refs_processed += chunk
                    self.pos = pos + chunk
                    self._block_on_read_miss(line, ifetch=False)
                    blocked = True
                    break
                if blocked:
                    return
                self.pos = 0
                self.idx = i + 1

            elif k == WRITE:
                base = addrs[i]
                reps = args[i]
                pos = self.pos
                blocked = False
                while pos < reps:
                    byte = base + (pos << _WORD_SHIFT)
                    line = byte >> line_shift
                    word = (byte >> _WORD_SHIFT) & (wpl - 1)
                    chunk = reps - pos
                    room = wpl - word
                    if chunk > room:
                        chunk = room
                    if self._writethrough:
                        # Write-through, no-allocate: every write chunk is
                        # a word-burst to memory; the cached copy (if any)
                        # is updated in place and other copies invalidate
                        # on the bus write's address phase.
                        st = cache.lookup(line)
                        if st:
                            ctr.write_hits += chunk
                        else:
                            ctr.write_misses += 1
                            ctr.write_hits += chunk - 1
                        met.refs_processed += chunk
                        self.pos = pos + chunk
                        wt = BusOp(WRITETHROUGH, line, self.proc)
                        if self.model.stall_on_write_miss:
                            self._stall_on_op(wt)
                            blocked = True
                            break
                        if not self.system.buffers[self.proc].has_space():
                            self.pos = pos
                            # undo the provisional counting: the access
                            # re-executes once space frees
                            if st:
                                ctr.write_hits -= chunk
                            else:
                                ctr.write_misses -= 1
                                ctr.write_hits -= chunk - 1
                            met.refs_processed -= chunk
                            self._wait_for_space()
                            blocked = True
                            break
                        self.outstanding += 1
                        self.system.issue_from_proc(wt, self.time, front=False)
                        pos += chunk
                        continue
                    st = cache.lookup(line)
                    if st == MODIFIED:
                        ctr.write_hits += chunk
                        pos += chunk
                        met.refs_processed += chunk
                        continue
                    if st == EXCLUSIVE:
                        cache.set_state(line, MODIFIED)
                        ctr.write_hits += chunk
                        pos += chunk
                        met.refs_processed += chunk
                        continue
                    if st == SHARED:
                        if self._write_update:
                            # write-update protocol: broadcast the words;
                            # the line stays SHARED in every cache
                            if self.model.stall_on_upgrade:
                                ctr.write_hits += chunk
                                met.refs_processed += chunk
                                self.pos = pos + chunk
                                self._stall_on_op(BusOp(UPDATE, line, self.proc))
                                blocked = True
                                break
                            if not self.system.buffers[self.proc].has_space():
                                self.pos = pos
                                self._wait_for_space()
                                blocked = True
                                break
                            ctr.write_hits += chunk
                            met.refs_processed += chunk
                            op = BusOp(UPDATE, line, self.proc)
                            self.outstanding += 1
                            self.system.issue_from_proc(op, self.time, front=False)
                            pos += chunk
                            continue
                        if line in self.pending_upgrades:
                            # invalidation already buffered; write combines
                            ctr.write_hits += chunk
                            pos += chunk
                            met.refs_processed += chunk
                            continue
                        if self.model.stall_on_upgrade:
                            ctr.write_hits += chunk
                            met.refs_processed += chunk
                            self.pos = pos + chunk
                            self._stall_on_op(BusOp(UPGRADE, line, self.proc))
                            blocked = True
                            break
                        if not self.system.buffers[self.proc].has_space():
                            self.pos = pos  # re-execute this access on resume
                            self._wait_for_space()
                            blocked = True
                            break
                        ctr.write_hits += chunk
                        met.refs_processed += chunk
                        self.pending_upgrades.add(line)
                        op = BusOp(UPGRADE, line, self.proc)
                        self.outstanding += 1
                        self.system.issue_from_proc(op, self.time, front=False)
                        pos += chunk
                        continue
                    # miss
                    wop = self.pending_writes.get(line)
                    if wop is not None:
                        # write to a line whose RFO is already in flight
                        ctr.write_hits += chunk
                        pos += chunk
                        met.refs_processed += chunk
                        continue
                    if self._reclaim_from_buffer(line):
                        ctr.write_hits += chunk
                        met.refs_processed += chunk
                        pos += chunk
                        continue
                    if self.model.stall_on_write_miss:
                        ctr.write_misses += 1
                        ctr.write_hits += chunk - 1
                        met.refs_processed += chunk
                        self.pos = pos + chunk
                        rfo = BusOp(RFO, line, self.proc)
                        rfo.fill_state = MODIFIED
                        self._stall_on_op(rfo)
                        blocked = True
                        break
                    if not self.system.buffers[self.proc].has_space():
                        self.pos = pos  # re-execute this access on resume
                        self._wait_for_space()
                        blocked = True
                        break
                    ctr.write_misses += 1
                    ctr.write_hits += chunk - 1
                    met.refs_processed += chunk
                    rfo = BusOp(RFO, line, self.proc)
                    rfo.fill_state = MODIFIED
                    self.pending_writes[line] = rfo
                    self.outstanding += 1
                    self.system.issue_from_proc(rfo, self.time, front=False)
                    pos += chunk
                    continue
                if blocked:
                    return
                self.pos = 0
                self.idx = i + 1

            elif k == LOCK or k == UNLOCK:
                # Re-enter through the engine so the lock manager runs with
                # the global clock at this processor's local time.
                self.idx = i + 1
                kk, ident, la = k, args[i], addrs[i]
                self.system.engine.at(
                    self.time, lambda t: self._begin_sync(kk, ident, la)
                )
                return

            elif k == BARRIER:
                self.idx = i + 1
                ident = args[i]
                self.system.engine.at(
                    self.time, lambda t: self._begin_sync(BARRIER, ident, 0)
                )
                return

            else:  # pragma: no cover - validated traces exclude this
                raise ValueError(f"unknown record kind {k} at index {i}")

    # -- miss paths -----------------------------------------------------------------
    def _reclaim_from_buffer(self, line: int) -> bool:
        """If our own write-back of ``line`` is still buffered, pull it
        back into the cache (one-cycle buffer hit)."""
        buf = self.system.buffers[self.proc]
        wb = buf.find(WRITEBACK, line)
        if wb is None:
            return False
        buf.cancel(wb)
        self.outstanding_wb -= 1
        victim = self.cache.install(line, MODIFIED)
        self._handle_eviction(victim)
        self.time += 1
        self.metrics.stall_miss += 1  # one-cycle buffer-hit penalty
        return True

    def _block_on_read_miss(self, line: int, ifetch: bool) -> None:
        op = BusOp(READ_MISS, line, self.proc, ifetch=ifetch)
        self.state = _WAIT_MISS
        self._stall_start = self.time
        self._wait_op = op
        self.outstanding += 1
        self.system.issue_from_proc(op, self.time, front=self.model.bypass_reads)

    def _block_on_op(self, op: BusOp) -> None:
        """Stall until an already-issued operation (e.g. our own buffered
        RFO whose data a read now needs) completes."""
        self.state = _WAIT_MISS
        self._stall_start = self.time
        self._wait_op = op

    def _stall_on_op(self, op: BusOp) -> None:
        """Issue ``op`` and stall until it completes (the SC paths)."""
        self.state = _WAIT_MISS
        self._stall_start = self.time
        self._wait_op = op
        self.outstanding += 1
        self.system.issue_from_proc(op, self.time, front=False)

    def _wait_for_space(self) -> None:
        self.state = _WAIT_BUFFER
        self._stall_start = self.time
        buf = self.system.buffers[self.proc]
        t0 = self.time

        def resumed(t: int) -> None:
            self.metrics.stall_buffer += t - t0
            self.time = max(self.time, t)
            self.system.engine.at(self.time, self._run)

        buf.wait_for_space(resumed)

    def _handle_eviction(self, victim) -> None:
        if victim is None:
            return
        vline, dirty = victim
        if dirty:
            wb = BusOp(WRITEBACK, vline, self.proc)
            self.outstanding_wb += 1
            self.cache.counters.writebacks += 1
            self.system.issue_from_proc(wb, self.time, front=False)

    # -- synchronization points --------------------------------------------------------
    def _begin_sync(self, kind: int, ident: int, lock_addr: int) -> None:
        """LOCK/UNLOCK/BARRIER record: drain if weakly ordered, then hand
        off to the lock/barrier manager."""
        if self.model.drain_at_sync:
            self.metrics.drains += 1
            if self.outstanding > 0:
                self.metrics.drains_nonempty += 1
                self._draining = True
                self._stall_start = self.time
                self.state = _WAIT_DRAIN
                self._post_drain = (kind, ident, lock_addr)
                return
        self._sync_action(kind, ident, lock_addr)

    def _sync_action(self, kind: int, ident: int, lock_addr: int) -> None:
        self.state = _WAIT_LOCK
        self._stall_start = self.time
        line = lock_addr >> self._line_shift

        def resumed(t: int, contended: bool) -> None:
            # The paper's "lock wait" stall cause is time lost *waiting*
            # for a held lock; the memory-access overhead of uncontended
            # acquires/releases stalls the processor like any other
            # memory access (Pverify: 555 lock pairs, 0.0% lock stalls).
            if contended:
                self.metrics.stall_lock += t - self._stall_start
            else:
                self.metrics.stall_miss += t - self._stall_start
            self.time = max(self.time, t)
            self.state = _RUNNING
            self.system.engine.at(self.time, self._run)

        if kind == LOCK:
            self.system.lock_acquire(self.proc, ident, line, self.time, resumed)
        elif kind == UNLOCK:
            self.system.lock_release(self.proc, ident, line, self.time, resumed)
        else:  # BARRIER
            self.system.barrier_arrive(self.proc, ident, self.time, resumed)

    # -- completion notifications (called by the System) ----------------------------------
    def _op_complete(self, op: BusOp, t: int) -> None:
        if op.kind == WRITEBACK:
            self.outstanding_wb -= 1
            return  # write-backs never unblock the processor
        self.outstanding -= 1
        if op.kind == RFO and self.pending_writes.get(op.line) is op:
            del self.pending_writes[op.line]
        elif op.kind == UPGRADE:
            self.pending_upgrades.discard(op.line)

        if self.state == _WAIT_MISS and self._wait_op is op:
            self.metrics.stall_miss += t - self._stall_start
            self._wait_op = None
            self.time = max(self.time, t)
            self.state = _RUNNING
            self.system.engine.at(self.time, self._run)
        elif self.state == _WAIT_DRAIN and self.outstanding == 0:
            self.metrics.stall_drain += t - self._stall_start
            self._draining = False
            self.time = max(self.time, t)
            kind, ident, lock_addr = self._post_drain
            self._sync_action(kind, ident, lock_addr)

    def install_fill(self, op: BusOp, t: int) -> None:
        """A READ_MISS/RFO (or converted UPGRADE) fetched its line."""
        victim = self.cache.install(op.line, op.fill_state)
        self._handle_eviction(victim)
