"""Per-processor trace interpreter.

Each processor replays its reference stream against its own cache,
stalling per the configured consistency model and lock scheme.  The
interpreter advances its *local* clock through cache hits without
touching the global event queue, re-synchronizing with the engine every
``batch_records`` records or whenever it must interact with the shared
machinery (a miss, a buffered write, a synchronization point).

When the machine is configured with ``fast_path=True`` (the default), a
*private-window* fast path sits in front of the record-by-record loop:
static window tables (:mod:`repro.machine.fastpath`) mark runs of
records that can possibly retire with no bus interaction, and at run
time the interpreter probes the current MESI state of a window's line
span and retires the entire validated prefix in one step -- counters
advanced by precomputed prefix sums, LRU refreshed in last-touch order.
The retirement is byte-identical to the slow replay because nothing a
pure cache hit does is observable to the rest of the machine: it
schedules no engine event, issues no bus operation, and consumes
interpreter budget exactly as the per-record loop would.  Validation
failures (a line another processor invalidated, a write whose line is
not MODIFIED) simply fall through to the reference loop for the
offending record.

Stall bookkeeping matches the paper's: time lost to cache misses, to
waiting for locks (including acquire/release overhead), to weak-ordering
drains at synchronization points, and to a full cache--bus buffer.
"""

from __future__ import annotations

from heapq import heappush as _heappush

from ..consistency.base import ConsistencyModel
from ..trace.records import BARRIER, IBLOCK, LOCK, READ, UNLOCK, WRITE, Trace
from .buffers import (
    READ_MISS,
    RFO,
    UPDATE,
    UPGRADE,
    WRITEBACK,
    WRITETHROUGH,
    BusOp,
)
from .cache import EXCLUSIVE, MODIFIED, SHARED, Cache
from .engine import Engine
from .metrics import ProcMetrics

__all__ = ["Processor"]

_WORD_SHIFT = 2  # REP_STRIDE == 4-byte elements
_INSTR_BYTES = 4

# Adaptive fast-path gate.  A window attempt that retires fewer than
# _FP_MIN_RETIRE records did not amortize its setup/retirement overhead,
# so further attempts are suspended for the next _FP_BACKOFF records.
# This is purely a cost heuristic: gated records take the reference path,
# which retires them identically, so results are byte-equal either way.
_FP_MIN_RETIRE = 4
_FP_BACKOFF = 64

# Per-trace interpreter tables, memoized across System instances: the
# ``.tolist()`` record columns and the fast-path window tables are pure
# functions of the (immutable) record array, and a suite run simulates
# the same traceset under several machine configurations.  Keyed by
# ``id(records)`` with a weakref identity check so a recycled id of a
# garbage-collected array can never alias.
_interp_memo: dict[int, tuple] = {}


def _interp_tables(trace, offset_bits: int, writethrough: bool, want_fp: bool):
    import weakref

    rec = trace.records
    key = id(rec)
    ent = _interp_memo.get(key)
    if ent is None or ent[0]() is not rec:
        if len(_interp_memo) >= 256:  # bound the cache across many tracesets
            _interp_memo.clear()
        ent = (
            weakref.ref(rec),
            rec["kind"].tolist(),
            rec["addr"].tolist(),
            rec["arg"].tolist(),
            rec["cycles"].tolist(),
            {},  # (offset_bits, writethrough) -> WindowTables
        )
        _interp_memo[key] = ent
    fp = None
    if want_fp:
        from .fastpath import build_tables

        fp_key = (offset_bits, writethrough)
        fp = ent[5].get(fp_key)
        if fp is None:
            fp = build_tables(rec, offset_bits, writethrough)
            ent[5][fp_key] = fp
    return ent[1], ent[2], ent[3], ent[4], fp

# blocked states
_RUNNING = 0
_WAIT_MISS = 1
_WAIT_LOCK = 2
_WAIT_DRAIN = 3
_WAIT_BUFFER = 4
_DONE = 5


class Processor:
    """One simulated CPU: trace cursor, local clock, stall state."""

    def __init__(
        self,
        proc: int,
        trace: Trace,
        cache: Cache,
        system,  # repro.machine.system.System
        model: ConsistencyModel,
        batch_records: int,
        fast_path: bool = True,
        bus_fast_path: bool = True,
    ) -> None:
        self.proc = proc
        self.cache = cache
        self.system = system
        self.model = model
        self.batch = batch_records
        self.metrics = ProcMetrics(proc)

        self._line_shift = cache.config.offset_bits
        self._words_per_line = cache.config.line_bytes >> _WORD_SHIFT
        self._writethrough = cache.config.write_policy == "writethrough"
        self._write_update = system.protocol.write_update

        # Plain lists index several times faster than numpy scalars in
        # the per-record hot loop (see the hpc guides: measure first --
        # this was the profiled bottleneck); memoized per trace.
        (
            self._kind,
            self._addr,
            self._arg,
            self._cycles,
            self._fp,
        ) = _interp_tables(trace, self._line_shift, self._writethrough, fast_path)
        self._n = len(self._kind)

        fp = self._fp
        # Everything ``_run`` reads on entry, packed into one tuple: the
        # interpreter resumes once per engine event (tens of thousands of
        # times per run) and a single unpack is much cheaper than ~25
        # attribute loads.  All members are stable references.
        self._hot = (
            self._kind,
            self._addr,
            self._arg,
            self._cycles,
            cache,
            cache.counters,
            self.metrics,
            self._line_shift,
            self._words_per_line,
            self._n,
            fp.code if fp is not None else None,
            fp.win_end if fp is not None else None,
            fp.c_read if fp is not None else None,
            fp.c_write if fp is not None else None,
            fp.c_ifetch if fp is not None else None,
            fp.c_cycles if fp is not None else None,
            fp.c_refs if fp is not None else None,
            cache.state,
            cache.state.get,
            cache._ways,
            cache._set_mask,
            cache.assoc,
            bus_fast_path,
        )
        #: fast-path introspection (NOT part of RunResult: the fast and
        #: reference paths must produce byte-identical results)
        self.fp_windows = 0  # windows retired
        self.fp_records = 0  # records retired through windows
        self.fp_refs = 0  # elementary references retired through windows
        #: adaptive gate: record index at which window attempts resume
        self.fp_resume_at = 0
        self._fp_log: list | None = None  # tests: (start, end) record spans

        #: columnar segment kernel (repro.machine.kernel): planted by the
        #: System when MachineConfig.segment_kernel is on and the engine
        #: is the production bucketed Engine
        self._kernel = None
        self._kern_end = None  # the kernel's win_end table for this trace
        #: adaptive gate: record index at which kernel attempts resume
        self._kernel_gate = 0
        #: pending resumes the kernel has collapsed: consumed as no-ops
        #: at _run entry (a counter: overlapping segments can strand
        #: more than one stale event)
        self._kernel_skip = 0
        #: a LOCK/UNLOCK/BARRIER hand-off (_begin_sync) is scheduled but
        #: has not fired: the processor is _RUNNING yet must not be
        #: treated as being inside a private run
        self._sync_pending = False
        #: preallocated resume callback: the interpreter re-enters through
        #: the engine tens of thousands of times per run, and scheduling a
        #: cached bound method avoids allocating a fresh one each time
        self._run_cb = self._run
        # inline engine scheduling on the completion-resume path (bucket
        # append without the ``at`` call) is only exact against the
        # production Engine's internals
        self._sched_inline = bus_fast_path and type(system.engine) is Engine
        self._engine = system.engine

        self.time = 0
        self.idx = 0
        self.pos = 0  # elementary refs consumed within the current record
        self.state = _RUNNING
        #: program accesses issued but not performed (gates WO drains)
        self.outstanding = 0
        #: write-backs in flight -- visible to snooping, so they never
        #: gate a synchronization drain (the store that dirtied the line
        #: already performed when it hit the cache)
        self.outstanding_wb = 0
        self._stall_start = 0
        self._wait_op: BusOp | None = None
        self._draining = False
        self._post_drain: tuple | None = None
        # weak ordering: lines with a buffered (non-stalling) RFO in flight
        self.pending_writes: dict[int, BusOp] = {}
        # weak ordering: SHARED lines with a buffered invalidation in flight
        self.pending_upgrades: set[int] = set()
        self.done = False

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        self.system.engine.at(0, self._run_cb)

    def _finish(self, t: int) -> None:
        self.state = _DONE
        self.done = True
        self.metrics.completion_time = t
        self.system.on_proc_done(self.proc, t)

    # -- the interpreter loop ------------------------------------------------------
    def _run(self, _t: int) -> None:
        # self.time is authoritative; the engine event merely resumes us.
        kern = self._kernel
        if kern is not None:
            if self._kernel_skip:
                # a resume the segment kernel already collapsed: its
                # whole bounce was retired columnar, nothing to do
                self._kernel_skip -= 1
                return
            i = self.idx
            if (
                self.pos == 0
                and i >= self._kernel_gate
                and i < self._n
                and self._kern_end[i] - i >= kern.min_span
                and kern.attempt(self)
            ):
                return  # collapsed: our next live bounce is scheduled
        (
            kinds,
            addrs,
            args,
            cycs,
            cache,
            ctr,
            met,
            line_shift,
            wpl,
            n,
            fp_code,
            fp_end,
            fp_cr,
            fp_cw,
            fp_ci,
            fp_cc,
            fp_cn,
            cstate,
            sget,
            ways,
            set_mask,
            assoc,
            ilk,  # contended-path fast path: inline the cache lookup
        ) = self._hot
        budget = self.batch
        self.state = _RUNNING
        MOD = MODIFIED
        EXC = EXCLUSIVE
        fp_resume = self.fp_resume_at

        while True:
            if budget <= 0:
                self.system.engine.at(self.time, self._run_cb)
                return
            budget -= 1
            i = self.idx
            if i >= n:
                self._finish(self.time)
                return

            if (
                fp_code is not None
                and self.pos == 0
                and i >= fp_resume
                and (v := fp_code[i]) is not None
            ):
                # -- private-window fast path ---------------------------------
                # Validate the longest budget-bounded prefix of the
                # eligible run starting at i: every line a record spans
                # must currently be resident (EXCLUSIVE/MODIFIED for
                # writes -- the silent write hits).  Validation mirrors
                # the slow path's first probe per access exactly, and a
                # record that fails validation is left untouched, so a
                # failed prefix falls through at no cost to correctness.
                j = fp_end[i]
                lim = i + budget + 1  # this record's budget share is spent
                if j > lim:
                    j = lim
                k = i
                prev = None
                while True:
                    if v == prev:
                        # same code as the previous record: its lines are
                        # validated and already MRU -- nothing to redo
                        pass
                    elif type(v) is int:
                        if v >= 0:  # single-line read/ifetch
                            st = sget(v)
                            if st is None:
                                break
                            line = v
                        else:  # single-line write
                            line = ~v
                            st = sget(line)
                            if st is None or st < EXC:
                                break
                            if st != MOD:
                                # silent E->M write hit, exactly as the
                                # reference WRITE handler performs it
                                cstate[line] = MOD
                        base = (line & set_mask) * assoc
                        if ways[base] != line:
                            if assoc == 2:
                                # resident + not MRU => it is the other way
                                ways[base + 1] = ways[base]
                                ways[base] = line
                            else:
                                w = base + 1
                                while ways[w] != line:
                                    w += 1
                                while w > base:
                                    ways[w] = ways[w - 1]
                                    w -= 1
                                ways[base] = line
                    else:
                        # multi-line span: probe everything before
                        # touching anything -- a failure must leave the
                        # cache untouched so the slow path replays the
                        # record from scratch
                        lo, hi, wr = v
                        ok = True
                        if wr:
                            for line in range(lo, hi + 1):
                                st = sget(line)
                                if st is None or st < EXC:
                                    ok = False
                                    break
                        else:
                            for line in range(lo, hi + 1):
                                if sget(line) is None:
                                    ok = False
                                    break
                        if not ok:
                            break
                        # touch in ascending line order -- literally the
                        # reference interpreter's chunk order
                        for line in range(lo, hi + 1):
                            if wr:
                                cstate[line] = MOD  # silent E->M included
                            base = (line & set_mask) * assoc
                            if ways[base] != line:
                                if assoc == 2:
                                    ways[base + 1] = ways[base]
                                    ways[base] = line
                                else:
                                    w = base + 1
                                    while ways[w] != line:
                                        w += 1
                                    while w > base:
                                        ways[w] = ways[w - 1]
                                        w -= 1
                                    ways[base] = line
                    k += 1
                    if k >= j:
                        break
                    prev = v
                    v = fp_code[k]  # never None inside an eligible run
                if k > i:
                    # retire records [i, k) in one step
                    budget -= k - i - 1
                    d = fp_cr[k] - fp_cr[i]
                    if d:
                        ctr.read_hits += d
                    d = fp_cw[k] - fp_cw[i]
                    if d:
                        ctr.write_hits += d
                    d = fp_ci[k] - fp_ci[i]
                    if d:
                        ctr.ifetch_hits += d
                    cyc = fp_cc[k] - fp_cc[i]
                    if cyc:
                        self.time += cyc
                        met.work_cycles += cyc
                    refs = fp_cn[k] - fp_cn[i]
                    met.refs_processed += refs
                    self.idx = k
                    self.fp_windows += 1
                    self.fp_records += k - i
                    self.fp_refs += refs
                    if self._fp_log is not None:
                        self._fp_log.append((i, k))
                    if k - i < _FP_MIN_RETIRE:
                        # too short to amortize window overhead: back off
                        fp_resume = k + _FP_BACKOFF
                        self.fp_resume_at = fp_resume
                    continue
                # validation failed at record i: interpret it one access
                # at a time below (and back the gate off -- this phase of
                # the trace is missing, so attempts are pure overhead)
                fp_resume = i + _FP_BACKOFF
                self.fp_resume_at = fp_resume

            k = kinds[i]

            if k == IBLOCK:
                base = addrs[i]
                n_i = args[i]
                pos = self.pos
                blocked = False
                while pos < n_i:
                    byte = base + _INSTR_BYTES * pos
                    line = byte >> line_shift
                    word = (byte >> _WORD_SHIFT) & (wpl - 1)
                    chunk = n_i - pos
                    room = wpl - word
                    if chunk > room:
                        chunk = room
                    # inlined cache.lookup: probe + MRU refresh (the
                    # method call itself is measurable at this rate).
                    # ``st`` is None on a miss, which tests like INVALID.
                    if ilk:
                        st = sget(line)
                        if st is not None:
                            base_w = (line & set_mask) * assoc
                            if ways[base_w] != line:
                                if assoc == 2:
                                    ways[base_w + 1] = ways[base_w]
                                    ways[base_w] = line
                                else:
                                    w = base_w + 1
                                    while ways[w] != line:
                                        w += 1
                                    while w > base_w:
                                        ways[w] = ways[w - 1]
                                        w -= 1
                                    ways[base_w] = line
                    else:
                        st = cache.lookup(line)
                    if st:
                        ctr.ifetch_hits += chunk
                        pos += chunk
                    else:
                        ctr.ifetch_misses += 1
                        ctr.ifetch_hits += chunk - 1
                        met.refs_processed += chunk
                        self.pos = pos + chunk
                        self._block_on_read_miss(line, ifetch=True)
                        blocked = True
                        break
                    met.refs_processed += chunk
                if blocked:
                    return
                self.pos = 0
                c = cycs[i]
                self.time += c
                met.work_cycles += c
                self.idx = i + 1

            elif k == READ:
                base = addrs[i]
                reps = args[i]
                pos = self.pos
                blocked = False
                while pos < reps:
                    byte = base + (pos << _WORD_SHIFT)
                    line = byte >> line_shift
                    word = (byte >> _WORD_SHIFT) & (wpl - 1)
                    chunk = reps - pos
                    room = wpl - word
                    if chunk > room:
                        chunk = room
                    # inlined cache.lookup (see the IBLOCK handler)
                    if ilk:
                        st = sget(line)
                        if st is not None:
                            base_w = (line & set_mask) * assoc
                            if ways[base_w] != line:
                                if assoc == 2:
                                    ways[base_w + 1] = ways[base_w]
                                    ways[base_w] = line
                                else:
                                    w = base_w + 1
                                    while ways[w] != line:
                                        w += 1
                                    while w > base_w:
                                        ways[w] = ways[w - 1]
                                        w -= 1
                                    ways[base_w] = line
                    else:
                        st = cache.lookup(line)
                    if st:
                        ctr.read_hits += chunk
                        pos += chunk
                        met.refs_processed += chunk
                        continue
                    # A weakly-ordered read of a line whose write miss is
                    # still buffered must wait for its own store's data.
                    wop = self.pending_writes.get(line)
                    if wop is not None:
                        ctr.read_hits += chunk
                        met.refs_processed += chunk
                        self.pos = pos + chunk
                        self._block_on_op(wop)
                        blocked = True
                        break
                    # Buffer hit: our own evicted dirty copy is still
                    # queued for write-back; reclaim it.
                    if self._reclaim_from_buffer(line):
                        ctr.read_hits += chunk
                        met.refs_processed += chunk
                        pos += chunk
                        continue
                    ctr.read_misses += 1
                    ctr.read_hits += chunk - 1
                    met.refs_processed += chunk
                    self.pos = pos + chunk
                    self._block_on_read_miss(line, ifetch=False)
                    blocked = True
                    break
                if blocked:
                    return
                self.pos = 0
                self.idx = i + 1

            elif k == WRITE:
                base = addrs[i]
                reps = args[i]
                pos = self.pos
                blocked = False
                while pos < reps:
                    byte = base + (pos << _WORD_SHIFT)
                    line = byte >> line_shift
                    word = (byte >> _WORD_SHIFT) & (wpl - 1)
                    chunk = reps - pos
                    room = wpl - word
                    if chunk > room:
                        chunk = room
                    if self._writethrough:
                        # Write-through, no-allocate: every write chunk is
                        # a word-burst to memory; the cached copy (if any)
                        # is updated in place and other copies invalidate
                        # on the bus write's address phase.
                        # inlined cache.lookup; st is None on a miss,
                        # which tests and compares exactly like INVALID
                        if ilk:
                            st = sget(line)
                            if st is not None:
                                base_w = (line & set_mask) * assoc
                                if ways[base_w] != line:
                                    if assoc == 2:
                                        ways[base_w + 1] = ways[base_w]
                                        ways[base_w] = line
                                    else:
                                        w = base_w + 1
                                        while ways[w] != line:
                                            w += 1
                                        while w > base_w:
                                            ways[w] = ways[w - 1]
                                            w -= 1
                                        ways[base_w] = line
                        else:
                            st = cache.lookup(line)
                        if st:
                            ctr.write_hits += chunk
                        else:
                            ctr.write_misses += 1
                            ctr.write_hits += chunk - 1
                        met.refs_processed += chunk
                        self.pos = pos + chunk
                        wt = BusOp(WRITETHROUGH, line, self.proc)
                        if self.model.stall_on_write_miss:
                            self._stall_on_op(wt)
                            blocked = True
                            break
                        if not self.system.buffers[self.proc].has_space():
                            self.pos = pos
                            # undo the provisional counting: the access
                            # re-executes once space frees
                            if st:
                                ctr.write_hits -= chunk
                            else:
                                ctr.write_misses -= 1
                                ctr.write_hits -= chunk - 1
                            met.refs_processed -= chunk
                            self._wait_for_space()
                            blocked = True
                            break
                        self.outstanding += 1
                        self.system.issue_from_proc(wt, self.time, front=False)
                        pos += chunk
                        continue
                    # inlined cache.lookup; st is None on a miss, which
                    # compares unequal to every MESI state like INVALID
                    if ilk:
                        st = sget(line)
                        if st is not None:
                            base_w = (line & set_mask) * assoc
                            if ways[base_w] != line:
                                if assoc == 2:
                                    ways[base_w + 1] = ways[base_w]
                                    ways[base_w] = line
                                else:
                                    w = base_w + 1
                                    while ways[w] != line:
                                        w += 1
                                    while w > base_w:
                                        ways[w] = ways[w - 1]
                                        w -= 1
                                    ways[base_w] = line
                    else:
                        st = cache.lookup(line)
                    if st == MODIFIED:
                        ctr.write_hits += chunk
                        pos += chunk
                        met.refs_processed += chunk
                        continue
                    if st == EXCLUSIVE:
                        cache.set_state(line, MODIFIED)
                        ctr.write_hits += chunk
                        pos += chunk
                        met.refs_processed += chunk
                        continue
                    if st == SHARED:
                        if self._write_update:
                            # write-update protocol: broadcast the words;
                            # the line stays SHARED in every cache
                            if self.model.stall_on_upgrade:
                                ctr.write_hits += chunk
                                met.refs_processed += chunk
                                self.pos = pos + chunk
                                self._stall_on_op(BusOp(UPDATE, line, self.proc))
                                blocked = True
                                break
                            if not self.system.buffers[self.proc].has_space():
                                self.pos = pos
                                self._wait_for_space()
                                blocked = True
                                break
                            ctr.write_hits += chunk
                            met.refs_processed += chunk
                            op = BusOp(UPDATE, line, self.proc)
                            self.outstanding += 1
                            self.system.issue_from_proc(op, self.time, front=False)
                            pos += chunk
                            continue
                        if line in self.pending_upgrades:
                            # invalidation already buffered; write combines
                            ctr.write_hits += chunk
                            pos += chunk
                            met.refs_processed += chunk
                            continue
                        if self.model.stall_on_upgrade:
                            ctr.write_hits += chunk
                            met.refs_processed += chunk
                            self.pos = pos + chunk
                            self._stall_on_op(BusOp(UPGRADE, line, self.proc))
                            blocked = True
                            break
                        if not self.system.buffers[self.proc].has_space():
                            self.pos = pos  # re-execute this access on resume
                            self._wait_for_space()
                            blocked = True
                            break
                        ctr.write_hits += chunk
                        met.refs_processed += chunk
                        self.pending_upgrades.add(line)
                        op = BusOp(UPGRADE, line, self.proc)
                        self.outstanding += 1
                        self.system.issue_from_proc(op, self.time, front=False)
                        pos += chunk
                        continue
                    # miss
                    wop = self.pending_writes.get(line)
                    if wop is not None:
                        # write to a line whose RFO is already in flight
                        ctr.write_hits += chunk
                        pos += chunk
                        met.refs_processed += chunk
                        continue
                    if self._reclaim_from_buffer(line):
                        ctr.write_hits += chunk
                        met.refs_processed += chunk
                        pos += chunk
                        continue
                    if self.model.stall_on_write_miss:
                        ctr.write_misses += 1
                        ctr.write_hits += chunk - 1
                        met.refs_processed += chunk
                        self.pos = pos + chunk
                        rfo = BusOp(RFO, line, self.proc)
                        rfo.fill_state = MODIFIED
                        self._stall_on_op(rfo)
                        blocked = True
                        break
                    if not self.system.buffers[self.proc].has_space():
                        self.pos = pos  # re-execute this access on resume
                        self._wait_for_space()
                        blocked = True
                        break
                    ctr.write_misses += 1
                    ctr.write_hits += chunk - 1
                    met.refs_processed += chunk
                    rfo = BusOp(RFO, line, self.proc)
                    rfo.fill_state = MODIFIED
                    self.pending_writes[line] = rfo
                    self.outstanding += 1
                    self.system.issue_from_proc(rfo, self.time, front=False)
                    pos += chunk
                    continue
                if blocked:
                    return
                self.pos = 0
                self.idx = i + 1

            elif k == LOCK or k == UNLOCK:
                # Re-enter through the engine so the lock manager runs with
                # the global clock at this processor's local time.
                self.idx = i + 1
                kk, ident, la = k, args[i], addrs[i]
                self._sync_pending = True
                self.system.engine.at(
                    self.time, lambda t: self._begin_sync(kk, ident, la)
                )
                return

            elif k == BARRIER:
                self.idx = i + 1
                ident = args[i]
                self._sync_pending = True
                self.system.engine.at(
                    self.time, lambda t: self._begin_sync(BARRIER, ident, 0)
                )
                return

            else:  # pragma: no cover - validated traces exclude this
                raise ValueError(f"unknown record kind {k} at index {i}")

    # -- miss paths -----------------------------------------------------------------
    def _reclaim_from_buffer(self, line: int) -> bool:
        """If our own write-back of ``line`` is still buffered, pull it
        back into the cache (one-cycle buffer hit)."""
        buf = self.system.buffers[self.proc]
        wb = buf.find(WRITEBACK, line)
        if wb is None:
            return False
        buf.cancel(wb)
        self.outstanding_wb -= 1
        victim = self.cache.install(line, MODIFIED)
        self._handle_eviction(victim)
        self.time += 1
        self.metrics.stall_miss += 1  # one-cycle buffer-hit penalty
        return True

    def _block_on_read_miss(self, line: int, ifetch: bool) -> None:
        op = BusOp(READ_MISS, line, self.proc, ifetch=ifetch)
        self.state = _WAIT_MISS
        self._stall_start = self.time
        self._wait_op = op
        self.outstanding += 1
        self.system.issue_from_proc(op, self.time, front=self.model.bypass_reads)

    def _block_on_op(self, op: BusOp) -> None:
        """Stall until an already-issued operation (e.g. our own buffered
        RFO whose data a read now needs) completes."""
        self.state = _WAIT_MISS
        self._stall_start = self.time
        self._wait_op = op

    def _stall_on_op(self, op: BusOp) -> None:
        """Issue ``op`` and stall until it completes (the SC paths)."""
        self.state = _WAIT_MISS
        self._stall_start = self.time
        self._wait_op = op
        self.outstanding += 1
        self.system.issue_from_proc(op, self.time, front=False)

    def _wait_for_space(self) -> None:
        self.state = _WAIT_BUFFER
        self._stall_start = self.time
        buf = self.system.buffers[self.proc]
        t0 = self.time

        def resumed(t: int) -> None:
            # The local clock may be ahead of the engine when the slot
            # frees; the processor only stalled for the cycles past t0.
            if t > t0:
                self.metrics.stall_buffer += t - t0
            self.time = max(self.time, t)
            self.system.engine.at(self.time, self._run_cb)

        buf.wait_for_space(resumed)

    def _handle_eviction(self, victim) -> None:
        if victim is None:
            return
        vline, dirty = victim
        if dirty:
            wb = BusOp(WRITEBACK, vline, self.proc)
            self.outstanding_wb += 1
            self.cache.counters.writebacks += 1
            self.system.issue_from_proc(wb, self.time, front=False)

    # -- synchronization points --------------------------------------------------------
    def _begin_sync(self, kind: int, ident: int, lock_addr: int) -> None:
        """LOCK/UNLOCK/BARRIER record: drain if weakly ordered, then hand
        off to the lock/barrier manager."""
        self._sync_pending = False
        if self.model.drain_at_sync:
            self.metrics.drains += 1
            if self.outstanding > 0:
                self.metrics.drains_nonempty += 1
                self._draining = True
                self._stall_start = self.time
                self.state = _WAIT_DRAIN
                self._post_drain = (kind, ident, lock_addr)
                return
        self._sync_action(kind, ident, lock_addr)

    def _sync_action(self, kind: int, ident: int, lock_addr: int) -> None:
        self.state = _WAIT_LOCK
        self._stall_start = self.time
        line = lock_addr >> self._line_shift

        def resumed(t: int, contended: bool) -> None:
            # The paper's "lock wait" stall cause is time lost *waiting*
            # for a held lock; the memory-access overhead of uncontended
            # acquires/releases stalls the processor like any other
            # memory access (Pverify: 555 lock pairs, 0.0% lock stalls).
            if contended:
                self.metrics.stall_lock += t - self._stall_start
            else:
                self.metrics.stall_miss += t - self._stall_start
            self.time = max(self.time, t)
            self.state = _RUNNING
            self.system.engine.at(self.time, self._run_cb)

        if kind == LOCK:
            self.system.lock_acquire(self.proc, ident, line, self.time, resumed)
        elif kind == UNLOCK:
            self.system.lock_release(self.proc, ident, line, self.time, resumed)
        else:  # BARRIER
            self.system.barrier_arrive(self.proc, ident, self.time, resumed)

    # -- completion notifications (called by the System) ----------------------------------
    def _op_complete(self, op: BusOp, t: int) -> None:
        if op.kind == WRITEBACK:
            self.outstanding_wb -= 1
            return  # write-backs never unblock the processor
        self.outstanding -= 1
        if op.kind == RFO and self.pending_writes.get(op.line) is op:
            del self.pending_writes[op.line]
        elif op.kind == UPGRADE:
            self.pending_upgrades.discard(op.line)

        if self.state == _WAIT_MISS and self._wait_op is op:
            # The waited-on op may have been issued before the stall began
            # (a pending write the processor later blocked on), so it can
            # complete before the run-ahead local clock: no stall at all.
            if t > self._stall_start:
                self.metrics.stall_miss += t - self._stall_start
            self._wait_op = None
            self.time = max(self.time, t)
            self.state = _RUNNING
            t2 = self.time
            eng = self._engine
            if self._sched_inline and type(t2) is int:
                # inlined Engine.at: t2 = max(local, t) >= t = now
                buckets = eng._buckets
                b = buckets.get(t2)
                if b is None:
                    buckets[t2] = [self._run_cb]
                    _heappush(eng._times, t2)
                else:
                    b.append(self._run_cb)
                eng._pending += 1
            else:
                eng.at(t2, self._run_cb)
        elif self.state == _WAIT_DRAIN and self.outstanding == 0:
            if t > self._stall_start:
                self.metrics.stall_drain += t - self._stall_start
            self._draining = False
            self.time = max(self.time, t)
            kind, ident, lock_addr = self._post_drain
            self._sync_action(kind, ident, lock_addr)

    def install_fill(self, op: BusOp, t: int) -> None:
        """A READ_MISS/RFO (or converted UPGRADE) fetched its line."""
        victim = self.cache.install(op.line, op.fill_state)
        self._handle_eviction(victim)
