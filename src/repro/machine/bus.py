"""Split-transaction bus with round-robin arbitration (§2.2).

The bus serializes the address/data phases of all coherence traffic.  A
*split transaction* occurs on memory requests: the bus is held only for
the address phase (one cycle); while the memory module works, the bus is
free, and the data return is a separate arbitration (memory is a bus
requester like any processor).  Everything else (cache-to-cache
transfers, write-backs, invalidations) holds the bus for its full
duration.

The arbiter scans ports round-robin starting after the last grantee.  A
port whose head operation is not *issuable* (it needs a memory-input
buffer slot and none is free) is skipped -- the transaction waits in its
cache--bus buffer without holding the bus.

Two interchangeable arbiter implementations live here, selected by the
``fast_path`` constructor flag (wired to ``MachineConfig.bus_fast_path``,
CLI ``--no-bus-fast-path``):

* the **reference arbiter** (:meth:`Bus._grant_ref`) keeps the waiting
  ports in a set, sorts it per arbitration, and rotates the sorted order
  to start after the last grantee; each grant with a completion callback
  allocates a fresh fire closure;
* the **fast arbiter** (:meth:`Bus._grant_fast`) keeps the same waiting
  membership as an integer bitmask and *rotates the mask* instead of
  sorting: ``rot = (mask >> rr) | (mask << (n - rr))`` maps port ``p``
  to bit ``(p - rr) mod n``, so peeling lowest set bits visits ports in
  exactly the ascending-wraparound-from-``rr`` order of the reference
  scan (the map ``p -> (p - rr) mod n`` is strictly increasing along
  that order, and every member port appears).  Grant, completion fire
  and release are fused into one preallocated bound-method engine event
  (:meth:`Bus._fire`) with the completion carried in a single
  ``_pending_done`` slot -- legal because the bus holds at most one
  transaction, so between a grant and its fire no other grant can
  overwrite the slot.

Both paths are differentially verified byte-identical on every suite
cell (``python -m repro diff-verify``), and the busproto auditor's
round-robin/fairness/overlap checkers run unchanged against either.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Callable, Protocol

from .buffers import DATA_RETURN, LOCK_INVAL, LOCK_XFER, OP_NAMES, BusOp
from .engine import Engine

__all__ = ["Bus", "BusPort", "BusService"]

#: bus operation kinds are the small ints 0..len(OP_NAMES)-1, so per-kind
#: grant counters live in a flat list indexed by kind (the old dict paid a
#: hash + ``dict.get`` on every grant)
_N_OP_KINDS = len(OP_NAMES)

#: kinds for which BusService.can_issue is statically True with no side
#: effects (they need nothing but the bus itself -- see System.can_issue);
#: the fast arbiter skips the call for them.  A bitmask so the test is a
#: single shift-and-AND on the small-int kind.
_ALWAYS_ISSUABLE = (1 << DATA_RETURN) | (1 << LOCK_INVAL) | (1 << LOCK_XFER)


class BusPort(Protocol):
    """Anything the arbiter can draw operations from.

    ``entries`` is the port's underlying queue; the arbiter tests its
    truthiness directly to skip empty ports without a method call (the
    scan is the hottest loop outside the trace interpreter).  ``peek``
    is only consulted for non-empty ports and may clean up lazily
    cancelled entries.

    ``ready_cb`` is assigned by :meth:`Bus.add_port`; the port MUST call
    it (no arguments) on every enqueue.  It marks the port as possibly
    ready, so the arbiter only ever scans ports that have signalled work
    since it last saw them empty -- the scan set shrinks from "all
    ports" to "ports with traffic in flight".

    ``entries`` must be a *stable reference* (the same queue object for
    the port's whole lifetime): the fast arbiter caches it in a flat
    per-port table at :meth:`Bus.add_port` time.
    """

    entries: object  # sized/truthy queue of pending operations
    ready_cb: Callable[[], None] | None

    def peek(self) -> BusOp | None: ...

    def pop(self) -> BusOp: ...


class BusService(Protocol):
    """The system-side executor of granted operations."""

    def can_issue(self, op: BusOp, time: int) -> bool: ...

    def execute(self, op: BusOp, time: int) -> tuple[int, Callable | None]:
        """Perform the operation's snoop/state effects; return ``(hold,
        done)``: the number of cycles the bus is held, and an optional
        completion callback the bus invokes at ``time + hold``
        immediately before releasing.  Returning the callback (instead
        of the service scheduling it) lets the bus fire completion and
        release as ONE engine event; because the two were always
        scheduled back-to-back for the same cycle with nothing in
        between, the merged dispatch order is identical."""
        ...


class Bus:
    """Round-robin arbitrated bus."""

    def __init__(
        self, engine: Engine, service: BusService, fast_path: bool = True
    ) -> None:
        self.engine = engine
        self.service = service
        self.ports: list[BusPort] = []
        self.busy = False
        self._rr = 0
        self.fast_path = fast_path
        # reference arbiter: indices of ports that may have pending work
        self._waiting: set[int] = set()
        # fast arbiter: the same membership as a bitmask (bit i = port i)
        self._ready = 0
        self._full_mask = 0
        self._n_ports = 0
        # fast arbiter: per-port (entries, peek, pop) tables, parallel to
        # ``ports`` -- the scan indexes flat lists instead of chasing
        # object attributes.  The service's can_issue/execute are looked
        # up per call on purpose: tests and tools shadow them on the
        # system instance after construction (e.g. to log grant order).
        self._port_entries: list = []
        self._port_peek: list = []
        self._port_pop: list = []
        self._engine_at = engine.at
        # fast arbiter: the granted transaction's completion, fired by
        # the preallocated _fire event (single slot: one transaction on
        # the bus at a time)
        self._pending_done: Callable[[int], None] | None = None
        self._fire_cb = self._fire
        # inline engine scheduling (bucket append without the ``at``
        # call) is only exact against the production Engine's internals
        self._sched_inline = fast_path and type(engine) is Engine
        if fast_path:
            # shadow the bound arbiter so kick/_fire dispatch without a
            # per-call mode test
            self._grant = self._grant_fast
        # statistics
        self.busy_cycles = 0
        self._op_counts = [0] * _N_OP_KINDS
        self.grants = 0
        #: optional observer called as observer(op, grant_time, hold)
        #: after every grant (see repro.machine.buslog)
        self.observer = None
        #: optional runtime invariant auditor (see repro.audit)
        self.audit = None

    def add_port(self, port: BusPort) -> int:
        """Register a port; returns its index.

        The port's ``ready_cb`` is bound to mark it in the arbiter's
        waiting set (reference) or bitmask (fast).  Membership is a
        superset of "non-empty": stale entries are discarded when a scan
        finds the port empty.
        """
        self.ports.append(port)
        idx = len(self.ports) - 1
        self._n_ports = len(self.ports)
        self._full_mask = (1 << len(self.ports)) - 1
        self._port_entries.append(port.entries)
        self._port_peek.append(port.peek)
        self._port_pop.append(port.pop)
        if self.fast_path:
            bit = 1 << idx

            def ready(bus=self, bit=bit):
                bus._ready |= bit

            port.ready_cb = ready
            if getattr(port, "entries", None):
                self._ready |= bit
        else:
            waiting = self._waiting
            port.ready_cb = lambda _add=waiting.add, _i=idx: _add(_i)
            if getattr(port, "entries", None):
                waiting.add(idx)
        return idx

    # -- operation ------------------------------------------------------------
    def kick(self, time: int) -> None:
        """Re-arbitrate if idle.  Call whenever a port gains a new head
        operation or an issuability condition may have changed."""
        if not self.busy:
            self._grant(time)

    # -- fast arbiter ---------------------------------------------------------
    def _grant_fast(self, time: int) -> None:
        mask = self._ready
        if not mask:
            return
        n = self._n_ports
        # the service's entry points are looked up per call on purpose:
        # tests and tools shadow them on the system instance after
        # construction (e.g. to log grant order)
        service = self.service
        entries_tab = self._port_entries
        peek_tab = self._port_peek
        audit = self.audit
        if audit is not None:
            audit.on_arbitrate(time)
        rr = self._rr
        # Rotate the membership mask so bit k is port (rr + k) mod n,
        # then peel lowest set bits: ports are visited in the same
        # ascending-from-_rr wrap-around order as a full scan, without
        # sorting (skipped non-member ports are provably empty).
        rot = (mask >> rr) | ((mask << (n - rr)) & self._full_mask)
        while rot:
            idx = rr + ((rot & -rot).bit_length() - 1)
            if idx >= n:
                idx -= n
            op = peek_tab[idx]() if entries_tab[idx] else None
            if op is None:  # empty, or all entries lazily-cancelled
                self._ready &= ~(1 << idx)
            elif (_ALWAYS_ISSUABLE >> op.kind) & 1 or service.can_issue(op, time):
                self._port_pop[idx]()
                if not entries_tab[idx]:
                    self._ready &= ~(1 << idx)
                self._rr = idx + 1 if idx + 1 < n else 0
                self.busy = True
                op.issued_at = time
                if audit is not None:
                    audit.on_grant_pre(op, time, idx)
                hold, done = service.execute(op, time)
                if hold < 1:
                    raise ValueError(
                        f"bus op {op} reported hold of {hold} cycles"
                    )
                self.busy_cycles += hold
                self.grants += 1
                self._op_counts[op.kind] += 1
                if self.observer is not None:
                    self.observer(op, time, hold)
                if audit is not None:
                    audit.on_grant_post(op, time, hold, idx)
                # fuse completion + release into ONE preallocated event
                self._pending_done = done
                t2 = time + hold
                eng = self.engine
                if self._sched_inline and type(t2) is int and t2 >= eng.now:
                    # inlined Engine.at (the guard re-proves its checks)
                    buckets = eng._buckets
                    b = buckets.get(t2)
                    if b is None:
                        buckets[t2] = [self._fire_cb]
                        _heappush(eng._times, t2)
                    else:
                        b.append(self._fire_cb)
                    eng._pending += 1
                else:
                    self._engine_at(t2, self._fire_cb)
                return
            else:
                if audit is not None:
                    audit.on_skip(idx, op, time)
            rot &= rot - 1
        # nothing issuable: bus idles until the next kick

    def _fire(self, t: int) -> None:
        """The granted transaction's bus tenancy ended: fire its
        completion (with the bus still held, exactly as the reference
        path does) and release in the same engine event."""
        done = self._pending_done
        if done is not None:
            self._pending_done = None
            done(t)
        self.busy = False
        self._grant(t)

    # -- reference arbiter ----------------------------------------------------
    def _grant(self, time: int) -> None:
        waiting = self._waiting
        if not waiting:
            return
        ports = self.ports
        n = len(ports)
        service = self.service
        audit = self.audit
        if audit is not None:
            audit.on_arbitrate(time)
        # Scan only possibly-ready ports, in the same ascending-from-_rr
        # wrap-around order as a full scan (so grant decisions are
        # identical: skipped ports are provably empty).
        if len(waiting) == 1:
            order = tuple(waiting)
        else:
            order = sorted(waiting)
            rr = self._rr
            if order[0] < rr <= order[-1]:
                for s, x in enumerate(order):
                    if x >= rr:
                        order = order[s:] + order[:s]
                        break
        for idx in order:
            port = ports[idx]
            if not port.entries:
                waiting.discard(idx)
                continue
            op = port.peek()
            if op is None:  # all entries were lazily-dropped cancellations
                waiting.discard(idx)
                continue
            if not service.can_issue(op, time):
                if audit is not None:
                    audit.on_skip(idx, op, time)
                continue
            port.pop()
            if not port.entries:
                waiting.discard(idx)
            self._rr = idx + 1 if idx + 1 < n else 0
            self.busy = True
            op.issued_at = time
            if audit is not None:
                audit.on_grant_pre(op, time, idx)
            hold, done = service.execute(op, time)
            if hold < 1:
                raise ValueError(f"bus op {op} reported hold of {hold} cycles")
            self.busy_cycles += hold
            self.grants += 1
            self._op_counts[op.kind] += 1
            if self.observer is not None:
                self.observer(op, time, hold)
            if audit is not None:
                audit.on_grant_post(op, time, hold, idx)
            if done is None:
                self.engine.at(time + hold, self._release)
            else:

                def _fire(t, done=done):
                    done(t)
                    self._release(t)

                self.engine.at(time + hold, _fire)
            return
        # nothing issuable: bus idles until the next kick

    def _release(self, time: int) -> None:
        self.busy = False
        self._grant(time)

    # -- statistics -----------------------------------------------------------
    @property
    def op_counts(self) -> dict[int, int]:
        """Per-kind grant counts, as the dict the results serialize
        (kinds that were never granted are absent, matching the old
        dict-backed counter)."""
        return {k: c for k, c in enumerate(self._op_counts) if c}

    def utilization(self, total_cycles: int) -> float:
        return self.busy_cycles / total_cycles if total_cycles else 0.0
