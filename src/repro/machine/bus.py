"""Split-transaction bus with round-robin arbitration (§2.2).

The bus serializes the address/data phases of all coherence traffic.  A
*split transaction* occurs on memory requests: the bus is held only for
the address phase (one cycle); while the memory module works, the bus is
free, and the data return is a separate arbitration (memory is a bus
requester like any processor).  Everything else (cache-to-cache
transfers, write-backs, invalidations) holds the bus for its full
duration.

The arbiter scans ports round-robin starting after the last grantee.  A
port whose head operation is not *issuable* (it needs a memory-input
buffer slot and none is free) is skipped -- the transaction waits in its
cache--bus buffer without holding the bus.
"""

from __future__ import annotations

from typing import Callable, Protocol

from .buffers import BusOp
from .engine import Engine

__all__ = ["Bus", "BusPort", "BusService"]


class BusPort(Protocol):
    """Anything the arbiter can draw operations from.

    ``entries`` is the port's underlying queue; the arbiter tests its
    truthiness directly to skip empty ports without a method call (the
    scan is the hottest loop outside the trace interpreter).  ``peek``
    is only consulted for non-empty ports and may clean up lazily
    cancelled entries.

    ``ready_cb`` is assigned by :meth:`Bus.add_port`; the port MUST call
    it (no arguments) on every enqueue.  It marks the port as possibly
    ready, so the arbiter only ever scans ports that have signalled work
    since it last saw them empty -- the scan set shrinks from "all
    ports" to "ports with traffic in flight".
    """

    entries: object  # sized/truthy queue of pending operations
    ready_cb: Callable[[], None] | None

    def peek(self) -> BusOp | None: ...

    def pop(self) -> BusOp: ...


class BusService(Protocol):
    """The system-side executor of granted operations."""

    def can_issue(self, op: BusOp, time: int) -> bool: ...

    def execute(self, op: BusOp, time: int) -> tuple[int, Callable | None]:
        """Perform the operation's snoop/state effects; return ``(hold,
        done)``: the number of cycles the bus is held, and an optional
        completion callback the bus invokes at ``time + hold``
        immediately before releasing.  Returning the callback (instead
        of the service scheduling it) lets the bus fire completion and
        release as ONE engine event; because the two were always
        scheduled back-to-back for the same cycle with nothing in
        between, the merged dispatch order is identical."""
        ...


class Bus:
    """Round-robin arbitrated bus."""

    def __init__(self, engine: Engine, service: BusService) -> None:
        self.engine = engine
        self.service = service
        self.ports: list[BusPort] = []
        self.busy = False
        self._rr = 0
        # indices of ports that may have pending work (see add_port)
        self._waiting: set[int] = set()
        # statistics
        self.busy_cycles = 0
        self.op_counts: dict[int, int] = {}
        self.grants = 0
        #: optional observer called as observer(op, grant_time, hold)
        #: after every grant (see repro.machine.buslog)
        self.observer = None
        #: optional runtime invariant auditor (see repro.audit)
        self.audit = None

    def add_port(self, port: BusPort) -> int:
        """Register a port; returns its index.

        The port's ``ready_cb`` is bound to mark it in the arbiter's
        waiting set.  Membership is a superset of "non-empty": stale
        entries are discarded when a scan finds the port empty.
        """
        self.ports.append(port)
        idx = len(self.ports) - 1
        waiting = self._waiting
        port.ready_cb = lambda _add=waiting.add, _i=idx: _add(_i)
        if getattr(port, "entries", None):
            waiting.add(idx)
        return idx

    # -- operation ------------------------------------------------------------
    def kick(self, time: int) -> None:
        """Re-arbitrate if idle.  Call whenever a port gains a new head
        operation or an issuability condition may have changed."""
        if not self.busy:
            self._grant(time)

    def _grant(self, time: int) -> None:
        waiting = self._waiting
        if not waiting:
            return
        ports = self.ports
        n = len(ports)
        service = self.service
        audit = self.audit
        if audit is not None:
            audit.on_arbitrate(time)
        # Scan only possibly-ready ports, in the same ascending-from-_rr
        # wrap-around order as a full scan (so grant decisions are
        # identical: skipped ports are provably empty).
        if len(waiting) == 1:
            order = tuple(waiting)
        else:
            order = sorted(waiting)
            rr = self._rr
            if order[0] < rr <= order[-1]:
                for s, x in enumerate(order):
                    if x >= rr:
                        order = order[s:] + order[:s]
                        break
        for idx in order:
            port = ports[idx]
            if not port.entries:
                waiting.discard(idx)
                continue
            op = port.peek()
            if op is None:  # all entries were lazily-dropped cancellations
                waiting.discard(idx)
                continue
            if not service.can_issue(op, time):
                if audit is not None:
                    audit.on_skip(idx, op, time)
                continue
            port.pop()
            if not port.entries:
                waiting.discard(idx)
            self._rr = idx + 1 if idx + 1 < n else 0
            self.busy = True
            op.issued_at = time
            if audit is not None:
                audit.on_grant_pre(op, time, idx)
            hold, done = service.execute(op, time)
            if hold < 1:
                raise ValueError(f"bus op {op} reported hold of {hold} cycles")
            self.busy_cycles += hold
            self.grants += 1
            self.op_counts[op.kind] = self.op_counts.get(op.kind, 0) + 1
            if self.observer is not None:
                self.observer(op, time, hold)
            if audit is not None:
                audit.on_grant_post(op, time, hold, idx)
            if done is None:
                self.engine.at(time + hold, self._release)
            else:

                def _fire(t, done=done):
                    done(t)
                    self._release(t)

                self.engine.at(time + hold, _fire)
            return
        # nothing issuable: bus idles until the next kick

    def _release(self, time: int) -> None:
        self.busy = False
        self._grant(time)

    # -- statistics -----------------------------------------------------------
    def utilization(self, total_cycles: int) -> float:
        return self.busy_cycles / total_cycles if total_cycles else 0.0
