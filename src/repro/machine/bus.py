"""Split-transaction bus with round-robin arbitration (§2.2).

The bus serializes the address/data phases of all coherence traffic.  A
*split transaction* occurs on memory requests: the bus is held only for
the address phase (one cycle); while the memory module works, the bus is
free, and the data return is a separate arbitration (memory is a bus
requester like any processor).  Everything else (cache-to-cache
transfers, write-backs, invalidations) holds the bus for its full
duration.

The arbiter scans ports round-robin starting after the last grantee.  A
port whose head operation is not *issuable* (it needs a memory-input
buffer slot and none is free) is skipped -- the transaction waits in its
cache--bus buffer without holding the bus.
"""

from __future__ import annotations

from typing import Protocol

from .buffers import BusOp
from .engine import Engine

__all__ = ["Bus", "BusPort", "BusService"]


class BusPort(Protocol):
    """Anything the arbiter can draw operations from."""

    def peek(self) -> BusOp | None: ...

    def pop(self) -> BusOp: ...


class BusService(Protocol):
    """The system-side executor of granted operations."""

    def can_issue(self, op: BusOp, time: int) -> bool: ...

    def execute(self, op: BusOp, time: int) -> int:
        """Perform the operation's snoop/state effects; return the number
        of cycles the bus is held."""
        ...


class Bus:
    """Round-robin arbitrated bus."""

    def __init__(self, engine: Engine, service: BusService) -> None:
        self.engine = engine
        self.service = service
        self.ports: list[BusPort] = []
        self.busy = False
        self._rr = 0
        # statistics
        self.busy_cycles = 0
        self.op_counts: dict[int, int] = {}
        self.grants = 0
        #: optional observer called as observer(op, grant_time, hold)
        #: after every grant (see repro.machine.buslog)
        self.observer = None

    def add_port(self, port: BusPort) -> int:
        """Register a port; returns its index."""
        self.ports.append(port)
        return len(self.ports) - 1

    # -- operation ------------------------------------------------------------
    def kick(self, time: int) -> None:
        """Re-arbitrate if idle.  Call whenever a port gains a new head
        operation or an issuability condition may have changed."""
        if not self.busy:
            self._grant(time)

    def _grant(self, time: int) -> None:
        n = len(self.ports)
        for i in range(n):
            idx = (self._rr + i) % n
            op = self.ports[idx].peek()
            if op is None:
                continue
            if not self.service.can_issue(op, time):
                continue
            self.ports[idx].pop()
            self._rr = (idx + 1) % n
            self.busy = True
            op.issued_at = time
            hold = self.service.execute(op, time)
            if hold < 1:
                raise ValueError(f"bus op {op} reported hold of {hold} cycles")
            self.busy_cycles += hold
            self.grants += 1
            self.op_counts[op.kind] = self.op_counts.get(op.kind, 0) + 1
            if self.observer is not None:
                self.observer(op, time, hold)
            self.engine.at(time + hold, self._release)
            return
        # nothing issuable: bus idles until the next kick

    def _release(self, time: int) -> None:
        self.busy = False
        self._grant(time)

    # -- statistics -----------------------------------------------------------
    def utilization(self, total_cycles: int) -> float:
        return self.busy_cycles / total_cycles if total_cycles else 0.0
