"""The simulated machine: processors, caches, buffers, bus, memory,
lock manager and consistency model wired together.

This module is the bus *service*: it decides, at arbitration and grant
time, what each bus operation does -- who snoops, who supplies a line
cache-to-cache, when memory is involved -- and it routes completions back
to the processors and lock managers.  Timing follows §2.2:

* address/request phase: 1 bus cycle;
* memory access: 3 cycles, overlapped with bus activity (split
  transaction), behind 2-entry input/output buffers;
* data phase: 2 bus cycles for a 16-byte line on the 8-byte bus;
* cache-to-cache transfer: address + data back-to-back (3 cycles), with
  memory updated during the transfer when the source line was dirty
  (Illinois protocol);
* invalidation signal: 1 address-only cycle.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush as _heappush
from typing import Callable

from ..consistency.base import ConsistencyModel
from ..sync.base import LockManager
from ..trace.records import TraceSet
from .buffers import (
    DATA_RETURN,
    LOCK_INVAL,
    LOCK_MEM,
    LOCK_READ,
    LOCK_RFO,
    LOCK_XFER,
    READ_MISS,
    RFO,
    UPDATE,
    UPGRADE,
    WRITEBACK,
    WRITETHROUGH,
    BusOp,
    CacheBusBuffer,
)
from .bus import Bus
from .cache import EXCLUSIVE, MODIFIED, SHARED, Cache
from .config import MachineConfig
from .engine import Engine
from .memory import Memory
from .metrics import RunResult
from .processor import Processor

__all__ = ["System", "simulate"]


class System:
    """One complete simulation instance (single use: build, run, read)."""

    def __init__(
        self,
        traceset: TraceSet,
        config: MachineConfig,
        lock_manager: LockManager,
        model: ConsistencyModel,
        barrier_manager=None,
        max_events: int | None = None,
        engine_factory: Callable[[], Engine] | None = None,
    ) -> None:
        if traceset.n_procs != config.n_procs:
            config = config.with_procs(traceset.n_procs)
        self.traceset = traceset
        self.config = config
        self.model = model
        self.engine = (engine_factory or Engine)()
        # the engine's bucket-iteration shortcut rides the same escape
        # hatch as the rest of the contended-path bundle (HeapEngine has
        # no such knob: it dispatches one event per heap entry either way)
        if hasattr(self.engine, "fast_dispatch"):
            self.engine.fast_dispatch = config.bus_fast_path
        #: optional runtime invariant auditor (see repro.audit)
        self.audit = None
        self.locks = lock_manager
        self.locks.attach(self)
        self.barriers = barrier_manager
        if self.barriers is not None:
            self.barriers.attach(self)
        self.max_events = max_events

        from .coherence import get_protocol

        self.protocol = get_protocol(config.coherence)
        self.memory = Memory(
            self.engine, config.memory, fast_path=config.bus_fast_path
        )
        self.bus = Bus(self.engine, self, fast_path=config.bus_fast_path)
        self.memory._bus_kick = self.bus.kick

        n = config.n_procs
        self.caches = [
            Cache(config.cache, fast_path=config.bus_fast_path) for _ in range(n)
        ]
        #: machine-wide residency directory: line -> [procs caching it].
        #: Maintained exactly by the caches; lets the bus service snoop
        #: only actual holders and find c2c suppliers without scanning
        #: every cache (see docs/performance.md).
        self.directory: dict[int, list[int]] = {}
        for p, cache in enumerate(self.caches):
            cache.attach_directory(self.directory, p)
        # contended-path fast path: machine-wide count of live buffered
        # write-backs (shared int cell maintained by the buffers).  When
        # zero -- the overwhelmingly common case -- the supplier search
        # and the RFO write-back sweep skip the all-buffers scan.
        self._wb_total = [0] if config.bus_fast_path else None
        self.buffers = [
            CacheBusBuffer(
                p, config.cachebus_buffer_depth, wb_shared=self._wb_total
            )
            for p in range(n)
        ]
        for buf in self.buffers:
            self.bus.add_port(buf)
        self.bus.add_port(self.memory.port)

        self.procs = [
            Processor(
                p,
                traceset[p],
                self.caches[p],
                self,
                model,
                config.batch_records,
                fast_path=config.fast_path,
                bus_fast_path=config.bus_fast_path,
            )
            for p in range(n)
        ]
        self._done_count = 0
        self._line_data_cycles = config.line_data_cycles
        self._addr_cycles = config.bus.addr_cycles
        self.upgrade_conversions = 0
        self._ran = False
        # MSHR-style in-flight fill tracking: line -> fetching processor.
        # A second miss on a line whose fill is still in flight waits in
        # its buffer until the fill lands (the arbiter skips it), then is
        # serviced cache-to-cache -- without this, two simultaneous
        # misses could both install EXCLUSIVE.
        self._fills_in_flight: dict[int, int] = {}
        # grant-time dispatch: op kind -> executor (replaces an if-chain
        # walked once per bus grant)
        self._exec_table = {
            READ_MISS: self._exec_read_miss,
            RFO: self._exec_rfo,
            UPGRADE: self._exec_upgrade,
            WRITEBACK: self._exec_writeback,
            WRITETHROUGH: self._exec_writethrough,
            UPDATE: self._exec_update,
            LOCK_MEM: self._exec_lock_mem,
            LOCK_READ: self._exec_lock_read,
            LOCK_RFO: self._exec_lock_rfo,
            LOCK_INVAL: self._exec_lock_inval,
            LOCK_XFER: self._exec_lock_xfer,
            DATA_RETURN: self._exec_data_return,
        }

        # Contended-path fast path (MachineConfig.bus_fast_path): fused
        # uncontended timelines.  Holds are precomputed once; executors
        # carry the granted op in a single slot (_done_op) and return one
        # of four preallocated completion trampolines instead of a fresh
        # closure per grant -- legal because the bus holds at most one
        # transaction, so between execute() and its fire no other
        # execute() can overwrite the slot.  The dispatch table is a flat
        # list indexed by the (small-int) op kind.
        self._hold_xfer = self._addr_cycles + self._line_data_cycles
        self._hold_word = self._addr_cycles + 1
        self._done_op: BusOp | None = None
        self._cb_arrive = self._complete_arrive
        self._cb_fill = self._complete_fill
        self._cb_op = self._complete_op
        self._cb_write = self._complete_write
        self._cb_split = self._complete_split
        if config.bus_fast_path:
            table = [None] * len(self._exec_table)
            for kind, handler in {
                READ_MISS: self._fexec_read_miss,
                RFO: self._fexec_rfo,
                UPGRADE: self._fexec_upgrade,
                WRITEBACK: self._fexec_writeback,
                WRITETHROUGH: self._fexec_writethrough,
                UPDATE: self._fexec_update,
                LOCK_MEM: self._fexec_lock_mem,
                LOCK_READ: self._fexec_lock_read,
                LOCK_RFO: self._fexec_lock_rfo,
                LOCK_INVAL: self._exec_lock_inval,
                LOCK_XFER: self._exec_lock_xfer,
                DATA_RETURN: self._fexec_data_return,
            }.items():
                table[kind] = handler
            self._exec_list = table
            # shadow the protocol method with the fast dispatcher
            self.execute = self._execute_fast
            # Per-processor issue queues + preallocated push trampolines
            # replace the per-issue closure of the reference
            # issue_from_proc.  Legal because one processor's scheduled
            # issue times are non-decreasing (its local clock and the
            # global clock both only advance, so max(local, now) is
            # monotone): the trampoline events for a processor fire in
            # exactly the order its entries were queued, so each pop
            # yields the op the dropped closure would have captured.
            self._issue_q = [deque() for _ in range(n)]
            self._issue_cbs = [self._make_issue_cb(p) for p in range(n)]
            self.issue_from_proc = self._issue_from_proc_fast
        # inline engine scheduling (bucket append without the ``at`` call)
        # is only exact against the production Engine's internals
        self._sched_inline = config.bus_fast_path and type(self.engine) is Engine

        #: columnar segment-retirement kernel (MachineConfig.segment_kernel):
        #: collapses machine-wide quiet segments into one engine event per
        #: processor.  Replays the production Engine's bucket insertion
        #: order exactly, so -- like the inline-scheduling shortcuts -- it
        #: auto-disables on the reference HeapEngine.  Built before the
        #: auditor attaches so audit mode sees every collapse.
        self.kernel = None
        if type(self.engine) is Engine:
            if config.spin_kernel:
                # the spin-phase kernel subsumes the segment kernel; the
                # segment_kernel knob keeps controlling whether zero-
                # waiter quiet segments collapse, so the two toggles stay
                # independent in the differential grid
                from .spinphase import SpinKernel

                self.kernel = SpinKernel(
                    self, collapse_quiet=config.segment_kernel
                )
            elif config.segment_kernel:
                from .kernel import SegmentKernel

                self.kernel = SegmentKernel(self)

        from ..audit import maybe_attach

        maybe_attach(self, force=config.audit)

    # ------------------------------------------------------------------
    # Processor-facing services
    # ------------------------------------------------------------------
    def issue_from_proc(self, op: BusOp, at_time: int, front: bool) -> None:
        """Queue ``op`` in its processor's cache--bus buffer at the
        processor's local time (clamped to the global clock)."""
        t = max(at_time, self.engine.now)

        def push(now: int) -> None:
            buf = self.buffers[op.proc]
            if front:
                buf.push_front(op)
            else:
                buf.push(op)
            self.bus.kick(now)

        self.engine.at(t, push)

    def _make_issue_cb(self, p: int):
        """Preallocated push trampoline for processor ``p`` (fast path)."""
        q = self._issue_q[p]
        buf = self.buffers[p]

        def push(now: int, _pop=q.popleft, _buf=buf) -> None:
            op, front = _pop()
            if front:
                _buf.push_front(op)
            else:
                _buf.push(op)
            self.bus.kick(now)

        return push

    def _issue_from_proc_fast(self, op: BusOp, at_time: int, front: bool) -> None:
        """issue_from_proc without the per-issue closure: queue the entry
        and schedule the processor's trampoline (see __init__)."""
        eng = self.engine
        now = eng.now
        t = at_time if at_time > now else now
        self._issue_q[op.proc].append((op, front))
        cb = self._issue_cbs[op.proc]
        if self._sched_inline and type(t) is int:
            # inlined Engine.at: t >= now by construction
            buckets = eng._buckets
            b = buckets.get(t)
            if b is None:
                buckets[t] = [cb]
                _heappush(eng._times, t)
            else:
                b.append(cb)
            eng._pending += 1
        else:
            eng.at(t, cb)

    def on_proc_done(self, proc: int, t: int) -> None:
        self._done_count += 1

    # ------------------------------------------------------------------
    # Lock/barrier-facing services (LockPortAPI)
    # ------------------------------------------------------------------
    def issue_lock_op(
        self,
        proc: int,
        kind: int,
        line: int,
        on_done: Callable[[int], None],
        front: bool = False,
    ) -> None:
        op = BusOp(kind, line, proc)
        op.on_done = on_done
        # Lock-line operations are always accepted: the issuing processor
        # is stalled at a synchronization point, so its buffer is at its
        # shallowest, and lock words never generate write-backs.
        buf = self.buffers[proc]
        if front:
            buf.push_front(op)
        else:
            buf.push(op)
        self.bus.kick(self.engine.now)

    def call_at(self, time: int, fn: Callable[[int], None]) -> None:
        self.engine.at(max(time, self.engine.now), fn)

    def lock_acquire(self, proc, lock_id, line, time, resume_cb) -> None:
        if self.audit is not None:
            resume_cb = self.audit.wrap_acquire(proc, lock_id, line, time, resume_cb)
        self.locks.acquire(proc, lock_id, line, time, resume_cb)

    def lock_release(self, proc, lock_id, line, time, resume_cb) -> None:
        if self.audit is not None:
            self.audit.on_lock_release(proc, lock_id, line, time)
        self.locks.release(proc, lock_id, line, time, resume_cb)

    def barrier_arrive(self, proc, barrier_id, time, resume_cb) -> None:
        if self.barriers is None:
            raise RuntimeError("trace contains barriers but no barrier manager")
        self.barriers.arrive(proc, barrier_id, time, resume_cb)

    # ------------------------------------------------------------------
    # Bus service: arbitration-time checks
    # ------------------------------------------------------------------
    def _find_supplier(self, line: int, requester: int):
        """Who can source ``line`` cache-to-cache: another cache, or a
        dirty copy waiting in another processor's write-back buffer.

        Cache holders come from the residency directory (lowest processor
        index first, matching the original full scan).
        """
        holders = self.directory.get(line)
        if holders:
            best = -1
            for p in holders:
                if p != requester and (best < 0 or p < best):
                    best = p
            if best >= 0:
                return ("cache", best, None)
        ws = self._wb_total
        if ws is None or ws[0]:
            # only scan the write-back buffers while any write-back is
            # actually buffered machine-wide (fast path keeps the count)
            for p, buf in enumerate(self.buffers):
                if p == requester or not buf.wb_count:
                    continue
                wb = buf.find(WRITEBACK, line)
                if wb is not None:
                    return ("buffer", p, wb)
        return None

    def can_issue(self, op: BusOp, time: int) -> bool:
        k = op.kind
        if k == READ_MISS or k == RFO:
            holder = self._fills_in_flight.get(op.line)
            if holder is not None and holder != op.proc:
                return False  # wait for the in-flight fill of this line
            op.supplier = self._find_supplier(op.line, op.proc)
            return op.supplier is not None or self.memory.can_accept()
        if k == UPGRADE:
            if op.line in self.caches[op.proc].state:
                return True
            # lost the line before the invalidation was granted: becomes
            # a full write miss (§4.1)
            holder = self._fills_in_flight.get(op.line)
            if holder is not None and holder != op.proc:
                return False
            op.supplier = self._find_supplier(op.line, op.proc)
            return op.supplier is not None or self.memory.can_accept()
        if k == WRITEBACK or k == WRITETHROUGH or k == UPDATE or k == LOCK_MEM:
            return self.memory.can_accept()
        if k == LOCK_READ or k == LOCK_RFO:
            s = self.locks.supplier_for_line(op.line)
            if s is not None and s != op.proc:
                op.supplier = ("lock", s, None)
                return True
            op.supplier = None
            # an RFO on a line only we cache is an address-only upgrade
            if k == LOCK_RFO and self._lock_line_cached_by(op.line, op.proc):
                op.supplier = ("self", op.proc, None)
                return True
            return self.memory.can_accept()
        # LOCK_INVAL, LOCK_XFER, DATA_RETURN need nothing but the bus
        return True

    def _lock_line_cached_by(self, line: int, proc: int) -> bool:
        for st in self.locks.locks.values():
            if st.line == line:
                return proc in st.cached_by
        return False

    # ------------------------------------------------------------------
    # Bus service: grant-time execution
    # ------------------------------------------------------------------
    def execute(self, op: BusOp, time: int):
        """Perform a granted operation's snoop/state effects.

        Returns ``(hold, done)`` per the :class:`~repro.machine.bus.
        BusService` protocol: the bus fires ``done`` (if any) at
        ``time + hold`` in the same engine event as its release.
        """
        k = op.kind
        if k != DATA_RETURN:
            # The granted op just left its processor's buffer: a slot freed.
            self.buffers[op.proc].notify_space(time)
        handler = self._exec_table.get(k)
        if handler is None:
            raise ValueError(f"unexpected bus op kind {k}")
        return handler(op, time)

    # -- lock-scheme and split-transaction operations --------------------------
    def _exec_lock_mem(self, op: BusOp, time: int):
        self.memory.reserve()
        op.return_cycles = self._line_data_cycles
        return (self._addr_cycles, lambda t: self.memory.arrive(op, t))

    def _exec_lock_read(self, op: BusOp, time: int):
        if op.supplier is not None:
            return (self._addr_cycles + self._line_data_cycles, op.on_done)
        self.memory.reserve()
        op.return_cycles = self._line_data_cycles
        return (self._addr_cycles, lambda t: self.memory.arrive(op, t))

    def _exec_lock_rfo(self, op: BusOp, time: int):
        # address phase invalidates every other cached copy
        hook = getattr(self.locks, "on_lock_rfo", None)
        if hook is not None:
            hook(op.line, op.proc, time)
        if op.supplier is not None and op.supplier[0] == "self":
            return (self._addr_cycles, op.on_done)
        if op.supplier is not None:
            return (self._addr_cycles + self._line_data_cycles, op.on_done)
        self.memory.reserve()
        op.return_cycles = self._line_data_cycles
        return (self._addr_cycles, lambda t: self.memory.arrive(op, t))

    def _exec_lock_inval(self, op: BusOp, time: int):
        hook = getattr(self.locks, "on_lock_inval", None)
        if hook is not None:
            hook(op.line, op.proc, time)
        return (self._addr_cycles, op.on_done)

    def _exec_lock_xfer(self, op: BusOp, time: int):
        return (self._addr_cycles + self._line_data_cycles, op.on_done)

    def _exec_data_return(self, op: BusOp, time: int):
        orig = op.orig
        hold = max(1, orig.return_cycles)
        self.memory.release_output(time)
        return (hold, lambda t: self._split_complete(orig, t))

    # -- coherent data operations --------------------------------------------
    def _exec_read_miss(self, op: BusOp, time: int):
        self._fills_in_flight[op.line] = op.proc
        if op.supplier is not None:
            where, p, wb = op.supplier
            if where == "cache":
                present, _dirty = self.caches[p].snoop_read(op.line)
                assert present
                # memory is updated during the transfer if dirty (Illinois)
            else:  # dirty line intercepted in a write-back buffer
                self.buffers[p].cancel(wb)
                self.procs[p].outstanding_wb -= 1
                self.buffers[p].notify_space(time)
            op.fill_state = SHARED
            hold = self._addr_cycles + self._line_data_cycles
            return (hold, lambda t: self._fill_complete(op, t))
        # from memory: Illinois loads EXCLUSIVE when no one else has it
        op.fill_state = EXCLUSIVE
        op.return_cycles = self._line_data_cycles
        self.memory.reserve()
        return (self._addr_cycles, lambda t: self.memory.arrive(op, t))

    def _exec_rfo(self, op: BusOp, time: int):
        self._fills_in_flight[op.line] = op.proc
        # the address phase invalidates every other copy (holders only;
        # snooping a cache without the line is a no-op)
        supplier = op.supplier
        holders = self.directory.get(op.line)
        if holders:
            for p in tuple(holders):  # copy: invalidation edits the directory
                if p != op.proc:
                    self.caches[p].snoop_invalidate(op.line)
        for p, buf in enumerate(self.buffers):
            if p == op.proc or not buf.wb_count:
                continue
            wb = buf.find(WRITEBACK, op.line)
            if wb is not None and not (supplier and supplier[2] is wb):
                buf.cancel(wb)
                self.procs[p].outstanding_wb -= 1
                buf.notify_space(time)
        op.fill_state = MODIFIED
        if supplier is not None:
            where, p, wb = supplier
            if where == "buffer":
                self.buffers[p].cancel(wb)
                self.procs[p].outstanding_wb -= 1
                self.buffers[p].notify_space(time)
            hold = self._addr_cycles + self._line_data_cycles
            return (hold, lambda t: self._fill_complete(op, t))
        op.return_cycles = self._line_data_cycles
        self.memory.reserve()
        return (self._addr_cycles, lambda t: self.memory.arrive(op, t))

    def _exec_upgrade(self, op: BusOp, time: int):
        cache = self.caches[op.proc]
        if op.line in cache.state:
            holders = self.directory.get(op.line)
            if holders:
                for p in tuple(holders):
                    if p != op.proc:
                        self.caches[p].snoop_invalidate(op.line)
            cache.set_state(op.line, MODIFIED)
            return (self._addr_cycles, lambda t: self._op_done(op, t))
        # line vanished: perform a full write miss instead
        op.converted = True
        self.upgrade_conversions += 1
        return self._exec_rfo(op, time)

    def _exec_writeback(self, op: BusOp, time: int):
        hold = self._addr_cycles + self._line_data_cycles
        self.memory.reserve()

        def done(t, op=op):  # memory arrival, then completion: the
            self.memory.arrive(op, t)  # order the two events fired in
            self._op_done(op, t)

        return (hold, done)

    def _exec_update(self, op: BusOp, time: int):
        """Write-update broadcast: sharers patch their copies in place
        (no state change -- everyone stays SHARED) and memory absorbs the
        words.  If our copy vanished while the update was buffered, the
        broadcast still updates memory and any remaining sharers."""
        hold = self._addr_cycles + 1  # address + one word-burst of data
        self.memory.reserve()

        def done(t, op=op):
            self.memory.arrive(op, t)
            self._op_done(op, t)

        return (hold, done)

    def _exec_writethrough(self, op: BusOp, time: int):
        # the bus write's address phase invalidates every other copy
        holders = self.directory.get(op.line)
        if holders:
            for p in tuple(holders):
                if p != op.proc:
                    self.caches[p].snoop_invalidate(op.line)
        hold = self._addr_cycles + 1  # address + one word of data
        self.memory.reserve()

        def done(t, op=op):
            self.memory.arrive(op, t)
            self._op_done(op, t)

        return (hold, done)

    # -- completions ----------------------------------------------------------
    def _split_complete(self, orig: BusOp, t: int) -> None:
        """The data-return phase of a split transaction finished."""
        if orig.kind in (READ_MISS, RFO) or (orig.kind == UPGRADE and orig.converted):
            self._fill_complete(orig, t)
        else:
            orig.on_done(t)

    def _fill_complete(self, op: BusOp, t: int) -> None:
        if self._fills_in_flight.get(op.line) == op.proc:
            del self._fills_in_flight[op.line]
        proc = self.procs[op.proc]
        proc.install_fill(op, t)
        self._op_done(op, t)
        # a miss on this line may have been waiting for the fill
        self.bus.kick(t)

    def _op_done(self, op: BusOp, t: int) -> None:
        if op.on_done is not None:
            op.on_done(t)
        else:
            self.procs[op.proc]._op_complete(op, t)

    # ------------------------------------------------------------------
    # Bus service: fused fast-path execution (MachineConfig.bus_fast_path)
    #
    # Same decisions and state effects as the reference executors above,
    # with the per-grant closures replaced by the _done_op slot + the
    # preallocated trampolines below, and the completion chain
    # (_fill_complete -> _op_done -> _op_complete) flattened into one
    # call.  The trailing bus.kick of the reference _fill_complete is
    # elided: on this path every fill completion fires inside Bus._fire
    # while the bus is still held, so the kick is provably a no-op (the
    # release that follows in the same event re-arbitrates anyway).
    # Differentially verified byte-identical (python -m repro diff-verify).
    # ------------------------------------------------------------------
    def _execute_fast(self, op: BusOp, time: int):
        k = op.kind
        if k != DATA_RETURN:
            # The granted op just left its processor's buffer: a slot
            # freed.  Only pay the notify call when someone is waiting.
            buf = self.buffers[op.proc]
            if buf._space_waiters:
                buf.notify_space(time)
        try:
            handler = self._exec_list[k]
        except IndexError:
            handler = None
        if handler is None:
            raise ValueError(f"unexpected bus op kind {k}")
        return handler(op, time)

    # -- completion trampolines (read the slot, never allocate) ---------------
    def _complete_arrive(self, t: int) -> None:
        self.memory.arrive(self._done_op, t)

    def _complete_fill(self, t: int) -> None:
        op = self._done_op
        fills = self._fills_in_flight
        if fills.get(op.line) == op.proc:
            del fills[op.line]
        proc = self.procs[op.proc]
        proc.install_fill(op, t)
        if op.on_done is not None:
            op.on_done(t)
        else:
            proc._op_complete(op, t)

    def _complete_op(self, t: int) -> None:
        op = self._done_op
        if op.on_done is not None:
            op.on_done(t)
        else:
            self.procs[op.proc]._op_complete(op, t)

    def _complete_write(self, t: int) -> None:
        op = self._done_op  # memory arrival, then completion: the order
        self.memory.arrive(op, t)  # the reference path fired the two in
        if op.on_done is not None:
            op.on_done(t)
        else:
            self.procs[op.proc]._op_complete(op, t)

    def _complete_split(self, t: int) -> None:
        orig = self._done_op
        k = orig.kind
        if k == READ_MISS or k == RFO or (k == UPGRADE and orig.converted):
            self._complete_fill(t)
        else:
            orig.on_done(t)

    # -- fused executors ------------------------------------------------------
    def _fexec_read_miss(self, op: BusOp, time: int):
        self._fills_in_flight[op.line] = op.proc
        if op.supplier is not None:
            where, p, wb = op.supplier
            if where == "cache":
                present, _dirty = self.caches[p].snoop_read(op.line)
                assert present
                # memory is updated during the transfer if dirty (Illinois)
            else:  # dirty line intercepted in a write-back buffer
                self.buffers[p].cancel(wb)
                self.procs[p].outstanding_wb -= 1
                self.buffers[p].notify_space(time)
            op.fill_state = SHARED
            self._done_op = op
            return (self._hold_xfer, self._cb_fill)
        # from memory: Illinois loads EXCLUSIVE when no one else has it
        op.fill_state = EXCLUSIVE
        op.return_cycles = self._line_data_cycles
        self.memory.reserve()
        self._done_op = op
        return (self._addr_cycles, self._cb_arrive)

    def _fexec_rfo(self, op: BusOp, time: int):
        self._fills_in_flight[op.line] = op.proc
        supplier = op.supplier
        holders = self.directory.get(op.line)
        if holders:
            for p in tuple(holders):  # copy: invalidation edits the directory
                if p != op.proc:
                    self.caches[p].snoop_invalidate(op.line)
        if self._wb_total[0]:  # any write-back buffered machine-wide?
            for p, buf in enumerate(self.buffers):
                if p == op.proc or not buf.wb_count:
                    continue
                wb = buf.find(WRITEBACK, op.line)
                if wb is not None and not (supplier and supplier[2] is wb):
                    buf.cancel(wb)
                    self.procs[p].outstanding_wb -= 1
                    buf.notify_space(time)
        op.fill_state = MODIFIED
        if supplier is not None:
            where, p, wb = supplier
            if where == "buffer":
                self.buffers[p].cancel(wb)
                self.procs[p].outstanding_wb -= 1
                self.buffers[p].notify_space(time)
            self._done_op = op
            return (self._hold_xfer, self._cb_fill)
        op.return_cycles = self._line_data_cycles
        self.memory.reserve()
        self._done_op = op
        return (self._addr_cycles, self._cb_arrive)

    def _fexec_upgrade(self, op: BusOp, time: int):
        cache = self.caches[op.proc]
        if op.line in cache.state:
            holders = self.directory.get(op.line)
            if holders:
                for p in tuple(holders):
                    if p != op.proc:
                        self.caches[p].snoop_invalidate(op.line)
            cache.set_state(op.line, MODIFIED)
            self._done_op = op
            return (self._addr_cycles, self._cb_op)
        # line vanished: perform a full write miss instead
        op.converted = True
        self.upgrade_conversions += 1
        return self._fexec_rfo(op, time)

    def _fexec_writeback(self, op: BusOp, time: int):
        self.memory.reserve()
        self._done_op = op
        return (self._hold_xfer, self._cb_write)

    def _fexec_update(self, op: BusOp, time: int):
        self.memory.reserve()
        self._done_op = op
        return (self._hold_word, self._cb_write)

    def _fexec_writethrough(self, op: BusOp, time: int):
        holders = self.directory.get(op.line)
        if holders:
            for p in tuple(holders):
                if p != op.proc:
                    self.caches[p].snoop_invalidate(op.line)
        self.memory.reserve()
        self._done_op = op
        return (self._hold_word, self._cb_write)

    def _fexec_lock_mem(self, op: BusOp, time: int):
        self.memory.reserve()
        op.return_cycles = self._line_data_cycles
        self._done_op = op
        return (self._addr_cycles, self._cb_arrive)

    def _fexec_lock_read(self, op: BusOp, time: int):
        if op.supplier is not None:
            return (self._hold_xfer, op.on_done)
        self.memory.reserve()
        op.return_cycles = self._line_data_cycles
        self._done_op = op
        return (self._addr_cycles, self._cb_arrive)

    def _fexec_lock_rfo(self, op: BusOp, time: int):
        # address phase invalidates every other cached copy
        hook = getattr(self.locks, "on_lock_rfo", None)
        if hook is not None:
            hook(op.line, op.proc, time)
        if op.supplier is not None and op.supplier[0] == "self":
            return (self._addr_cycles, op.on_done)
        if op.supplier is not None:
            return (self._hold_xfer, op.on_done)
        self.memory.reserve()
        op.return_cycles = self._line_data_cycles
        self._done_op = op
        return (self._addr_cycles, self._cb_arrive)

    def _fexec_data_return(self, op: BusOp, time: int):
        orig = op.orig
        hold = max(1, orig.return_cycles)
        self.memory.release_output(time)
        self._done_op = orig
        return (hold, self._cb_split)

    # ------------------------------------------------------------------
    # Run + results
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        if self._ran:
            raise RuntimeError("System instances are single-use")
        self._ran = True
        for proc in self.procs:
            proc.start()
        self.engine.run(max_events=self.max_events)
        if self._done_count != len(self.procs):
            stuck = [p.proc for p in self.procs if not p.done]
            if self.audit is not None:
                # Let the lock auditor name who is stuck on what (in
                # raise mode this surfaces as an AuditError instead).
                self.audit.on_deadlock(stuck)
            raise RuntimeError(
                f"simulation deadlocked: processors {stuck} never finished "
                f"(states: {[self.procs[p].state for p in stuck]})"
            )
        result = self._collect()
        if self.audit is not None:
            self.audit.finalize(result)
        return result

    def _collect(self) -> RunResult:
        run_time = max(p.metrics.completion_time for p in self.procs)
        agg = {
            "read_hits": 0,
            "read_misses": 0,
            "write_hits": 0,
            "write_misses": 0,
            "ifetch_hits": 0,
            "ifetch_misses": 0,
            "writebacks": 0,
            "c2c_supplied": 0,
            "invalidations_received": 0,
        }
        for cache in self.caches:
            c = cache.counters
            for key in agg:
                agg[key] += getattr(c, key)
        # kernel/fast-path introspection: never serialized or compared
        # (RunResult.diagnostics is compare=False), printed by
        # ``repro run --profile``
        diagnostics = {
            "fp_windows": sum(p.fp_windows for p in self.procs),
            "fp_records": sum(p.fp_records for p in self.procs),
        }
        kern = self.kernel
        if kern is not None:
            diagnostics.update(
                kernel_attempts=kern.attempts,
                kernel_rejected=kern.rejected,
                kernel_segments=kern.segments,
                kernel_collapsed_procs=kern.collapsed_procs,
                kernel_records=kern.records,
                kernel_bounces=kern.bounces,
            )
            if hasattr(kern, "spin_segments"):
                diagnostics.update(
                    spin_segments=kern.spin_segments,
                    spin_waiters=kern.spin_waiters,
                    spin_idle_certs=kern.spin_idle_certs,
                    spin_timer_certs=kern.spin_timer_certs,
                    spin_opaque_rejects=kern.spin_opaque_rejects,
                    spin_window_rejects=kern.spin_window_rejects,
                )
        return RunResult(
            program=self.traceset.program,
            n_procs=self.config.n_procs,
            lock_scheme=self.locks.name,
            consistency=self.model.name,
            run_time=run_time,
            proc_metrics=tuple(p.metrics for p in self.procs),
            lock_stats=self.locks.stats.snapshot(),
            bus_busy_cycles=self.bus.busy_cycles,
            bus_op_counts=dict(self.bus.op_counts),
            buffer_max_occupancy=max(b.max_occupancy for b in self.buffers),
            meta={
                "upgrade_conversions": self.upgrade_conversions,
                "bus_grants": self.bus.grants,
                "memory_reads": self.memory.reads_serviced,
                "memory_writes": self.memory.writes_serviced,
                "drains": sum(p.metrics.drains for p in self.procs),
                "drains_nonempty": sum(p.metrics.drains_nonempty for p in self.procs),
            },
            diagnostics=diagnostics,
            **agg,
        )


def simulate(
    traceset: TraceSet,
    config: MachineConfig | None = None,
    lock_manager: LockManager | None = None,
    model: ConsistencyModel | None = None,
    barrier_manager=None,
    max_events: int | None = None,
) -> RunResult:
    """Convenience wrapper: build a System with defaults and run it.

    Defaults: paper machine configuration, queuing locks, sequential
    consistency.
    """
    from ..consistency import SEQUENTIAL
    from ..sync import QueuingLockManager

    if config is None:
        config = MachineConfig(n_procs=traceset.n_procs)
    if lock_manager is None:
        lock_manager = QueuingLockManager()
    if model is None:
        model = SEQUENTIAL
    system = System(
        traceset,
        config,
        lock_manager,
        model,
        barrier_manager=barrier_manager,
        max_events=max_events,
    )
    return system.run()
