"""Bus-transaction logging and anatomy reports.

§3.2's argument hinges on *where bus cycles go*: under T&T&S "the bus
utilization for Grav doubled ... and this slows down even those
processors that do not want the lock."  A :class:`BusLog` attached to a
system records every granted transaction (kind, requester, grant time,
hold), and the anatomy report breaks bus occupancy down by operation
class and over time -- the quantified version of the paper's sentence.

Usage::

    system = System(...)
    log = BusLog.attach(system)
    result = system.run()
    print(render_bus_anatomy(log, result))
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .buffers import (
    DATA_RETURN,
    LOCK_INVAL,
    LOCK_MEM,
    LOCK_READ,
    LOCK_RFO,
    LOCK_XFER,
    OP_NAMES,
    READ_MISS,
    RFO,
    UPDATE,
    UPGRADE,
    WRITEBACK,
    WRITETHROUGH,
)

__all__ = ["BusLog", "render_bus_anatomy"]

#: operation classes for the anatomy breakdown
_CLASSES = {
    READ_MISS: "data fills",
    RFO: "data fills",
    DATA_RETURN: "data fills",
    UPGRADE: "invalidations",
    WRITEBACK: "writes to memory",
    WRITETHROUGH: "writes to memory",
    UPDATE: "update broadcasts",
    LOCK_MEM: "lock traffic",
    LOCK_READ: "lock traffic",
    LOCK_RFO: "lock traffic",
    LOCK_INVAL: "lock traffic",
    LOCK_XFER: "lock traffic",
}


@dataclass
class BusLog:
    """Recorded bus grants: parallel lists of (kind, proc, time, hold)."""

    kinds: list = field(default_factory=list)
    procs: list = field(default_factory=list)
    times: list = field(default_factory=list)
    holds: list = field(default_factory=list)

    @classmethod
    def attach(cls, system) -> "BusLog":
        log = cls()
        system.bus.observer = log._observe
        return log

    def _observe(self, op, time: int, hold: int) -> None:
        self.kinds.append(op.kind)
        self.procs.append(op.proc)
        self.times.append(time)
        self.holds.append(hold)

    def __len__(self) -> int:
        return len(self.kinds)

    # -- aggregations -----------------------------------------------------------
    def cycles_by_class(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for kind, hold in zip(self.kinds, self.holds):
            cls = _CLASSES.get(kind, OP_NAMES.get(kind, str(kind)))
            out[cls] = out.get(cls, 0) + hold
        return out

    def cycles_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for kind, hold in zip(self.kinds, self.holds):
            name = OP_NAMES.get(kind, str(kind))
            out[name] = out.get(name, 0) + hold
        return out

    def lock_traffic_cycles(self) -> int:
        return self.cycles_by_class().get("lock traffic", 0)

    def timeline(self, run_time: int, buckets: int = 20) -> list[float]:
        """Bus occupancy per time bucket (0..1 each)."""
        width = max(1, run_time // buckets)
        busy = [0] * buckets
        for t, h in zip(self.times, self.holds):
            b = min(buckets - 1, t // width)
            busy[b] += h
        return [min(1.0, b / width) for b in busy]


def render_bus_anatomy(log: BusLog, result, buckets: int = 20) -> str:
    """Text report: occupancy by class, by kind, and over time."""
    total_busy = sum(log.holds)
    run_time = result.run_time
    lines = [
        f"Bus anatomy: {result.program} ({result.lock_scheme}, {result.consistency})",
        f"{len(log):,} transactions, {total_busy:,} bus cycles busy "
        f"({100 * total_busy / run_time:.1f}% of {run_time:,} run cycles)",
        "",
        f"{'class':<18} {'cycles':>10} {'% of busy':>10} {'% of run':>9}",
    ]
    for cls, cyc in sorted(log.cycles_by_class().items(), key=lambda kv: -kv[1]):
        lines.append(
            f"{cls:<18} {cyc:>10,} {100 * cyc / max(1, total_busy):>10.1f} "
            f"{100 * cyc / run_time:>9.2f}"
        )
    lines.append("")
    lines.append(f"{'operation':<14} {'count':>8} {'cycles':>10}")
    counts: dict[str, int] = {}
    for kind in log.kinds:
        name = OP_NAMES.get(kind, str(kind))
        counts[name] = counts.get(name, 0) + 1
    for name, cyc in sorted(log.cycles_by_kind().items(), key=lambda kv: -kv[1]):
        lines.append(f"{name:<14} {counts[name]:>8,} {cyc:>10,}")
    lines.append("")
    ramp = " .:-=+*#%@"
    tl = log.timeline(run_time, buckets)
    bar = "".join(ramp[min(len(ramp) - 1, int(x * (len(ramp) - 1)))] for x in tl)
    lines.append(f"occupancy over time  [{bar}]  (' '=idle, '@'=saturated)")
    return "\n".join(lines)
