"""Event-driven simulation kernel.

A minimal discrete-event scheduler: a binary heap of ``(time, seq, fn)``
entries.  ``seq`` is a monotone tiebreaker so same-cycle events fire in
scheduling order, which keeps runs deterministic (important both for
reproducibility of the tables and for the regression tests).
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["Engine"]


class Engine:
    """Discrete-event scheduler with an integer cycle clock."""

    __slots__ = ("now", "_queue", "_seq", "_running")

    def __init__(self) -> None:
        self.now = 0
        self._queue: list = []
        self._seq = 0
        self._running = False

    def at(self, time: int, fn: Callable[[int], None]) -> None:
        """Schedule ``fn(time)`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"event scheduled in the past ({time} < {self.now})")
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, fn))

    def after(self, delay: int, fn: Callable[[int], None]) -> None:
        """Schedule ``fn`` ``delay`` cycles from now."""
        self.at(self.now + delay, fn)

    def pending(self) -> int:
        return len(self._queue)

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when the clock would pass
        ``until``, or after ``max_events`` dispatches (a runaway guard for
        tests).  Returns the number of events dispatched.
        """
        if self._running:
            raise RuntimeError("engine is not reentrant")
        self._running = True
        dispatched = 0
        try:
            q = self._queue
            while q:
                time, _seq, fn = q[0]
                if until is not None and time > until:
                    break
                heapq.heappop(q)
                self.now = time
                fn(time)
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events at cycle "
                        f"{self.now} with {len(q)} events still pending; "
                        "likely deadlock or livelock"
                    )
        finally:
            self._running = False
        return dispatched
