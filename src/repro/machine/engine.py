"""Event-driven simulation kernel.

Two implementations of the same discrete-event contract live here:

:class:`Engine`
    The production scheduler: a binary heap of *times* plus one bucket
    (a plain Python list) of callbacks per distinct time.  Same-cycle
    events are appended to their cycle's bucket and dispatched in
    append order, so the observable firing order is scheduling order --
    exactly the contract of the original heap design -- while the heap
    only ever holds each distinct time once.  Simulations cluster many
    events on the same bus cycle (the suite averages ~3 events per
    distinct cycle), so bucketing roughly third the heap traffic and
    drops the per-event tuple allocation of the ``(time, seq, fn)``
    encoding entirely.

:class:`HeapEngine`
    The original ``(time, seq, fn)`` heap, kept as the executable
    specification.  The property suite runs every scheduling law against
    both implementations, and the differential harness
    (:mod:`repro.testing.differential`) can drive whole simulations
    through either to prove they are observably identical.

Both engines run an **integer cycle clock**: ``at`` rejects
non-integral times (a float that slips into the heap would make cycle
arithmetic silently inexact and, in the old encoding, mixed int/float
heap comparisons) and normalizes integral index-able types (e.g.
``numpy.int64``) to built-in ``int``.
"""

from __future__ import annotations

import heapq
from operator import index as _index
from typing import Callable

__all__ = ["Engine", "HeapEngine"]


def _check_time(time, now: int) -> int:
    """Validate and normalize an event time: integral and not in the past."""
    if type(time) is not int:
        try:
            time = _index(time)
        except TypeError:
            raise TypeError(
                f"event time must be an integral cycle count, got {time!r} "
                f"of type {type(time).__name__}"
            ) from None
    if time < now:
        raise ValueError(f"event scheduled in the past ({time} < {now})")
    return time


class Engine:
    """Discrete-event scheduler with an integer cycle clock.

    Heap of distinct times + per-time dispatch buckets.  Events that
    share a cycle fire in scheduling order; an event scheduled *for the
    current cycle while that cycle is being dispatched* joins the end of
    the live bucket and still fires this cycle, which matches the
    ``(time, seq)`` ordering of :class:`HeapEngine` exactly.
    """

    __slots__ = (
        "now",
        "_times",
        "_buckets",
        "_pending",
        "_running",
        "dispatched_total",
        "fast_dispatch",
    )

    def __init__(self) -> None:
        self.now = 0
        self._times: list[int] = []  # heap of distinct scheduled times
        self._buckets: dict[int, list] = {}  # time -> callbacks, append order
        self._pending = 0
        self._running = False
        #: lifetime count of dispatched events (throughput benchmarks)
        self.dispatched_total = 0
        #: contended-path fast path (MachineConfig.bus_fast_path): iterate
        #: buckets with a list iterator instead of explicit indexing.  The
        #: system clears this with the rest of the bus fast path so the
        #: reference configuration dispatches exactly as the committed
        #: baseline does.
        self.fast_dispatch = True

    def at(self, time: int, fn: Callable[[int], None]) -> None:
        """Schedule ``fn(time)`` at absolute cycle ``time`` (>= now)."""
        if type(time) is not int or time < self.now:
            time = _check_time(time, self.now)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [fn]
            heapq.heappush(self._times, time)
        else:
            bucket.append(fn)
        self._pending += 1

    def after(self, delay: int, fn: Callable[[int], None]) -> None:
        """Schedule ``fn`` ``delay`` cycles from now."""
        self.at(self.now + delay, fn)

    def pending(self) -> int:
        return self._pending

    def events_at(self, time: int):
        """The dispatch bucket scheduled for ``time`` (the shared list:
        callers must treat it as read-only).  During dispatch the live
        cycle's bucket is visible, including its already-fired prefix.
        Introspection for the segment kernel's bucket-order replay
        (:mod:`repro.machine.kernel`) and for tests."""
        return self._buckets.get(time, ())

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when the clock would pass
        ``until``, or after ``max_events`` dispatches (a runaway guard for
        tests).  Returns the number of events dispatched.
        """
        if self._running:
            raise RuntimeError("engine is not reentrant")
        self._running = True
        dispatched = 0
        times = self._times
        buckets = self._buckets
        pop = heapq.heappop
        try:
            if until is None and max_events is None:
                # unguarded fast path (whole-simulation runs): no bound
                # checks, pending adjusted per bucket instead of per event
                if self.fast_dispatch:
                    # A list iterator re-checks the length on every step,
                    # so callbacks appended to the live bucket during
                    # dispatch are picked up in append order -- the same
                    # contract as the explicit index dispatch below.
                    while times:
                        time = pop(times)
                        self.now = time
                        bucket = buckets[time]
                        for fn in bucket:
                            fn(time)
                        i = len(bucket)
                        dispatched += i
                        self._pending -= i
                        del buckets[time]
                    return dispatched  # dispatched_total updated in finally
                while times:
                    time = pop(times)
                    self.now = time
                    bucket = buckets[time]
                    i = 0
                    while i < len(bucket):
                        fn = bucket[i]
                        i += 1
                        fn(time)
                    dispatched += i
                    self._pending -= i
                    del buckets[time]
                return dispatched  # dispatched_total updated in finally
            while times:
                time = times[0]
                if until is not None and time > until:
                    break
                pop(times)
                self.now = time
                # Dispatch by index: callbacks scheduled *at this cycle
                # during dispatch* append to this live bucket and are
                # picked up before the cycle closes.
                bucket = buckets[time]
                i = 0
                while i < len(bucket):
                    fn = bucket[i]
                    i += 1
                    self._pending -= 1
                    fn(time)
                    dispatched += 1
                    if max_events is not None and dispatched >= max_events:
                        del bucket[:i]  # keep only the undispatched tail
                        if bucket:
                            # the time was already popped: restore it so
                            # the tail stays reachable by a later run()
                            heapq.heappush(times, time)
                        else:
                            del buckets[time]
                        raise RuntimeError(
                            f"simulation exceeded {max_events} events at cycle "
                            f"{self.now} with {self._pending} events still "
                            "pending; likely deadlock or livelock"
                        )
                del buckets[time]
        finally:
            self._running = False
            self.dispatched_total += dispatched
        return dispatched


class HeapEngine:
    """The original scheduler: one heap entry ``(time, seq, fn)`` per
    event, ``seq`` a monotone tiebreaker so same-cycle events fire in
    scheduling order.

    Kept as the reference implementation for differential testing; see
    the module docstring.
    """

    __slots__ = ("now", "_queue", "_seq", "_running", "dispatched_total")

    def __init__(self) -> None:
        self.now = 0
        self._queue: list = []
        self._seq = 0
        self._running = False
        #: lifetime count of dispatched events (throughput benchmarks)
        self.dispatched_total = 0

    def at(self, time: int, fn: Callable[[int], None]) -> None:
        """Schedule ``fn(time)`` at absolute cycle ``time`` (>= now)."""
        time = _check_time(time, self.now)
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, fn))

    def after(self, delay: int, fn: Callable[[int], None]) -> None:
        """Schedule ``fn`` ``delay`` cycles from now."""
        self.at(self.now + delay, fn)

    def pending(self) -> int:
        return len(self._queue)

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Drain the event queue (same contract as :meth:`Engine.run`)."""
        if self._running:
            raise RuntimeError("engine is not reentrant")
        self._running = True
        dispatched = 0
        try:
            q = self._queue
            while q:
                time, _seq, fn = q[0]
                if until is not None and time > until:
                    break
                heapq.heappop(q)
                self.now = time
                fn(time)
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events at cycle "
                        f"{self.now} with {len(q)} events still pending; "
                        "likely deadlock or livelock"
                    )
        finally:
            self._running = False
            self.dispatched_total += dispatched
        return dispatched
