"""Private-window tables for the trace-interpreter fast path.

The reference interpreter (:mod:`repro.machine.processor`) walks a trace
record by record and a cache line at a time.  Most of those accesses are
*private-window* traffic: runs of consecutive references that hit in the
local cache and therefore interact with nothing shared -- no bus
transaction, no snoop, no lock, no engine event.  Because the simulated
processor only observes the rest of the machine through engine events,
an entire such run can be retired in one step -- counters bumped by
precomputed sums, the local clock advanced by the precomputed ideal
cycles, LRU refreshed in last-touch order -- with results byte-identical
to the record-by-record replay.

This module does the *static* half of that bargain, vectorized over the
numpy record array once per trace:

* which records are **window-eligible** (data/instruction references
  that can possibly retire without a bus transaction; LOCK / UNLOCK /
  BARRIER records never are, and WRITE records are not under a
  write-through cache where every write is a bus word);
* the **line span** ``[line_lo, line_hi]`` each record touches (records
  scan a contiguous byte range, so their lines are contiguous);
* for each record, the **end of the eligible run** containing it
  (``win_end``), so the interpreter knows how far a window may extend
  before static analysis alone rules it out;
* **prefix sums** of every counter a retired window must advance, so a
  window of any extent ``[i, k)`` costs O(1) to account.

The *dynamic* half lives in ``Processor._run``: at a window entry it
probes the current MESI state of the span's lines -- any valid state for
a read or instruction fetch, MODIFIED for a write (the only write hit
that is silent in every protocol) -- and retires exactly the validated
prefix.  Validation is conservative by construction: a window is only
retired when the reference interpreter would have scored every single
reference in it as a local hit (the property suite replays random traces
through the reference path to enforce precisely this).
"""

from __future__ import annotations

import numpy as np

from ..trace.records import IBLOCK, READ, REP_STRIDE, WRITE

__all__ = ["WindowTables", "build_tables"]


class WindowTables:
    """Per-trace static tables consumed by the interpreter's fast path.

    All fields are plain Python lists (scalar indexing in the hot loop
    is several times faster than numpy element access); cumulative
    fields have ``n_records + 1`` entries so ``c[k] - c[i]`` is the sum
    over records ``[i, k)``.
    """

    __slots__ = (
        "elig",  # record is window-eligible
        "need_mod",  # record is a WRITE: its lines must probe writable
        "line_lo",  # first cache line the record touches
        "line_hi",  # last cache line the record touches (inclusive)
        "win_end",  # one past the eligible run containing this record
        "code",  # packed per-record validation code (see build_tables)
        "c_read",  # prefix sums: elementary READ references
        "c_write",  # elementary WRITE references
        "c_ifetch",  # elementary instruction fetches
        "c_cycles",  # ideal (IBLOCK) cycles
        "c_refs",  # elementary references of any kind
        # ndarray mirrors consumed by the columnar segment kernel
        # (repro.machine.kernel), which validates and retires whole
        # machine-quiet spans with array arithmetic rather than scalar
        # subscripts: line spans, the write flag, and the int64 ideal-
        # cycle prefix (a_cycles[k] - a_cycles[i] = ideal cycles of
        # records [i, k), same contract as c_cycles).
        "a_lo",
        "a_hi",
        "a_wr",
        "a_cycles",
    )

    def __init__(self, **fields) -> None:
        for name in self.__slots__:
            setattr(self, name, fields[name])

    @property
    def n_records(self) -> int:
        return len(self.elig)

    def window_of(self, i: int) -> tuple[int, int] | None:
        """The full eligible run containing record ``i`` (introspection:
        tests and tooling; the interpreter uses the raw arrays)."""
        if not self.elig[i]:
            return None
        end = self.win_end[i]
        start = i
        while start > 0 and self.elig[start - 1]:
            start -= 1
        return (start, end)


def build_tables(
    records: np.ndarray, offset_bits: int, writethrough: bool
) -> WindowTables:
    """Vectorized one-pass analysis of a trace's record array."""
    kind = records["kind"]
    addr = records["addr"].astype(np.int64)
    arg = records["arg"].astype(np.int64)
    cycles = records["cycles"].astype(np.int64)
    n = len(kind)

    is_ib = kind == IBLOCK
    is_rd = kind == READ
    is_wr = kind == WRITE
    elig = is_ib | is_rd
    if not writethrough:
        elig = elig | is_wr

    # Every eligible record scans a contiguous byte range with stride
    # REP_STRIDE, so its touched lines are the contiguous span
    # [addr >> off, (addr + (arg - 1) * stride) >> off].
    line_lo = addr >> offset_bits
    line_hi = (addr + (arg - 1) * REP_STRIDE) >> offset_bits

    # win_end[i]: index of the first non-eligible record at or after i
    # (n if none) == one past the end of the eligible run containing i;
    # equals i itself for non-eligible records.
    stop = np.full(n, n, dtype=np.int64)
    blocked = np.nonzero(~elig)[0]
    stop[blocked] = blocked
    win_end = np.minimum.accumulate(stop[::-1])[::-1]

    def nprefix(values) -> np.ndarray:
        out = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(values, out=out[1:])
        return out

    def prefix(values) -> list:
        return nprefix(values).tolist()

    # Packed per-record validation code, one list subscript per record in
    # the interpreter's window loop:
    #   None          -- not eligible (window entry / run boundary)
    #   line  (>= 0)  -- single-line read or ifetch: probe any valid state
    #   ~line (< 0)   -- single-line write: probe EXCLUSIVE/MODIFIED
    #   (lo, hi, wr)  -- multi-line span (rare): probe each line in turn
    elig_l = elig.tolist()
    wr_l = is_wr.tolist()
    lo_l = line_lo.tolist()
    hi_l = line_hi.tolist()
    code = [
        (
            None
            if not e
            else (
                (~lo if w else lo)
                if lo == hi
                else (lo, hi, w)
            )
        )
        for e, w, lo, hi in zip(elig_l, wr_l, lo_l, hi_l)
    ]

    cyc_prefix = nprefix(np.where(is_ib, cycles, 0))

    return WindowTables(
        elig=elig_l,
        need_mod=wr_l,
        line_lo=lo_l,
        line_hi=hi_l,
        win_end=win_end.tolist(),
        code=code,
        c_read=prefix(np.where(is_rd, arg, 0)),
        c_write=prefix(np.where(is_wr & elig, arg, 0)),
        c_ifetch=prefix(np.where(is_ib, arg, 0)),
        c_cycles=cyc_prefix.tolist(),
        c_refs=prefix(np.where(elig, arg, 0)),
        a_lo=line_lo,
        a_hi=line_hi,
        a_wr=is_wr,
        a_cycles=cyc_prefix,
    )
