"""Shared-bus multiprocessor substrate: caches, Illinois coherence, the
split-transaction bus, memory, buffers, processors and the event engine."""

from .buffers import BusOp, CacheBusBuffer
from .bus import Bus
from .buslog import BusLog, render_bus_anatomy
from .cache import EXCLUSIVE, INVALID, MODIFIED, SHARED, Cache
from .coherence import (
    ILLINOIS,
    UPDATE as UPDATE_PROTOCOL,
    CoherenceProtocol,
    IllinoisProtocol,
    UpdateProtocol,
    get_protocol,
)
from .config import BusConfig, CacheConfig, MachineConfig, MemoryConfig
from .engine import Engine
from .memory import Memory
from .metrics import ProcMetrics, RunResult
from .processor import Processor
from .system import System, simulate

__all__ = [
    "Bus",
    "BusConfig",
    "BusLog",
    "BusOp",
    "render_bus_anatomy",
    "Cache",
    "CacheBusBuffer",
    "CacheConfig",
    "CoherenceProtocol",
    "EXCLUSIVE",
    "Engine",
    "ILLINOIS",
    "IllinoisProtocol",
    "UPDATE_PROTOCOL",
    "UpdateProtocol",
    "get_protocol",
    "INVALID",
    "MODIFIED",
    "MachineConfig",
    "Memory",
    "MemoryConfig",
    "ProcMetrics",
    "Processor",
    "RunResult",
    "SHARED",
    "System",
    "simulate",
]
