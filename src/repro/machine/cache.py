"""Per-processor cache with Illinois (MESI) states.

Geometry and policies follow §2.2 of the paper: two-way set-associative,
64 KB, 16-byte lines, LRU replacement, write-back, write-allocate.  The
cache itself only tracks line states and replacement; which bus
transactions a hit/miss triggers is the coherence controller's business
(:mod:`repro.machine.coherence`), and timing is the system's.

Lines are identified by their *line number* (``addr >> offset_bits``).
State storage is a dict (``line -> MESI state``; INVALID lines are
simply absent) plus a single preallocated flat *way array*: set ``s``
occupies slots ``[s * assoc, (s + 1) * assoc)``, most recently used
first, with ``-1`` marking empty ways.  The flat array replaces the
per-set Python lists of the original implementation: an LRU touch is a
couple of indexed stores instead of a ``list.remove``/``insert`` pair,
and there is no per-set list object churn.  (The dict stays because the
coherence layer wants O(1) residency probes by line number alone.)

A cache may additionally be attached to a machine-wide *residency
directory* (``line -> [holder procs]``, see
:meth:`Cache.attach_directory`).  The system uses it to snoop only the
caches that actually hold a line and to find cache-to-cache suppliers
without scanning every cache; this class keeps it exact on every
install, eviction and invalidation.
"""

from __future__ import annotations

from .config import CacheConfig

__all__ = ["Cache", "INVALID", "SHARED", "EXCLUSIVE", "MODIFIED", "STATE_NAMES"]

INVALID = 0
SHARED = 1
EXCLUSIVE = 2
MODIFIED = 3

STATE_NAMES = {INVALID: "I", SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}

#: empty-way marker in the flat way array (line numbers are >= 0)
_EMPTY = -1


class CacheCounters:
    """Hit/miss counters split by access type (feeds Tables 3/5/7)."""

    __slots__ = (
        "read_hits",
        "read_misses",
        "write_hits",
        "write_misses",
        "ifetch_hits",
        "ifetch_misses",
        "evictions",
        "writebacks",
        "invalidations_received",
        "c2c_supplied",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    @property
    def write_hit_ratio(self) -> float:
        total = self.write_hits + self.write_misses
        return self.write_hits / total if total else 1.0

    @property
    def read_hit_ratio(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 1.0


class Cache:
    """One processor's cache: state lookup, LRU, install/evict, snoops."""

    def __init__(self, config: CacheConfig, fast_path: bool = True) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        self._set_mask = self.n_sets - 1
        # contended-path fast path (MachineConfig.bus_fast_path): with the
        # paper's two-way geometry an LRU touch of a resident non-MRU line
        # is a single swap.  Gated so the reference configuration executes
        # the general rotate loop exactly as the committed baseline does.
        self._assoc2 = self.assoc == 2 and fast_path
        # line number -> MESI state (INVALID lines are simply absent)
        self.state: dict[int, int] = {}
        # flat way array: set s at [s*assoc, (s+1)*assoc), MRU first
        self._ways: list[int] = [_EMPTY] * (self.n_sets * self.assoc)
        self._sizes: list[int] = [0] * self.n_sets
        self.counters = CacheCounters()
        # optional machine-wide residency directory (shared dict) and the
        # processor index this cache registers under
        self._dir: dict[int, list[int]] | None = None
        self._proc = -1
        #: optional runtime invariant auditor (see repro.audit)
        self.audit = None

    # -- directory ------------------------------------------------------------
    def attach_directory(self, directory: dict[int, list[int]], proc: int) -> None:
        """Register this cache in a shared line->holders directory.

        Must be called while the cache is empty (the system attaches at
        construction time).
        """
        if self.state:
            raise RuntimeError("attach_directory on a non-empty cache")
        self._dir = directory
        self._proc = proc

    def _dir_add(self, line: int) -> None:
        d = self._dir
        if d is not None:
            holders = d.get(line)
            if holders is None:
                d[line] = [self._proc]
            else:
                holders.append(self._proc)

    def _dir_remove(self, line: int) -> None:
        d = self._dir
        if d is not None:
            holders = d[line]
            holders.remove(self._proc)
            if not holders:
                del d[line]

    # -- helpers -------------------------------------------------------------
    def set_of(self, line: int) -> int:
        return line & self._set_mask

    def probe(self, line: int) -> int:
        """Current state of ``line`` without touching LRU."""
        return self.state.get(line, INVALID)

    def _touch(self, line: int) -> None:
        """Move a resident line to the MRU slot of its set."""
        ways = self._ways
        base = (line & self._set_mask) * self.assoc
        if ways[base] != line:
            if self._assoc2:
                # resident + not MRU: it is the other way
                ways[base + 1] = ways[base]
                ways[base] = line
                return
            i = base + 1
            while ways[i] != line:
                i += 1
            while i > base:
                ways[i] = ways[i - 1]
                i -= 1
            ways[base] = line

    # -- processor-side accesses ----------------------------------------------
    def lookup(self, line: int) -> int:
        """Processor-side access: returns state (INVALID on miss) and
        refreshes LRU on a hit."""
        st = self.state.get(line, INVALID)
        if st:
            ways = self._ways
            base = (line & self._set_mask) * self.assoc
            if ways[base] != line:
                if self._assoc2:
                    # resident + not MRU: it is the other way
                    ways[base + 1] = ways[base]
                    ways[base] = line
                    return st
                i = base + 1
                while ways[i] != line:
                    i += 1
                while i > base:
                    ways[i] = ways[i - 1]
                    i -= 1
                ways[base] = line
        return st

    def set_state(self, line: int, state: int) -> None:
        """Change the state of a resident line (e.g. S->M after an
        invalidation completes, or E->M on a silent write hit)."""
        if line not in self.state:
            raise KeyError(f"line {line:#x} not resident")
        if state == INVALID:
            raise ValueError("use invalidate() to drop a line")
        self.state[line] = state

    def install(self, line: int, state: int) -> tuple[int, bool] | None:
        """Install a freshly fetched line in ``state``.

        Returns ``(victim_line, was_dirty)`` if a line had to be evicted,
        else None.  The caller is responsible for scheduling a write-back
        when ``was_dirty``.
        """
        if state == INVALID:
            raise ValueError("cannot install a line INVALID")
        if line in self.state:  # refill racing a snoop: just overwrite state
            self.state[line] = state
            self._touch(line)
            if self.audit is not None:
                self.audit.on_install(self._proc, line, state)
            return None
        set_idx = line & self._set_mask
        base = set_idx * self.assoc
        size = self._sizes[set_idx]
        ways = self._ways
        victim = None
        if size >= self.assoc:
            vline = ways[base + self.assoc - 1]  # LRU victim
            vstate = self.state.pop(vline)
            self.counters.evictions += 1
            self._dir_remove(vline)
            victim = (vline, vstate == MODIFIED)
            last = base + self.assoc - 1
        else:
            self._sizes[set_idx] = size + 1
            last = base + size
        while last > base:
            ways[last] = ways[last - 1]
            last -= 1
        ways[base] = line
        self.state[line] = state
        self._dir_add(line)
        if self.audit is not None:
            self.audit.on_install(self._proc, line, state)
        return victim

    # -- snoop side -------------------------------------------------------------
    def snoop_read(self, line: int) -> tuple[bool, bool]:
        """Another cache is read-missing on ``line``.

        Illinois: if present, this cache supplies the data cache-to-cache
        and the line drops to SHARED (memory is updated during the
        transfer if it was MODIFIED).  Returns ``(present, was_dirty)``.
        """
        st = self.state.get(line, INVALID)
        if not st:
            return (False, False)
        self.counters.c2c_supplied += 1
        dirty = st == MODIFIED
        self.state[line] = SHARED
        return (True, dirty)

    def snoop_invalidate(self, line: int) -> tuple[bool, bool]:
        """Another cache is claiming ``line`` exclusively (RFO or
        invalidation signal).  Returns ``(present, was_dirty)``."""
        st = self.state.pop(line, INVALID)
        if not st:
            return (False, False)
        set_idx = line & self._set_mask
        base = set_idx * self.assoc
        size = self._sizes[set_idx]
        ways = self._ways
        i = base
        while ways[i] != line:
            i += 1
        end = base + size - 1
        while i < end:
            ways[i] = ways[i + 1]
            i += 1
        ways[end] = _EMPTY
        self._sizes[set_idx] = size - 1
        self.counters.invalidations_received += 1
        self._dir_remove(line)
        return (True, st == MODIFIED)

    # -- introspection ---------------------------------------------------------
    @property
    def sets(self) -> list[list[int]]:
        """Per-set MRU-ordered resident line numbers (a reconstructed
        view of the flat way array; introspection and tests only)."""
        out = []
        for s in range(self.n_sets):
            base = s * self.assoc
            out.append(
                [l for l in self._ways[base : base + self._sizes[s]] if l != _EMPTY]
            )
        return out

    def resident_lines(self) -> list[int]:
        return list(self.state)

    def occupancy(self) -> int:
        return len(self.state)

    def check_invariants(self) -> None:
        """Internal consistency between the state dict, the way array and
        the occupancy counts (used by tests and the property suite)."""
        seen = set()
        for idx in range(self.n_sets):
            base = idx * self.assoc
            size = self._sizes[idx]
            if size > self.assoc:
                raise AssertionError(f"set {idx} over-full: size {size}")
            lst = self._ways[base : base + self.assoc]
            for slot, line in enumerate(lst):
                if slot < size:
                    if line == _EMPTY:
                        raise AssertionError(f"set {idx} slot {slot} empty but counted")
                    if line & self._set_mask != idx:
                        raise AssertionError(f"line {line:#x} in wrong set {idx}")
                    if line not in self.state:
                        raise AssertionError(f"line {line:#x} listed but stateless")
                    seen.add(line)
                elif line != _EMPTY:
                    raise AssertionError(f"set {idx} slot {slot} stale entry {line:#x}")
        if seen != set(self.state):
            raise AssertionError("state dict and way array disagree")
