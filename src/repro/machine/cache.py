"""Per-processor cache with Illinois (MESI) states.

Geometry and policies follow §2.2 of the paper: two-way set-associative,
64 KB, 16-byte lines, LRU replacement, write-back, write-allocate.  The
cache itself only tracks line states and replacement; which bus
transactions a hit/miss triggers is the coherence controller's business
(:mod:`repro.machine.coherence`), and timing is the system's.

Lines are identified by their *line number* (``addr >> offset_bits``).
State storage is a dict plus per-set MRU-ordered lists, which profiling
shows beats numpy arrays for the point lookups that dominate trace
interpretation.
"""

from __future__ import annotations

from .config import CacheConfig

__all__ = ["Cache", "INVALID", "SHARED", "EXCLUSIVE", "MODIFIED", "STATE_NAMES"]

INVALID = 0
SHARED = 1
EXCLUSIVE = 2
MODIFIED = 3

STATE_NAMES = {INVALID: "I", SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}


class CacheCounters:
    """Hit/miss counters split by access type (feeds Tables 3/5/7)."""

    __slots__ = (
        "read_hits",
        "read_misses",
        "write_hits",
        "write_misses",
        "ifetch_hits",
        "ifetch_misses",
        "evictions",
        "writebacks",
        "invalidations_received",
        "c2c_supplied",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    @property
    def write_hit_ratio(self) -> float:
        total = self.write_hits + self.write_misses
        return self.write_hits / total if total else 1.0

    @property
    def read_hit_ratio(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 1.0


class Cache:
    """One processor's cache: state lookup, LRU, install/evict, snoops."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        self._set_mask = self.n_sets - 1
        # line number -> MESI state (INVALID lines are simply absent)
        self.state: dict[int, int] = {}
        # per-set MRU-ordered resident line numbers
        self.sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.counters = CacheCounters()

    # -- helpers -------------------------------------------------------------
    def set_of(self, line: int) -> int:
        return line & self._set_mask

    def probe(self, line: int) -> int:
        """Current state of ``line`` without touching LRU."""
        return self.state.get(line, INVALID)

    def _touch(self, line: int) -> None:
        lst = self.sets[line & self._set_mask]
        if lst and lst[0] != line:
            lst.remove(line)
            lst.insert(0, line)

    # -- processor-side accesses ----------------------------------------------
    def lookup(self, line: int) -> int:
        """Processor-side access: returns state (INVALID on miss) and
        refreshes LRU on a hit."""
        st = self.state.get(line, INVALID)
        if st:
            self._touch(line)
        return st

    def set_state(self, line: int, state: int) -> None:
        """Change the state of a resident line (e.g. S->M after an
        invalidation completes, or E->M on a silent write hit)."""
        if line not in self.state:
            raise KeyError(f"line {line:#x} not resident")
        if state == INVALID:
            raise ValueError("use invalidate() to drop a line")
        self.state[line] = state

    def install(self, line: int, state: int) -> tuple[int, bool] | None:
        """Install a freshly fetched line in ``state``.

        Returns ``(victim_line, was_dirty)`` if a line had to be evicted,
        else None.  The caller is responsible for scheduling a write-back
        when ``was_dirty``.
        """
        if state == INVALID:
            raise ValueError("cannot install a line INVALID")
        if line in self.state:  # refill racing a snoop: just overwrite state
            self.state[line] = state
            self._touch(line)
            return None
        idx = line & self._set_mask
        lst = self.sets[idx]
        victim = None
        if len(lst) >= self.assoc:
            vline = lst.pop()  # LRU victim
            vstate = self.state.pop(vline)
            self.counters.evictions += 1
            victim = (vline, vstate == MODIFIED)
        lst.insert(0, line)
        self.state[line] = state
        return victim

    # -- snoop side -------------------------------------------------------------
    def snoop_read(self, line: int) -> tuple[bool, bool]:
        """Another cache is read-missing on ``line``.

        Illinois: if present, this cache supplies the data cache-to-cache
        and the line drops to SHARED (memory is updated during the
        transfer if it was MODIFIED).  Returns ``(present, was_dirty)``.
        """
        st = self.state.get(line, INVALID)
        if not st:
            return (False, False)
        self.counters.c2c_supplied += 1
        dirty = st == MODIFIED
        self.state[line] = SHARED
        return (True, dirty)

    def snoop_invalidate(self, line: int) -> tuple[bool, bool]:
        """Another cache is claiming ``line`` exclusively (RFO or
        invalidation signal).  Returns ``(present, was_dirty)``."""
        st = self.state.pop(line, INVALID)
        if not st:
            return (False, False)
        self.sets[line & self._set_mask].remove(line)
        self.counters.invalidations_received += 1
        return (True, st == MODIFIED)

    # -- introspection ---------------------------------------------------------
    def resident_lines(self) -> list[int]:
        return list(self.state)

    def occupancy(self) -> int:
        return len(self.state)

    def check_invariants(self) -> None:
        """Internal consistency between the state dict and the set lists
        (used by tests and the property suite)."""
        seen = set()
        for idx, lst in enumerate(self.sets):
            if len(lst) > self.assoc:
                raise AssertionError(f"set {idx} over-full: {lst}")
            for line in lst:
                if line & self._set_mask != idx:
                    raise AssertionError(f"line {line:#x} in wrong set {idx}")
                if line not in self.state:
                    raise AssertionError(f"line {line:#x} listed but stateless")
                seen.add(line)
        if seen != set(self.state):
            raise AssertionError("state dict and set lists disagree")
