"""Run metrics: per-processor stall accounting and the RunResult record.

The paper's reporting conventions (§3):

* a processor's **utilization** is its work (ideal) cycles divided by
  the total cycles until *that processor* finished its trace; the table
  reports the average over processors;
* **stall causes** are the percentage of stall cycles attributable to
  cache misses vs. waiting for locks (they need not sum to 100: buffer
  pressure and weak-ordering drains are small third categories);
* **run-time** is the completion time of the last processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sync.stats import LockStats

__all__ = ["ProcMetrics", "RunResult"]


class ProcMetrics:
    """Mutable per-processor accounting, owned by the Processor."""

    __slots__ = (
        "proc",
        "work_cycles",
        "stall_miss",
        "stall_lock",
        "stall_drain",
        "stall_buffer",
        "completion_time",
        "refs_processed",
        "drains",
        "drains_nonempty",
    )

    def __init__(self, proc: int) -> None:
        self.proc = proc
        self.work_cycles = 0
        self.stall_miss = 0
        self.stall_lock = 0
        self.stall_drain = 0
        self.stall_buffer = 0
        self.completion_time = 0
        self.refs_processed = 0
        self.drains = 0
        self.drains_nonempty = 0

    @property
    def total_stall(self) -> int:
        return self.stall_miss + self.stall_lock + self.stall_drain + self.stall_buffer

    @property
    def utilization(self) -> float:
        if self.completion_time <= 0:
            return 1.0
        return self.work_cycles / self.completion_time

    # -- serialization support (repro.runner ships results across
    # -- process boundaries and persists them in the result cache) --------
    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, d: dict) -> "ProcMetrics":
        m = cls(int(d["proc"]))
        for name in cls.__slots__:
            setattr(m, name, int(d[name]))
        return m

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProcMetrics):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self.__slots__
        )

    __hash__ = None  # mutable accounting record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcMetrics(proc={self.proc}, work={self.work_cycles}, "
            f"stall={self.total_stall}, done={self.completion_time})"
        )


@dataclass(frozen=True)
class RunResult:
    """Everything a simulation run produces; feeds every table."""

    program: str
    n_procs: int
    lock_scheme: str
    consistency: str
    run_time: int
    proc_metrics: tuple
    lock_stats: LockStats
    bus_busy_cycles: int
    bus_op_counts: dict
    # cache aggregates, summed over processors
    read_hits: int
    read_misses: int
    write_hits: int
    write_misses: int
    ifetch_hits: int
    ifetch_misses: int
    writebacks: int
    c2c_supplied: int
    invalidations_received: int
    buffer_max_occupancy: int
    meta: dict = field(default_factory=dict)
    #: fast-path/kernel introspection (attempt, rejection and collapse
    #: counters).  Excluded from equality and from serialization
    #: (repro.runner.serialize): the optimization knobs must leave the
    #: *result* byte-identical, so diagnostics can never feed a table,
    #: a golden file or a differential comparison -- they surface only
    #: through ``repro run --profile``.
    diagnostics: dict = field(default_factory=dict, compare=False)

    # -- Table 3/5/7 columns ----------------------------------------------------
    @property
    def avg_utilization(self) -> float:
        ms = self.proc_metrics
        return sum(m.utilization for m in ms) / len(ms)

    @property
    def total_stall(self) -> int:
        return sum(m.total_stall for m in self.proc_metrics)

    @property
    def stall_pct_miss(self) -> float:
        tot = self.total_stall
        if tot == 0:
            return 0.0
        return 100.0 * sum(m.stall_miss for m in self.proc_metrics) / tot

    @property
    def stall_pct_lock(self) -> float:
        tot = self.total_stall
        if tot == 0:
            return 0.0
        return 100.0 * sum(m.stall_lock for m in self.proc_metrics) / tot

    @property
    def stall_pct_drain(self) -> float:
        tot = self.total_stall
        if tot == 0:
            return 0.0
        return 100.0 * sum(m.stall_drain for m in self.proc_metrics) / tot

    # -- Table 7 column -------------------------------------------------------
    @property
    def write_hit_ratio(self) -> float:
        tot = self.write_hits + self.write_misses
        return self.write_hits / tot if tot else 1.0

    @property
    def read_hit_ratio(self) -> float:
        tot = self.read_hits + self.read_misses
        return self.read_hits / tot if tot else 1.0

    @property
    def bus_utilization(self) -> float:
        return self.bus_busy_cycles / self.run_time if self.run_time else 0.0

    @property
    def total_work_cycles(self) -> int:
        return sum(m.work_cycles for m in self.proc_metrics)

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        ls = self.lock_stats
        return (
            f"{self.program}: {self.n_procs} procs, locks={self.lock_scheme}, "
            f"model={self.consistency}\n"
            f"  run-time {self.run_time:,} cycles, "
            f"utilization {100 * self.avg_utilization:.1f}%\n"
            f"  stalls: {self.stall_pct_miss:.1f}% cache miss, "
            f"{self.stall_pct_lock:.1f}% lock wait\n"
            f"  locks: {ls.acquisitions} acquisitions, {ls.transfers} transfers, "
            f"{ls.avg_waiters_at_transfer:.2f} waiters at transfer, "
            f"avg hold {ls.avg_hold:.0f} cycles\n"
            f"  bus utilization {100 * self.bus_utilization:.1f}%, "
            f"write hit ratio {100 * self.write_hit_ratio:.1f}%"
        )
