"""Spin-phase collapse kernel: closed-form retirement of lock-wait
episodes.

The columnar segment kernel (:mod:`repro.machine.kernel`) collapses
machine-wide *quiet* segments, and its per-processor quiet predicate
rejects any processor in ``_WAIT_LOCK`` -- so the moment a lock is
contended, every interpreter bounce of the *holder's* critical section
goes back to firing one engine event at a time.  That is exactly the
regime the paper studies: under contention the holder's progress sets
the pace of the whole machine, and the simulator spends its time
bouncing the holder through a private hot loop while the waiters sit in
cache spinning silently.

This module relaxes the quiet predicate to *lock-wait phases*: spans
where every non-drained processor is either (a) quiet in the base
kernel's sense (RUNNING with nothing in flight, or DONE), or (b) blocked
in ``_WAIT_LOCK`` with a **certified spin signature**.  Certification is
the lock scheme's own declaration, through the
:meth:`~repro.sync.base.LockManager.spin_wakeup` extension of the
LockPortAPI, of what the waiter's per-iteration footprint is:

``SPIN_IDLE``
    The waiter holds no engine event at all -- it is parked in the
    manager's queue (queuing, exact-queuing, mcs, clh, ticket) or
    spinning on a locally cached copy (ttas), purely reactive to the
    release.  Its event/bus/cache footprint per iteration is the empty
    footprint, trivially cycle-periodic: fast-forwarding the rest of the
    machine past it changes nothing it can observe.

``t >= 0`` (a pending wakeup time)
    The waiter's next engine event is a lock-manager timer at exactly
    ``t`` (a backed-off test-and-set retry, a release store retiring
    into the write buffer).  Between now and ``t`` its footprint is
    empty; at ``t`` it acts.  The collapse horizon therefore starts at
    the *earliest* pending timer machine-wide (:meth:`_horizon0`), so a
    collapse only ever retires bounces that fire strictly before any
    waiter wakes -- the engine-bucket interleaving with the timer is
    byte-identical to the reference (the timer was inserted into its
    bucket before the collapse; collapsed bounces all fire earlier).

``SPIN_OPAQUE``
    The scheme makes no claim (test-and-set mid-flight, a barrier wait
    routed through ``_WAIT_LOCK``): the phase is not certifiable and the
    attempt rejects, exactly as the base kernel would have.

The *release itself* -- the hand-off, grant ordering, claim protocol,
stats and auditor hooks -- is never collapsed: sync records bound every
static window (``win_end``), so the holder's UNLOCK always replays
through the ordinary per-record path.  The kernel only fast-forwards the
silent interior of the critical section (and, when ``collapse_quiet``,
ordinary quiet segments like the base kernel).

Everything here is gated behind ``MachineConfig.spin_kernel`` and
requires the production bucketed Engine.  Byte-identity is enforced by
the differential grid (``python -m repro diff-verify --vary
spin-kernel``), a hypothesis property suite
(tests/test_spinphase_properties.py) and a mutation self-test
(repro.audit.faults SPIN_FAULTS, tests/test_spin_faults.py); the
legality of every collapse is audited at runtime by
:class:`repro.audit.spinphase.SpinAuditor`.
"""

from __future__ import annotations

from ..sync.base import SPIN_IDLE, SPIN_OPAQUE
from .kernel import _INF, SegmentKernel
from .processor import _WAIT_LOCK

__all__ = ["SpinKernel"]


class SpinKernel(SegmentKernel):
    """Segment kernel with lock-wait phase certification.

    ``collapse_quiet`` controls whether phases with *zero* certified
    waiters (the base kernel's quiet segments) also collapse: the System
    wires it to ``MachineConfig.segment_kernel``, so the two knobs stay
    independently toggleable in the differential grid.
    """

    def __init__(self, system, collapse_quiet: bool = True) -> None:
        super().__init__(system)
        self.collapse_quiet = collapse_quiet
        #: cycles of timer-free runway below which a timer-bounded phase
        #: is rejected without planning: a collapse that cannot cover at
        #: least a couple of bounces never amortizes its analysis.
        #: Dense-retry schemes (plain test-and-set fires every 16
        #: cycles) produce sub-batch windows on *every* scan; this floor
        #: keeps them on the reference path at scan cost only.
        self.min_window = 2 * self.batch
        #: rejection gate (records to skip after a failed attempt):
        #: adaptive, unlike the base kernel's fixed 512.  In a contended
        #: phase a rejection usually means a waiter's wakeup is in
        #: flight (its retry holds the bus for tens of cycles), so the
        #: next window opens within a bounce or two -- a 512-record gate
        #: would skip whole collapse windows between backoff retries.
        #: But when rejections *persist* (a dense-retry scheme like
        #: plain T&S keeps the bus hot and its timers sub-window), the
        #: gate doubles per consecutive failure up to ``max_gate`` --
        #: window rejections jump 16x at once -- and resets on the next
        #: successful collapse, so hopeless phases cost a scan only a
        #: few times per critical section.
        self.backoff = 4 * self.batch
        self.max_gate = 64 * self.batch
        self._gate = self.backoff
        #: waiters certified by the last successful phase scan, as
        #: (proc, wakeup) with wakeup a timer time or SPIN_IDLE
        self._phase_waiters: list[tuple[int, int]] = []
        #: earliest pending lock-manager timer of the last scan
        self._spin_horizon = _INF
        #: introspection (never part of RunResult): collapses with >= 1
        #: certified waiter, cumulative waiters certified, certifications
        #: by kind, and phases rejected on an uncertifiable processor
        self.spin_segments = 0
        self.spin_waiters = 0
        self.spin_idle_certs = 0
        self.spin_timer_certs = 0
        self.spin_opaque_rejects = 0
        self.spin_window_rejects = 0
        self._window_rejected = False

    # -- detection -----------------------------------------------------

    def _begin_phase(self) -> None:
        """Reset the certified-waiter list for a fresh scan (a separate
        method so the audit mutation tests can corrupt exactly this --
        see repro.audit.faults SPIN_FAULTS)."""
        self._phase_waiters.clear()

    def _quiet(self) -> bool:
        """Lock-wait phase detection: the base kernel's machine-wide
        checks, with ``_WAIT_LOCK`` processors admitted when their lock
        scheme certifies the spin signature (see the module docstring).
        Records the certified waiters and the timer horizon."""
        system = self.system
        if system.bus.busy or system.memory.pending():
            return False
        iq = getattr(system, "_issue_q", None)
        if iq is not None:
            for pending in iq:
                if pending:
                    return False
        for buf in self.buffers:
            if buf.entries or buf._space_waiters:
                return False
        self._begin_phase()
        waiters = self._phase_waiters
        horizon = _INF
        floor = self.engine.now + self.min_window
        wake = system.locks.spin_wakeup
        pq = self._proc_quiet
        for q in self.procs:
            if pq(q):
                continue
            if (
                q.state != _WAIT_LOCK
                or q.outstanding
                or q.outstanding_wb
                or q._draining
            ):
                return False
            w = wake(q.proc)
            if w == SPIN_OPAQUE:
                self.spin_opaque_rejects += 1
                return False
            waiters.append((q.proc, w))
            if w == SPIN_IDLE:
                self.spin_idle_certs += 1
            else:
                self.spin_timer_certs += 1
                if w < horizon:
                    horizon = w
                    if horizon < floor:
                        # a timer fires too soon for a collapse to
                        # amortize its analysis: reject without
                        # finishing the scan, and let attempt() apply
                        # the heavy gate -- this condition is persistent
                        # (a dense-retry scheme re-arms the same ladder
                        # every time)
                        self.spin_window_rejects += 1
                        self._window_rejected = True
                        return False
        if not waiters and not self.collapse_quiet:
            return False
        self._spin_horizon = horizon
        return True

    def _horizon0(self):
        """The collapse horizon starts at the earliest pending waiter
        timer: no bounce firing at or after a wakeup is ever collapsed,
        so the waiter's action interleaves with the holder's resumes in
        exactly the reference bucket order."""
        return self._spin_horizon

    # -- the collapse --------------------------------------------------

    def attempt(self, p) -> bool:
        self._window_rejected = False
        collapsed = super().attempt(p)
        if collapsed:
            if self._phase_waiters:
                self.spin_segments += 1
                self.spin_waiters += len(self._phase_waiters)
            self._gate = self.backoff
        else:
            # override the base kernel's fixed gate with the adaptive
            # one (see __init__): tight after a success, backing off
            # geometrically while rejections persist
            p._kernel_gate = p.idx + self._gate
            grow = 16 if self._window_rejected else 2
            self._gate = min(self._gate * grow, self.max_gate)
        return collapsed

    def _audit_collapse(self, aud, spans, now: int) -> None:
        """Waiter-bearing collapses go to the spin auditor (whose
        machine scan admits certified ``_WAIT_LOCK`` processors); pure
        quiet segments audit exactly as the base kernel's."""
        if self._phase_waiters:
            aud.on_spin_collapse(
                self.system,
                spans,
                tuple(self._phase_waiters),
                self._spin_horizon,
                now,
            )
        else:
            super()._audit_collapse(aud, spans, now)
