"""Machine configuration.

The default values reproduce the paper's model architecture (§2.2): a
shared-bus multiprocessor patterned on the Sequent Symmetry Model B with
per-processor 64 KB two-way set-associative write-back caches (16-byte
lines, LRU, write-allocate, Illinois coherence), a 64-bit split-
transaction bus with round-robin arbitration, a four-entry cache--bus
buffer per processor, and a memory module with a three-cycle access time
and two-entry input and output buffers.  With these numbers an
uncontended cache miss stalls the processor for six cycles: one to send
the request, three in memory, two to return the 16-byte line over the
8-byte bus -- exactly the paper's accounting.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

__all__ = ["CacheConfig", "BusConfig", "MemoryConfig", "MachineConfig"]


@dataclass(frozen=True)
class CacheConfig:
    """Per-processor cache geometry (paper defaults: 64 KB, 2-way, 16 B).

    ``write_policy`` selects write-back (the paper's machine) or
    write-through (no-allocate, every write a word-sized bus/memory
    transaction).  The write-through mode exists to test the paper's
    §4.2 conjecture that weak ordering's benefit "would be greater ...
    [if] the number of writes to memory increased (as in the case of a
    write-through cache)".
    """

    size_bytes: int = 64 * 1024
    line_bytes: int = 16
    assoc: int = 2
    write_policy: str = "writeback"

    def __post_init__(self) -> None:
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError("size must be divisible by line_bytes * assoc")
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("number of sets must be a power of two")
        if self.write_policy not in ("writeback", "writethrough"):
            raise ValueError("write_policy must be 'writeback' or 'writethrough'")

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.assoc

    @property
    def offset_bits(self) -> int:
        return self.line_bytes.bit_length() - 1


@dataclass(frozen=True)
class BusConfig:
    """Split-transaction bus parameters.

    ``width_bytes`` is the data-path width; a cache line takes
    ``line_bytes / width_bytes`` data cycles.  ``addr_cycles`` is the cost
    of the address/request phase, also used for invalidation signals.
    """

    width_bytes: int = 8
    addr_cycles: int = 1

    def data_cycles(self, line_bytes: int) -> int:
        return -(-line_bytes // self.width_bytes)  # ceil division


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory module parameters (3-cycle access, 2-entry buffers)."""

    access_cycles: int = 3
    input_buffer: int = 2
    output_buffer: int = 2


@dataclass(frozen=True)
class MachineConfig:
    """Top-level machine description.

    Parameters
    ----------
    n_procs:
        Number of active processors (the paper's runs use 9, 10 or 12).
    cachebus_buffer_depth:
        Depth of the per-processor cache--bus interface buffer.  The paper
        sets this to four "in anticipation of the larger buffer
        requirements of a weakly consistent architecture" and then
        questions the choice in §4.2; the buffer-depth ablation sweeps it.
    batch_records:
        Simulation fidelity knob: how many trace records a processor may
        interpret between interactions with the global event queue when
        it is not stalling.  Smaller values interleave snoop traffic more
        finely at the cost of simulation speed; 1 is exact
        record-by-record interleaving.
    fast_path:
        Enable the private-window fast path through the trace
        interpreter (:mod:`repro.machine.fastpath`).  Runs of references
        that provably hit in the local cache with no bus, snoop or lock
        interaction are retired in one step instead of one access at a
        time.  **Metric-neutral by construction**: results are
        byte-identical to the reference interpreter (enforced by
        :mod:`repro.testing.differential` and the golden fixtures), so
        this is purely an escape hatch for debugging and for measuring
        the fast path itself.
    bus_fast_path:
        Enable the contended-path fast path through the bus/miss/lock
        machinery: O(1) bitmask round-robin arbitration, fused
        grant->fire->release dispatch, and preallocated (closure-free)
        completion trampolines in the bus service and memory module.
        Like ``fast_path`` this is **metric-neutral by construction** --
        the reference arbiter and closure-based completion chain are
        kept verbatim as the ``False`` path and the differential
        harness proves both byte-identical on every suite cell -- so the
        flag is purely an escape hatch for debugging and for measuring
        the contended fast path itself (see docs/performance.md).
    segment_kernel:
        Enable the columnar segment-retirement kernel
        (:mod:`repro.machine.kernel`): when the *whole machine* is
        quiet -- every processor in a private bus-free run, no bus
        transaction, memory operation, buffered write-back or pending
        drain in flight -- entire multi-batch spans of trace records are
        validated and retired with vectorized ndarray arithmetic in one
        engine event instead of one interpreter bounce per batch.  Like
        the other fast paths it is **metric-neutral by construction**:
        the kernel only collapses interpreter bounces that provably
        schedule nothing observable, reproduces their exact resume
        cadence, and bails to the ordinary interpreter at the first
        record it cannot prove silent.  Byte-identity is enforced by the
        differential grid (``diff-verify --vary segment-kernel``), a
        hypothesis property suite, and a mutation self-test; the flag is
        an escape hatch for debugging and for measuring the kernel
        itself (see docs/performance.md).  Auto-disabled on the
        reference ``HeapEngine``.
    spin_kernel:
        Enable the spin-phase collapse kernel
        (:mod:`repro.machine.spinphase`): when every non-drained
        processor is either spinning/enqueued on a held lock or is the
        holder advancing through its critical section, the holder's
        interpreter bounces are fast-forwarded to the release in closed
        form -- iteration counts, cycle accounting and cache-state
        transitions synthesized arithmetically -- while the hand-off
        itself still replays through the per-record path, so grant
        order, claim protocol, and auditor hooks are untouched.  Each
        lock scheme certifies its waiters through the spin-signature
        extension of :class:`repro.sync.base.LockManager` (idle
        enqueued/cached-spin waiters, or periodic retry timers that
        bound the collapse horizon).  Like the other fast paths it is
        **metric-neutral by construction**, enforced by the
        differential grid (``diff-verify --vary spin-kernel``), a
        hypothesis property suite, and a SPIN-fault mutation self-test;
        off restores the previous behaviour byte-for-byte (see
        docs/performance.md).  Auto-disabled on the reference
        ``HeapEngine``.
    """

    n_procs: int = 12
    cache: CacheConfig = field(default_factory=CacheConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    cachebus_buffer_depth: int = 4
    batch_records: int = 32
    fast_path: bool = True
    bus_fast_path: bool = True
    segment_kernel: bool = True
    spin_kernel: bool = True
    #: snooping coherence protocol: "illinois" (the paper's
    #: write-invalidate MESI) or "update" (Firefly-style write-update;
    #: extension -- see repro.machine.coherence)
    coherence: str = "illinois"
    #: attach a raise-mode runtime invariant auditor to the run (the
    #: "simulator sanitizer", see repro.audit; CLI --audit).  Auditing is
    #: observation-only: results are byte-identical with it on or off.
    audit: bool = False

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        if self.cachebus_buffer_depth < 1:
            raise ValueError("cachebus_buffer_depth must be >= 1")
        if self.batch_records < 1:
            raise ValueError("batch_records must be >= 1")
        from .coherence import get_protocol

        get_protocol(self.coherence)  # validates the name

    @property
    def line_bytes(self) -> int:
        return self.cache.line_bytes

    @property
    def line_data_cycles(self) -> int:
        """Bus cycles to move one cache line (2 with paper defaults)."""
        return self.bus.data_cycles(self.cache.line_bytes)

    @property
    def uncontended_miss_cycles(self) -> int:
        """Stall of an isolated miss (6 with paper defaults)."""
        return (
            self.bus.addr_cycles
            + self.memory.access_cycles
            + self.line_data_cycles
        )

    # -- lock-operation costs (repro.sync bus-op model; consumed by the
    # -- contention predictor, repro.sync.predict) ----------------------------
    @property
    def lock_c2c_cycles(self) -> int:
        """Bus cycles of a cache-to-cache lock-line transfer: address
        phase plus the line's data cycles (3 with paper defaults).  This
        is the cost of ``LOCK_READ``/``LOCK_RFO`` answered by another
        cache and of the ``LOCK_XFER`` hand-off transfer."""
        return self.bus.addr_cycles + self.line_data_cycles

    @property
    def lock_inval_cycles(self) -> int:
        """Bus cycles of a lock-line invalidation signal (``LOCK_INVAL``;
        1 with paper defaults): an address-only transaction."""
        return self.bus.addr_cycles

    @property
    def lock_mem_cycles(self) -> int:
        """End-to-end cycles of a lock operation served by memory
        (``LOCK_MEM`` and cold ``LOCK_READ``/``LOCK_RFO``; 6 with paper
        defaults) -- the same path as an uncontended cache miss."""
        return self.uncontended_miss_cycles

    def with_procs(self, n_procs: int) -> "MachineConfig":
        """A copy of this configuration with a different processor count."""
        return replace(self, n_procs=n_procs)

    # -- serialization (used by repro.runner to describe jobs across
    # -- process boundaries and in cache keys) -------------------------------
    def to_dict(self) -> dict:
        """A plain-JSON description of the full machine configuration."""
        return {
            "n_procs": self.n_procs,
            "cache": asdict(self.cache),
            "bus": asdict(self.bus),
            "memory": asdict(self.memory),
            "cachebus_buffer_depth": self.cachebus_buffer_depth,
            "batch_records": self.batch_records,
            "fast_path": self.fast_path,
            "bus_fast_path": self.bus_fast_path,
            "segment_kernel": self.segment_kernel,
            "spin_kernel": self.spin_kernel,
            "coherence": self.coherence,
            "audit": self.audit,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MachineConfig":
        return cls(
            n_procs=d["n_procs"],
            cache=CacheConfig(**d["cache"]),
            bus=BusConfig(**d["bus"]),
            memory=MemoryConfig(**d["memory"]),
            cachebus_buffer_depth=d["cachebus_buffer_depth"],
            batch_records=d["batch_records"],
            # absent in descriptions serialized before the fast paths existed
            fast_path=d.get("fast_path", True),
            bus_fast_path=d.get("bus_fast_path", True),
            segment_kernel=d.get("segment_kernel", True),
            spin_kernel=d.get("spin_kernel", True),
            coherence=d["coherence"],
            # absent in descriptions serialized before the auditor existed
            audit=d.get("audit", False),
        )
