"""Columnar segment-retirement kernel.

The PR 2 private-window fast path retires runs of silent cache hits one
*interpreter bounce* (``batch_records`` records) at a time: every bounce
is still an engine event, a ``_run`` entry, a ``_hot`` unpack and a
window validation.  On hot loops that is the remaining cost.  This
module collapses whole *machine-wide quiet segments* -- spans where every
processor is simultaneously inside a private, bus-free, lock-free run
and nothing is in flight anywhere (no bus transaction, no memory
operation, no buffered write-back, no pending drain, no queued issue) --
into a single engine event per processor, validating and retiring
thousands of records with vectorized ndarray arithmetic.

Correctness argument (the commutation argument of Maarand & Uustalu's
*Generating Representative Executions*, specialized to this machine;
see docs/performance.md for the long form):

* A record retires **silently** iff all lines it touches are resident
  (>= EXCLUSIVE for writes).  A silent retirement touches only
  processor-local state -- counters, the local clock, LRU order, a
  silent E->M on its own line -- and schedules nothing.  Silent
  retirements of *different* processors therefore commute, and silent
  retirements of one processor preserve the validity of its own later
  silent records (hits never evict; E->M keeps a line writable).
* While the machine is quiet the **only pending events are interpreter
  resumes** (one per running processor, at exactly its local time; the
  detector's conditions exclude every other event source in the
  machine, see ``_quiet``).  Firing a resume whose whole bounce is
  silent changes nothing observable and schedules exactly one more
  resume at a precomputed time (the ideal-cycle prefix sums).
* Therefore, up to the earliest time ``t_safe`` at which *any*
  processor can next do something observable (block, issue, sync,
  or merely continue mid-record), the reference engine would fire
  nothing but silent bounces.  Collapsing every bounce that fires
  strictly before ``t_safe`` -- applying its counter/cache effects in
  bulk and re-scheduling each processor's next live bounce at its
  exact reference time, in its exact reference *bucket insertion
  order* -- reproduces the reference machine state byte for byte.

The final (partial or blocking) bounce of every span is deliberately
left to the ordinary interpreter: all blocking, buffering and
synchronization behaviour stays on the reference path, and the kernel
never needs to model it.

Cadence.  One interpreter bounce retires exactly ``batch_records``
records of a silent run (each record costs one budget unit regardless
of the fast path), and only IBLOCK records advance the local clock, so
bounce ``m`` of a run starting at record ``i0`` at local time ``t``
fires at ``t + c_cycles[i0 + m*batch] - c_cycles[i0]``.  The kernel
collapses whole bounces only, which is what makes its resume times --
and therefore the engine's same-cycle bucket order -- exactly the
reference's.

Everything here is gated behind ``MachineConfig.segment_kernel`` and
requires the production bucketed :class:`~repro.machine.engine.Engine`
(the reference ``HeapEngine`` falls back to the plain interpreter, like
the inline-scheduling shortcuts).  Byte-identity is enforced by the
differential grid (``python -m repro diff-verify --vary
segment-kernel``), a hypothesis property suite
(tests/test_kernel_properties.py) and a mutation self-test
(repro.audit.faults KERNEL_FAULTS, tests/test_kernel_faults.py).
"""

from __future__ import annotations

import heapq

import numpy as np

from .cache import EXCLUSIVE, MODIFIED
from .processor import _DONE, _RUNNING, _interp_tables

__all__ = ["SegmentKernel"]

_INF = float("inf")  # engine times are ints: inf outranks every horizon

# Children pushed into the merge heap must order after every entry that
# was already sitting in an engine bucket; bucket positions are tiny, so
# any large constant works.
_SEQ_BASE = 1 << 40


class SegmentKernel:
    """Machine-wide quiet-segment detector + columnar retirement.

    One instance per :class:`~repro.machine.system.System`; construction
    plants the ``_kernel`` entry hook on every processor.  All numeric
    tables are the per-trace :class:`~repro.machine.fastpath.
    WindowTables` (shared with the window fast path via the interpreter
    memo, so a suite run pays for them once per trace).
    """

    def __init__(self, system) -> None:
        self.system = system
        self.engine = system.engine
        self.procs = system.procs
        self.buffers = system.buffers
        self.batch = system.config.batch_records
        #: entry gate: static run length below which an attempt cannot
        #: amortize the machine scan (cost heuristic only -- gated
        #: records take the reference path, which retires them
        #: identically)
        self.min_span = max(2 * self.batch, 8)
        #: records to skip after a failed attempt before trying again
        self.backoff = 512
        #: analysis cap per attempt: bounds temp arrays and keeps a
        #: pathological validate/re-validate alternation linear.  Runs
        #: longer than this collapse in successive segments.  (Analysis
        #: probes in doubling chunks, so a failed attempt only pays for
        #: the chunks up to its first invalid record, never the cap.)
        self.max_span = 1 << 20
        #: introspection (never part of RunResult): segments collapsed,
        #: processor-collapses, records/bounces retired columnar,
        #: attempts and quiet/horizon rejections
        self.segments = 0
        self.collapsed_procs = 0
        self.records = 0
        self.bounces = 0
        self.attempts = 0
        self.rejected = 0
        self._log: list | None = None  # tests: (proc, i0, e) spans

        offset_bits = system.config.cache.offset_bits
        wt = system.config.cache.write_policy == "writethrough"
        self.tabs = []
        for p in self.procs:
            *_cols, tab = _interp_tables(
                system.traceset[p.proc], offset_bits, wt, True
            )
            self.tabs.append(tab)
            p._kernel = self
            p._kern_end = tab.win_end

    # -- detection -----------------------------------------------------

    def _proc_quiet(self, q) -> bool:
        """Nothing of ``q``'s can act before its own pending resume:
        done, or running with no program access, write-back or drain in
        flight.  (``_WAIT_*`` states have lock/miss/buffer machinery
        pending; a buffered access can complete and snoop at any time.)
        """
        st = q.state
        if st == _DONE:
            return True
        return (
            st == _RUNNING
            and not q.outstanding
            and not q.outstanding_wb
            and not q._draining
        )

    def _quiet(self) -> bool:
        """Machine-wide quiet: with these conditions the only pending
        engine events are interpreter resumes (plus finished-processor
        no-ops).  Every other event source is excluded:

        * bus transaction phases require ``bus.busy``;
        * memory arrivals/returns are counted by ``memory.pending()``;
        * buffered operations live in the cache--bus buffers (and their
          space-waiter callbacks imply a ``_WAIT_BUFFER`` processor);
        * issue trampolines (bus fast path) drain ``_issue_q``; the
          reference per-issue closures are pending only while the
          issuing processor counts the op in ``outstanding`` /
          ``outstanding_wb``;
        * lock-manager timers (T&S backoff, release write-done, barrier
          last-arrival) all have their processor in ``_WAIT_LOCK``;
        * a scheduled ``_begin_sync`` is flagged by ``_sync_pending``
          and handled by the planner (that processor contributes its
          resume time to the horizon and is never collapsed).
        """
        system = self.system
        if system.bus.busy or system.memory.pending():
            return False
        iq = getattr(system, "_issue_q", None)
        if iq is not None:
            for pending in iq:
                if pending:
                    return False
        for buf in self.buffers:
            if buf.entries or buf._space_waiters:
                return False
        pq = self._proc_quiet
        for q in self.procs:
            if not pq(q):
                return False
        return True

    # -- per-processor run analysis ------------------------------------

    @staticmethod
    def _expand(tab, a: int, b: int):
        """Flattened line touches of records ``[a, b)``: the touch list
        ``tl``, its write flags ``tw``, and the record index (relative to
        ``a``) of each touch (``None`` when every record is single-line,
        i.e. touch index == record index).  Each record touches the
        contiguous lines ``[lo, hi]`` in ascending order -- literally the
        reference interpreter's chunk order."""
        lo = tab.a_lo[a:b]
        hi = tab.a_hi[a:b]
        wr = tab.a_wr[a:b]
        if bool((hi > lo).any()):
            counts = hi - lo + 1
            rec = np.repeat(np.arange(b - a), counts)
            starts = np.cumsum(counts) - counts
            tl = lo[rec] + (np.arange(len(rec)) - starts[rec])
            return tl, wr[rec], rec
        return lo, wr, None

    @staticmethod
    def _states_of(cache, tl: np.ndarray) -> np.ndarray:
        """MESI state of every touched line (0 == INVALID when absent),
        as an int64 array aligned with ``tl``.  When the touched lines
        sit in a narrow window -- the overwhelmingly common case, private
        runs walk compact working sets -- a dense scatter of the resident
        dict beats any sort; otherwise fall back to a unique+probe."""
        lo_min = int(tl.min())
        width = int(tl.max()) - lo_min + 1
        if width <= 4 * len(tl) + 4096:
            dense = np.zeros(width, dtype=np.int64)
            for line, stv in cache.state.items():
                off = line - lo_min
                if 0 <= off < width:
                    dense[off] = stv
            return dense[tl - lo_min]
        u, inv = np.unique(tl, return_inverse=True)
        sget = cache.state.get
        st = np.fromiter(
            (sget(int(line), 0) for line in u), dtype=np.int64, count=len(u)
        )
        return st[inv]

    def _probe(self, q, tab, a: int, b: int) -> int:
        """First dynamically-invalid record in ``[a, b)`` under ``q``'s
        current cache state, or -1 if every record is a silent hit."""
        tl, tw, rec = self._expand(tab, a, b)
        # reads/ifetches need any valid state (>= SHARED == 1; absent
        # probes 0 == INVALID), writes need >= EXCLUSIVE: the silent hits
        ok = self._states_of(q.cache, tl) >= np.where(tw, EXCLUSIVE, 1)
        if bool(ok.all()):
            return -1
        bad = int(np.argmax(~ok))
        return a + (bad if rec is None else int(rec[bad]))

    def _analyze(self, q, tab, i0: int, j_s: int) -> int:
        """First dynamically-invalid record in ``[i0, j_s)``, or ``j_s``
        itself if the whole static run is silently valid.  Validation is
        position-independent inside a quiet segment (see the module
        docstring), so vectorized probes decide whole chunks at once;
        doubling chunks keep a failing attempt (cold caches, backoff
        phases) from ever paying for the full analysis cap."""
        a = i0
        chunk = 4096
        while a < j_s:
            b = min(a + chunk, j_s)
            bad = self._probe(q, tab, a, b)
            if bad >= 0:
                return bad
            a = b
            chunk <<= 1
        return j_s

    def _span_end(self, i0: int, m_star: int) -> int:
        """Retired span end for ``m_star`` collapsed bounces (seam for
        the mutation self-test)."""
        return i0 + m_star * self.batch

    def _horizon0(self):
        """Initial collapse horizon.  The base kernel starts unbounded
        (the plan loop lowers it per processor); the spin-phase kernel
        (repro.machine.spinphase) starts it at the earliest pending
        lock-manager timer, so a collapse can never fast-forward past a
        waiter's wakeup."""
        return _INF

    def _audit_collapse(self, aud, spans, now: int) -> None:
        """Report a collapse to the attached auditor (overridable: the
        spin-phase kernel also reports its certified waiters)."""
        aud.on_kernel_collapse(self.system, spans, now)

    # -- the collapse --------------------------------------------------

    def attempt(self, p) -> bool:
        """Called from ``p``'s ``_run`` entry.  Detect a machine-quiet
        segment and collapse every whole silent bounce that fires
        strictly before the horizon, for every running processor at
        once.  Returns True iff ``p`` itself was collapsed (its resume
        is then already scheduled and ``_run`` must return)."""
        self.attempts += 1
        if not self._quiet():
            self.rejected += 1
            p._kernel_gate = p.idx + self.backoff
            return False

        engine = self.engine
        now = engine.now
        batch = self.batch
        t_safe = self._horizon0()
        plans = []
        for q in self.procs:
            if q.state != _RUNNING:
                # after a true quiet scan this only skips DONE procs; a
                # blocked proc here means the scan was bypassed/corrupted,
                # and the collapse must still reach the audit hook so the
                # kernel auditor can flag it (mutation self-test)
                continue
            nq = q._n
            i0 = q.idx
            if q.pos != 0 or q._sync_pending:
                # its pending event resumes mid-record or into a
                # synchronization point: nothing to collapse, and it may
                # act as soon as that event fires
                if q.time < t_safe:
                    t_safe = q.time
                continue
            if i0 >= nq:
                continue  # only the silent finishing bounce remains
            tab = self.tabs[q.proc]
            j_s = tab.win_end[i0]
            capped = False
            if j_s - i0 > self.max_span:
                j_s = i0 + self.max_span
                capped = True
            if t_safe is not _INF and j_s > i0:
                # Bounces firing at or after the horizon can never
                # retire this attempt (the entries clip below is
                # strictly-before), so truncate the *analysis* window to
                # the horizon too, in whole bounces.  Under a finite
                # initial horizon -- spin-phase collapses bounded by a
                # waiter's backoff timer -- this keeps the per-attempt
                # analysis cost proportional to what actually retires
                # instead of the full static run.  Retirement is
                # unchanged: the clip keeps exactly the bounces firing
                # strictly before the final t_safe (<= this one).
                ac = tab.a_cycles
                m_h = int(
                    np.searchsorted(
                        ac[i0 : j_s + 1 : batch],
                        t_safe - q.time + int(ac[i0]),
                    )
                )
                if i0 + m_h * batch < j_s:
                    j_s = i0 + m_h * batch
                    capped = True
            if j_s <= i0:
                # next record is not even statically eligible (a sync
                # record, or a write under write-through): it blocks in
                # the very bounce that is pending
                if q.time < t_safe:
                    t_safe = q.time
                continue
            j_dyn = self._analyze(q, tab, i0, j_s)
            m_cap = (j_dyn - i0) // batch
            if j_dyn >= nq and not capped:
                d = _INF  # runs silently to trace end: never observable
            else:
                # the bounce containing the first non-silent record (or,
                # if capped, the first unanalyzed bounce -- conservative)
                cc = tab.c_cycles
                d = q.time + cc[i0 + m_cap * batch] - cc[i0]
            if d < t_safe:
                t_safe = d
            if m_cap > 0:
                plans.append((q, i0, m_cap, j_dyn))

        if t_safe <= now:
            # p itself cannot complete a single whole bounce before some
            # processor may act (this always includes the cold-cache and
            # short-run cases: p's own j_dyn limits the horizon)
            self.rejected += 1
            p._kernel_gate = p.idx + self.backoff
            return False

        # horizon-clip each plan to the bounces firing strictly before
        # t_safe, and fix the retired span + exact resume time
        entries = []
        for q, i0, m_cap, j_dyn in plans:
            tab = self.tabs[q.proc]
            if t_safe is _INF:
                m_star = m_cap
            else:
                ac = tab.a_cycles
                u = ac[i0 : i0 + m_cap * batch + 1 : batch]
                m_star = int(
                    np.searchsorted(u[:m_cap], t_safe - q.time + int(ac[i0]))
                )
            if m_star <= 0:
                continue
            e = self._span_end(i0, m_star)
            cc = tab.c_cycles
            t_res = q.time + cc[e] - cc[i0]
            entries.append((q, i0, m_star, e, t_res, j_dyn))
        if not entries:  # pragma: no cover - t_safe > now implies p collapses
            self.rejected += 1
            p._kernel_gate = p.idx + self.backoff
            return False

        aud = self.system.audit
        if aud is not None:
            self._audit_collapse(
                aud,
                [(q.proc, i0, e, j_dyn) for q, i0, _m, e, _t, j_dyn in entries],
                now,
            )

        # reference bucket insertion order of the emitted resumes (must
        # be computed before retirement mutates the local clocks)
        if len(entries) > 1 and len({ent[4] for ent in entries}) < len(entries):
            order = self._merge_order(p, entries)
        else:
            # all resume times distinct (or a single processor): bucket
            # order among the emits cannot matter
            order = entries

        for q, i0, m_star, e, _t_res, _j_dyn in entries:
            self._retire(q, i0, e)
            self.collapsed_procs += 1
            self.records += e - i0
            self.bounces += m_star
            if self._log is not None:
                self._log.append((q.proc, i0, e))
        self.segments += 1

        at = engine.at
        for q, _i0, _m_star, _e, t_res, _j_dyn in order:
            at(t_res, q._run_cb)
            if q is not p:
                # q's old pending resume is now stale: consume it as a
                # no-op (a counter -- overlapping segments can strand
                # more than one)
                q._kernel_skip += 1
        return True

    def _merge_order(self, p, entries):
        """Exact reference insertion order of the emitted resumes.

        The reference engine would fire every collapsed bounce as a real
        event; each bounce fires at its precomputed time and appends the
        next one to its bucket.  When two emitted resumes land in the
        same bucket, their append order is the firing order of their
        *parent* bounces -- so replay the whole cascade in miniature: a
        heap of (time, seq) virtual bounces, seeded with each
        processor's currently-pending resume at its true position in its
        engine bucket (``p``'s is the event firing right now, ordered
        before everything still pending), children sequenced after all
        seeds.  Popping a processor's last collapsed bounce emits it."""
        heap = []
        for idx, ent in enumerate(entries):
            q = ent[0]
            t0 = q.time
            if q is p:
                seq = -1  # firing now: precedes everything still queued
            else:
                # the pending resume's position in its bucket; a stale
                # skip of an earlier segment can precede it, so take the
                # last identity match (the real resume was inserted last)
                seq = -2
                cb = q._run_cb
                for j, fn in enumerate(self.engine.events_at(t0)):
                    if fn is cb:
                        seq = j
            heap.append((t0, seq, idx, 0))
        heapq.heapify(heap)
        batch = self.batch
        seq_next = _SEQ_BASE
        order = []
        while heap:
            t, _s, idx, m = heapq.heappop(heap)
            ent = entries[idx]
            if m + 1 == ent[2]:  # m_star: the child is the live bounce
                order.append(ent)
            else:
                q, i0 = ent[0], ent[1]
                cc = self.tabs[q.proc].c_cycles
                t_next = q.time + cc[i0 + (m + 1) * batch] - cc[i0]
                seq_next += 1
                heapq.heappush(heap, (t_next, seq_next, idx, m + 1))
        return order

    # -- columnar retirement -------------------------------------------

    def _retire(self, q, i0: int, e: int) -> None:
        """Apply records ``[i0, e)`` to ``q`` exactly as ``e - i0``
        silent per-record retirements would: counters by prefix sums,
        the clock by ideal cycles, LRU in last-touch order, silent E->M
        on written lines."""
        tab = self.tabs[q.proc]
        ctr = q.cache.counters
        met = q.metrics
        cr = tab.c_read
        d = cr[e] - cr[i0]
        if d:
            ctr.read_hits += d
        cw = tab.c_write
        d = cw[e] - cw[i0]
        if d:
            ctr.write_hits += d
        ci = tab.c_ifetch
        d = ci[e] - ci[i0]
        if d:
            ctr.ifetch_hits += d
        cc = tab.c_cycles
        cyc = cc[e] - cc[i0]
        if cyc:
            q.time += cyc
            met.work_cycles += cyc
        cn = tab.c_refs
        met.refs_processed += cn[e] - cn[i0]
        q.idx = e

        tl, tw, _rec = self._expand(tab, i0, e)
        k = len(tl)
        lo_min = int(tl.min())
        width = int(tl.max()) - lo_min + 1
        if width <= 4 * k + 4096:
            # dense scatter over the touched line window: integer-array
            # assignment applies in index order, so duplicate lines keep
            # the value of their *last* touch (documented numpy advanced
            # -indexing semantics -- and pinned by the property suite)
            idx = tl - lo_min
            last_dense = np.full(width, -1, dtype=np.int64)
            last_dense[idx] = np.arange(k)
            present = last_dense >= 0
            u = lo_min + np.nonzero(present)[0]
            last = last_dense[present]
            if bool(tw.any()):
                w_dense = np.zeros(width, dtype=bool)
                w_dense[idx[tw]] = True
                written = w_dense[present]
            else:
                written = None
        else:
            # wide line range: one stable sort groups the touches by
            # line with positions ascending inside each group; the group
            # ends give each distinct line, its last touch position, and
            # (via a cumsum difference) whether any touch was a write
            order = np.argsort(tl, kind="stable")
            tls = tl[order]
            end = np.empty(k, dtype=bool)
            end[:-1] = tls[1:] != tls[:-1]
            end[-1] = True
            u = tls[end]
            last = order[end]
            if bool(tw.any()):
                w_end = np.cumsum(tw[order])[end]
                written = np.diff(w_end, prepend=0) > 0
            else:
                written = None
        cstate = q.cache.state
        touch = q.cache._touch
        # Touching each distinct line once, in ascending last-touch
        # order, yields the reference's final LRU state: the reference
        # applies touches chronologically, and within a set the final
        # stack is exactly the lines ordered by last touch (untouched
        # residents below, prior order preserved) -- the same argument
        # the window fast path's MRU refresh rests on.
        for j in np.argsort(last):
            line = int(u[j])
            if written is not None and written[j]:
                # validated >= EXCLUSIVE: the silent E->M write hit,
                # exactly as the window fast path applies it
                cstate[line] = MODIFIED
            touch(line)
