"""Main-memory module with input and output buffering (§2.2).

Because the bus is split-transaction, "a request may arrive at the
memory while a previous request is being processed" -- hence a two-entry
input buffer -- and "the bus may be busy when a memory access completes"
-- hence a two-entry output buffer.  The module services one request at a
time (three cycles each); read results wait in the output buffer for the
memory's own bus port to win arbitration for the data-return phase.
"""

from __future__ import annotations

from collections import deque

from .buffers import DATA_RETURN, UPDATE, WRITEBACK, WRITETHROUGH, BusOp

#: request kinds that produce no data return (pure writes into memory)
_WRITE_KINDS = frozenset({WRITEBACK, WRITETHROUGH, UPDATE})
from .config import MemoryConfig
from .engine import Engine

__all__ = ["Memory", "MemoryPort"]


class Memory:
    """The memory module: reserved-slot input queue, serial service,
    bounded output queue."""

    def __init__(
        self, engine: Engine, config: MemoryConfig, fast_path: bool = True
    ) -> None:
        self.engine = engine
        self.config = config
        self._in: deque[BusOp] = deque()
        self._reserved = 0  # slots promised at bus-grant time but not yet arrived
        self._out: deque[BusOp] = deque()
        self._busy = False
        self.port = MemoryPort(self)
        self._bus_kick = None  # set by the system: callable(time)
        # fast path (MachineConfig.bus_fast_path): the module services one
        # request at a time, so the request in service rides a single slot
        # and its completion is one preallocated bound method instead of a
        # fresh closure per service
        self._fast = fast_path
        self._servicing: BusOp | None = None
        self._done_cb = self._slot_done
        # statistics
        self.reads_serviced = 0
        self.writes_serviced = 0
        self.busy_cycles = 0

    # -- input side -----------------------------------------------------------
    def can_accept(self) -> bool:
        """Is there input-buffer space for one more request?  Checked by
        the arbiter before granting a memory-bound operation."""
        return len(self._in) + self._reserved < self.config.input_buffer

    def reserve(self) -> None:
        """Claim an input slot at bus-grant time (the request is still in
        flight on the bus)."""
        if not self.can_accept():
            raise RuntimeError("memory input buffer over-committed")
        self._reserved += 1

    def arrive(self, op: BusOp, time: int) -> None:
        """The request's bus phase finished; it lands in the input buffer."""
        if self._reserved <= 0:
            raise RuntimeError("arrival without reservation")
        self._reserved -= 1
        self._in.append(op)
        self._maybe_start(time)

    # -- service --------------------------------------------------------------
    def _maybe_start(self, time: int) -> None:
        if self._busy or not self._in:
            return
        # A read needs an output slot; don't start one we cannot finish.
        head = self._in[0]
        if head.kind not in _WRITE_KINDS and len(self._out) >= self.config.output_buffer:
            # Writes produce no reply and may always start.
            return
        op = self._in.popleft()
        self._busy = True
        self.busy_cycles += self.config.access_cycles
        if self._fast:
            self._servicing = op
            self.engine.at(time + self.config.access_cycles, self._done_cb)
        else:
            self.engine.at(
                time + self.config.access_cycles, lambda t, op=op: self._done(op, t)
            )
        # Input-queue space just freed: a memory-bound bus op may now be
        # issuable, so re-arbitrate.
        if self._bus_kick is not None:
            self._bus_kick(time)

    def _slot_done(self, time: int) -> None:
        # read the slot before _maybe_start can refill it
        op = self._servicing
        self._servicing = None
        self._done(op, time)

    def _done(self, op: BusOp, time: int) -> None:
        self._busy = False
        if op.kind in _WRITE_KINDS:
            self.writes_serviced += 1
        else:
            self.reads_serviced += 1
            ret = BusOp(DATA_RETURN, op.line, op.proc)
            ret.orig = op
            self._out.append(ret)
            cb = self.port.ready_cb
            if cb is not None:
                cb()
        self._maybe_start(time)
        if self._bus_kick is not None:
            self._bus_kick(time)

    # -- output side ---------------------------------------------------------
    def release_output(self, time: int) -> None:
        """A data return was granted the bus; its output slot frees and a
        stalled service may begin."""
        self._maybe_start(time)

    # -- introspection -------------------------------------------------------
    def pending(self) -> int:
        return len(self._in) + self._reserved + len(self._out) + (1 if self._busy else 0)


class MemoryPort:
    """The memory module's bus port: data returns waiting in the output
    buffer."""

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        # the arbiter skips empty ports by testing this queue directly
        self.entries = memory._out
        self.ready_cb = None  # assigned by Bus.add_port

    def peek(self) -> BusOp | None:
        out = self.memory._out
        return out[0] if out else None

    def pop(self) -> BusOp:
        return self.memory._out.popleft()
