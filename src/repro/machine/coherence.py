"""Coherence protocol policies.

The paper's machine uses the Illinois protocol [Archibald & Baer,
citation 4 of the paper -- their TOCS'86 study compares snooping
protocols by simulation, which is precisely the style of ablation this
module enables].  The protocol object owns two decisions the rest of the
machine delegates:

* what a **write hit on a SHARED line** does on the bus -- Illinois (and
  every write-invalidate protocol) broadcasts an *invalidation* and the
  writer takes the line MODIFIED; a write-*update* protocol (Firefly/
  Dragon family, simplified here) broadcasts the written words, every
  sharer updates in place, and the line *stays* SHARED;
* what state a read miss fills in -- EXCLUSIVE when memory supplies and
  nobody shares, SHARED otherwise (both protocols agree here).

The trade-off the update protocol exists to probe: migratory data
(Pdsa's placement cells, lock-protected scheduler state) keeps lines
shared forever under update, so *every* subsequent write pays a bus
transaction -- while read-shared data never suffers invalidation misses.
``benchmarks/test_extension_coherence.py`` measures both effects on the
paper's suite.
"""

from __future__ import annotations

__all__ = [
    "CoherenceProtocol",
    "IllinoisProtocol",
    "UpdateProtocol",
    "ILLINOIS",
    "UPDATE",
    "get_protocol",
]


class CoherenceProtocol:
    """Base policy; instances are stateless and shareable."""

    #: registry name
    name = "abstract"
    #: True if a write hit on SHARED broadcasts an update (sharers keep
    #: their copies); False if it broadcasts an invalidation
    write_update = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class IllinoisProtocol(CoherenceProtocol):
    """Write-invalidate MESI with cache-to-cache supply (the paper's)."""

    name = "illinois"
    write_update = False


class UpdateProtocol(CoherenceProtocol):
    """Simplified Firefly-style write-update.

    Writes to SHARED lines broadcast the data: one bus transaction
    (address + one data cycle) that patches every sharer's copy and
    memory; the line remains SHARED in all caches, so the writer keeps
    paying the bus on every write until the sharers evict.  Writes to
    EXCLUSIVE/MODIFIED lines stay silent, and read misses behave exactly
    as under Illinois (cache-to-cache supply, E from memory).
    """

    name = "update"
    write_update = True
    # Note: write *misses* still perform a read-for-ownership (the line
    # is fetched exclusively and other copies invalidate), as in several
    # hybrid update designs; the update broadcast applies to write hits
    # on SHARED lines -- the case that matters for the invalidation-miss
    # vs broadcast-traffic trade-off.


ILLINOIS = IllinoisProtocol()
UPDATE = UpdateProtocol()

_PROTOCOLS = {"illinois": ILLINOIS, "update": UPDATE, "firefly": UPDATE}


def get_protocol(name: str) -> CoherenceProtocol:
    """Look up a coherence protocol by name."""
    try:
        return _PROTOCOLS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown coherence protocol {name!r}; expected one of "
            f"{sorted(set(_PROTOCOLS))}"
        ) from None
