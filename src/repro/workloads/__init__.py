"""Benchmark program models: executable skeletons of the paper's six
traced applications plus the Presto runtime model they run on."""

from .base import ProcContext, SharedLock, Workload, run_coordinated
from .fullconn import FullConn
from .grav import Grav
from .pdsa import Pdsa
from .presto import PrestoRuntime
from .pverify import Pverify
from .qsort import Qsort
from .registry import (
    BENCHMARK_ORDER,
    LOCKING_BENCHMARKS,
    WORKLOADS,
    generate_suite,
    generate_trace,
    get_workload,
)
from .synthetic import SyntheticContention
from .topopt import Topopt

__all__ = [
    "BENCHMARK_ORDER",
    "FullConn",
    "Grav",
    "LOCKING_BENCHMARKS",
    "Pdsa",
    "PrestoRuntime",
    "ProcContext",
    "Pverify",
    "Qsort",
    "SharedLock",
    "SyntheticContention",
    "Topopt",
    "WORKLOADS",
    "Workload",
    "generate_suite",
    "generate_trace",
    "get_workload",
    "run_coordinated",
]
