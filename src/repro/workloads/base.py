"""Workload modeling framework.

The paper's traces came from six real programs on a Sequent Symmetry;
we cannot rerun those binaries, so each benchmark is modeled as an
*executable program skeleton*: real control flow (tree builds, annealing
sweeps, partition loops, work queues) driven per logical processor, with
every basic block, data reference and lock operation emitted into an
MPTrace-like trace.  The skeletons are calibrated so the per-processor
*ideal statistics* (Table 1/2: reference counts and mix, lock pair
counts, nesting, hold times) land in the paper's regime at the default
scale.

Two execution styles are supported:

* **partitioned** workloads (no cross-worker coordination at generation
  time) simply run one worker function per processor to completion;
* **coordinated** workloads (work queues, pipelined phases) run workers
  as Python generators under a deterministic round-robin driver, so
  shared generation-time state (e.g. the quicksort range queue) is
  accessed in a reproducible interleaving.  Yield points model "where a
  real scheduler could preempt"; the emitted traces stay per-processor.

Scaling: every workload accepts a ``scale`` factor multiplying its
iteration counts.  ``scale=1.0`` is the library's default reproduction
scale, roughly 1/20th of the paper's trace lengths (the paper itself
reports that longer traces do not change the results; our scale ablation
checks the same).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..trace.builder import TraceBuilder
from ..trace.layout import AddressLayout
from ..trace.records import BARRIER, IBLOCK, LOCK, READ, UNLOCK, WRITE, TraceSet

__all__ = ["SharedLock", "ProcContext", "Workload", "run_coordinated"]


class SharedLock:
    """A named lock: id + dedicated cache line, shared by all processors.

    The id is derived from the lock word's address within the layout, so
    regenerating the same workload yields byte-identical traces.
    """

    __slots__ = ("lock_id", "addr", "name")

    def __init__(self, layout: AddressLayout, name: str = "") -> None:
        from ..trace.layout import LINE_SIZE, LOCK_BASE

        self.addr = layout.alloc_lock()
        self.lock_id = (self.addr - LOCK_BASE) // LINE_SIZE
        self.name = name or f"lock{self.lock_id}"
        layout.lock_names[self.lock_id] = self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedLock({self.name}, id={self.lock_id})"


class ProcContext:
    """Per-logical-processor emission context.

    ``step(site, n_instr, reads, writes)`` emits one basic block of
    ``n_instr`` instructions at the code address registered for ``site``
    (allocated on first use and shared across processors, so loop bodies
    hit in the instruction stream after warm-up), followed by its data
    references.  ``reads``/``writes`` are addresses or ``(addr, reps)``
    pairs using the trace's repetition encoding for sequential scans.

    ``cpi`` converts instruction counts into ideal cycles; the default
    is tuned so cycles-per-reference lands near the paper's ~2.3--2.4.
    """

    __slots__ = ("proc", "b", "layout", "rng", "cpi", "bulk", "_sites", "_held")

    def __init__(
        self,
        proc: int,
        builder: TraceBuilder,
        layout: AddressLayout,
        rng: np.random.Generator,
        sites: dict,
        cpi: float = 3.4,
        bulk: bool = True,
    ) -> None:
        self.proc = proc
        self.b = builder
        self.layout = layout
        self.rng = rng
        self.cpi = cpi
        #: bulk=False replays every run record-by-record through the scalar
        #: builder API -- the reference path the differential tests compare
        #: bulk emission against
        self.bulk = bulk
        self._sites = sites  # shared across contexts: site name -> code addr
        self._held: list[SharedLock] = []

    # -- code sites -------------------------------------------------------------
    def _site_addr(self, site: str, n_instr: int) -> int:
        addr = self._sites.get(site)
        if addr is None:
            addr = self.layout.alloc_code(4 * n_instr + 16)
            self._sites[site] = addr
        return addr

    def site(self, site: str, n_instr: int) -> int:
        """Code address for ``site`` (allocated on first use), for
        workloads that precompute bulk IBLOCK columns."""
        return self._site_addr(site, n_instr)

    def cycles_for(self, n_instr: int) -> int:
        """Ideal cycles for an ``n_instr``-instruction block under this
        context's cpi (the same formula :meth:`step` applies)."""
        return max(1, int(n_instr * self.cpi))

    # -- emission -----------------------------------------------------------------
    def step(
        self,
        site: str,
        n_instr: int,
        reads: Iterable = (),
        writes: Iterable = (),
    ) -> None:
        cycles = max(1, int(n_instr * self.cpi))
        self.b.block(n_instr, cycles, self._site_addr(site, n_instr))
        b = self.b
        for r in reads:
            if isinstance(r, tuple):
                b.read(r[0], r[1])
            else:
                b.read(r)
        for w in writes:
            if isinstance(w, tuple):
                b.write(w[0], w[1])
            else:
                b.write(w)

    def compute(self, site: str, n_instr: int) -> None:
        """A pure-compute basic block."""
        self.step(site, n_instr)

    # -- bulk emission ------------------------------------------------------------
    def emit_rows(self, kinds, addrs, args, cycles) -> None:
        """Emit a run of records given as equal-length Python sequences.

        In bulk mode the rows go straight into the builder's chunk
        buffer; otherwise they replay one-by-one through the scalar API.
        """
        if self.bulk:
            self.b.extend(kinds, addrs, args, cycles)
        else:
            self._replay(kinds, addrs, args, cycles)

    def emit_records(self, records: np.ndarray) -> None:
        """Emit a pre-built (possibly cached and reused) record chunk.

        The chunk is referenced, not copied -- callers must never mutate
        it after the first emit.
        """
        if self.bulk:
            self.b.append_records(records)
        else:
            self._replay(
                records["kind"].tolist(),
                records["addr"].tolist(),
                records["arg"].tolist(),
                records["cycles"].tolist(),
            )

    def emit_columns(self, kind, addr, arg, cycles) -> None:
        """Emit a run of records given as broadcastable columns
        (ndarrays or scalars)."""
        if self.bulk:
            self.b.append_columns(kind, addr, arg, cycles)
        else:
            cols = np.broadcast_arrays(kind, addr, arg, cycles)
            self._replay(*(np.atleast_1d(c).tolist() for c in cols))

    def _replay(self, kinds, addrs, args, cycles) -> None:
        b = self.b
        for k, a, g, c in zip(kinds, addrs, args, cycles):
            if k == IBLOCK:
                b.block(g, c, a)
            elif k == READ:
                b.read(a, g)
            elif k == WRITE:
                b.write(a, g)
            elif k == LOCK:
                b.lock(g, a)
            elif k == UNLOCK:
                b.unlock(g, a)
            elif k == BARRIER:
                b.barrier(g)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown record kind {k}")

    def lock(self, lk: SharedLock) -> None:
        self.b.lock(lk.lock_id, lk.addr)
        self._held.append(lk)

    def unlock(self, lk: SharedLock) -> None:
        self.b.unlock(lk.lock_id, lk.addr)
        self._held.remove(lk)

    def barrier(self, barrier_id: int) -> None:
        self.b.barrier(barrier_id)

    @property
    def holding(self) -> tuple[SharedLock, ...]:
        return tuple(self._held)


def run_coordinated(workers: Sequence[Iterator]) -> None:
    """Round-robin driver for coordinated workloads.

    Advances each worker generator one yield at a time until all are
    exhausted.  Deterministic given deterministic workers.
    """
    live = list(workers)
    while live:
        nxt = []
        for w in live:
            try:
                next(w)
            except StopIteration:
                continue
            nxt.append(w)
        live = nxt


class Workload(ABC):
    """Base class for the six benchmark models (and user workloads).

    Subclasses define ``name``, ``default_procs``, ``uses_presto`` and
    implement :meth:`build`, which drives the per-processor contexts.
    """

    name: str = "abstract"
    default_procs: int = 12
    uses_presto: bool = False
    #: cycles-per-instruction used for the contexts (per-workload tunable)
    cpi: float = 3.4

    def __init__(self, scale: float = 1.0, seed: int = 1991) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed

    # -- generation ---------------------------------------------------------------
    def generate(
        self,
        n_procs: int | None = None,
        bulk: bool = True,
        check: bool = False,
    ) -> TraceSet:
        """Run the model and produce the multi-processor trace.

        ``bulk=False`` forces record-by-record emission through the
        scalar builder API; the result is byte-identical to bulk mode
        (enforced by tests/test_tracegen_differential.py), just slower.
        ``check=True`` validates during emission (per record in scalar
        mode, per chunk in bulk mode) instead of deferring to the
        finish-time validator.
        """
        n = n_procs or self.default_procs
        layout = AddressLayout(n)
        rng = np.random.default_rng(self.seed)
        builders = [
            TraceBuilder(p, layout, program=self.name, check=check) for p in range(n)
        ]
        sites: dict = {}
        ctxs = [
            ProcContext(p, builders[p], layout, rng, sites, cpi=self.cpi, bulk=bulk)
            for p in range(n)
        ]
        self.build(ctxs, layout, rng)
        traces = [b.finish() for b in builders]
        return TraceSet(
            traces,
            layout,
            program=self.name,
            meta={
                "scale": self.scale,
                "seed": self.seed,
                "uses_presto": self.uses_presto,
            },
        )

    @abstractmethod
    def build(
        self,
        ctxs: list[ProcContext],
        layout: AddressLayout,
        rng: np.random.Generator,
    ) -> None:
        """Drive the contexts to emit every processor's trace."""

    # -- helpers -----------------------------------------------------------------
    def scaled(self, count: int, minimum: int = 1) -> int:
        """Scale an iteration count, with a floor."""
        return max(minimum, int(round(count * self.scale)))
