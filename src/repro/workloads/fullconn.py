"""FullConn: Synapse distributed simulation of a fully connected
processor network (Presto).

"FullConn is a run of a Synapse distributed simulation of a
fully-connected processor network" (§2.3), and notably it "was written
by someone familiar with the inner workings of Presto as part of his
Ph.D. dissertation" -- coarse threads, few dispatches, and locking
confined to per-node event queues.  The result (Tables 3/4): 95.5 %
utilization, stalls dominated by cache misses, only ~0.4 waiters at
transfer, and the longest average hold times of the Presto programs
(~334 ideal cycles: an event enqueue/dequeue is heavier than a
scheduler peek).

Model: each processor simulates one node of a fully connected network,
and the generation itself runs a *real* distributed discrete-event
simulation: every node keeps a timestamped event heap; processing pops
the earliest event, advances the node's virtual clock, computes against
node state (kept in its own slice of the shared heap -- hot in its
cache), and with some probability schedules a message to a peer at a
future virtual time -- which lands in the *target's* heap and, in the
trace, appends to the target's event queue under that queue's lock.
With P distinct queue locks and mostly-random targets, simultaneous
collisions are rare -- low contention despite real sharing.  A fraction
of sends report to a rotating coordinator (the simulation's GVT-style
bookkeeping), supplying the occasional collision behind the paper's 0.4
waiters.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..trace.layout import AddressLayout
from ..trace.records import IBLOCK, LOCK, READ, UNLOCK, WRITE
from .base import ProcContext, SharedLock, Workload, run_coordinated
from .presto import PrestoRuntime

__all__ = ["FullConn"]


class FullConn(Workload):
    name = "fullconn"
    default_procs = 12
    uses_presto = True
    cpi = 3.55

    #: per-processor counts at scale=1.0
    DISPATCHES = 7
    EVENTS = 420  # event-processing iterations
    SENDS = 19  # remote enqueues (per-node queue lock pairs)
    QUEUE_SLOTS = 32
    TOPO_CELLS = 8192  # shared network-topology table (256 KB: capacity misses)

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        n = len(ctxs)
        presto = PrestoRuntime(layout)
        node_locks = [SharedLock(layout, f"fullconn.node{i}") for i in range(n)]
        queues = [layout.alloc_shared(self.QUEUE_SLOTS * 64) for _ in range(n)]
        states = [layout.alloc_shared(2048) for _ in range(n)]
        topology = layout.alloc_shared(self.TOPO_CELLS * 32)

        events = self.scaled(self.EVENTS)
        sends = self.scaled(self.SENDS)
        dispatches = self.scaled(self.DISPATCHES)
        send_prob = sends / events

        # the distributed simulation's state: per-node timestamped heaps,
        # seeded so every node has work from virtual time zero
        tmpl_cache: dict[int, tuple] = {}
        heaps: list[list] = [[] for _ in range(n)]
        seq = {"n": 0}
        for node in range(n):
            for k in range(3):
                seq["n"] += 1
                heapq.heappush(heaps[node], (float(rng.random() * 4), seq["n"]))

        def node_worker(p: int, ctx: ProcContext):
            dispatch_every = max(1, events // max(1, dispatches))
            # Stagger the nodes: in the real run processors do not hit
            # the scheduler in lockstep.
            ctx.compute("fullconn.init", 20 + 37 * p)
            vtime = 0.0
            for e in range(events):
                if (e + 3 * p) % dispatch_every == 0:
                    presto.dispatch(ctx, work_instr=16)
                # pop the earliest event; if the heap ran dry, the node
                # idles forward and re-seeds itself (a self-event)
                if heaps[p]:
                    ts, _ = heapq.heappop(heaps[p])
                    vtime = max(vtime, ts)
                else:
                    vtime += 1.0
                self._process_event(
                    ctx, states[p], queues[p], topology, rng, e, tmpl_cache
                )
                if rng.random() < send_prob:
                    if rng.random() < 0.5 and n > 2:
                        # report to the rotating coordinator (GVT-style
                        # bookkeeping): these sends cluster on one queue
                        target = int(vtime / 8) % n
                        if target == p:
                            target = (target + 1) % n
                    else:
                        target = int(rng.integers(0, n - 1))
                        if target >= p:
                            target += 1
                    seq["n"] += 1
                    heapq.heappush(
                        heaps[target],
                        (vtime + float(rng.random() * 3 + 0.5), seq["n"]),
                    )
                    self._send_event(ctx, node_locks[target], queues[target], rng)
                yield

        run_coordinated([node_worker(p, ctx) for p, ctx in enumerate(ctxs)])

    def _process_event(
        self, ctx: ProcContext, state, queue, topology, rng, e: int, cache: dict
    ) -> None:
        """One event: pop from our own queue (usually cache-hot) and copy
        the payload out, consult the (large, read-shared) topology table,
        simulate against node state, advance the virtual clock.

        The 13-record pattern is fixed per node; the per-node template is
        copied and the six event-dependent addresses patched in, instead
        of re-deriving every record through four step() calls.
        """
        tmpl = cache.get(ctx.proc)
        if tmpl is None:
            kinds = [
                IBLOCK, READ, WRITE, WRITE,
                IBLOCK, READ,
                IBLOCK, READ, READ, WRITE,
                IBLOCK, READ, WRITE,
            ]
            addrs = [
                ctx.site("fullconn.pop", 22), 0, queue, 0,
                ctx.site("fullconn.route", 16), 0,
                ctx.site("fullconn.simulate", 64), 0, 0, 0,
                ctx.site("fullconn.advance", 18), state + 1536, state + 1536,
            ]
            args = [22, 8, 1, 4, 16, 8, 64, 12, 8, 6, 18, 4, 1]
            cycs = [
                ctx.cycles_for(22), 0, 0, 0,
                ctx.cycles_for(16), 0,
                ctx.cycles_for(64), 0, 0, 0,
                ctx.cycles_for(18), 0, 0,
            ]
            cache[ctx.proc] = tmpl = (kinds, addrs, args, cycs)
        kinds, addrs, args, cycs = tmpl
        cell = int(rng.integers(0, self.TOPO_CELLS - 2))
        st = state + (e % 16) * 64
        addr = addrs.copy()
        addr[1] = queue + (e % self.QUEUE_SLOTS) * 64
        addr[3] = state + 1024 + (e % 8) * 64
        addr[5] = topology + cell * 32
        addr[7] = st
        addr[8] = state + (e % 4) * 256
        addr[9] = st
        ctx.emit_rows(kinds, addr, args, cycs)

    def _send_event(self, ctx: ProcContext, lock, queue, rng) -> None:
        """Append a message to a peer's event queue under its lock."""
        slot = queue + int(rng.integers(0, self.QUEUE_SLOTS)) * 64
        ctx.emit_rows(
            [LOCK, IBLOCK, READ, READ, WRITE, WRITE, UNLOCK],
            [
                lock.addr,
                ctx.site("fullconn.enqueue", 74),
                queue,
                slot,
                slot,
                queue,
                lock.addr,
            ],
            [lock.lock_id, 74, 1, 2, 8, 1, lock.lock_id],
            [0, ctx.cycles_for(74), 0, 0, 0, 0, 0],
        )
