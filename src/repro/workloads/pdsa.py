"""Pdsa: topological optimization by simulated annealing (Presto).

"Pdsa does topological optimization using simulated annealing." (§2.3)
Like Grav it was "written as part of a ten week seminar" and dispatches
very fine-grained Presto threads, which makes the scheduler lock the
contention hot spot (Table 4: 6.18 waiters at transfer on 12 processors
-- the worst of the suite).

Model: processors repeatedly pull annealing work units (small batches of
proposed moves) from the Presto run queue.  The annealing itself is
*real*: cells live on a 2-D placement grid with a random netlist; a move
swaps two cells, its cost delta is the actual Manhattan-wirelength
change of their nets, and acceptance follows the Metropolis rule under a
geometric temperature schedule.  Accepted swaps write the shared
placement (the trace's shared-write traffic tracks the acceptance rate,
which falls as the system cools -- exactly the phase structure of a real
annealer).  Commits to the global cost/temperature record take the short
*anneal lock* (the few non-runtime lock pairs of Table 2).
"""

from __future__ import annotations

import math

import numpy as np

from ..trace.layout import AddressLayout
from ..trace.records import IBLOCK, LOCK, READ, UNLOCK, WRITE
from .base import ProcContext, SharedLock, Workload
from .presto import PrestoRuntime

__all__ = ["Pdsa"]


class _Annealing:
    """Shared generation-time annealing state: grid placement, netlist,
    Manhattan wirelength deltas, Metropolis acceptance."""

    def __init__(self, rng: np.random.Generator, n_cells: int, fanout: int = 3) -> None:
        self.n_cells = n_cells
        side = int(math.ceil(math.sqrt(n_cells)))
        self.side = side
        # cell -> (x, y) slot; one cell per slot.  The live placement is
        # kept as plain Python lists: each move touches three-element
        # nets, where list indexing beats numpy dispatch by an order of
        # magnitude (this is the trace generator's hottest model code).
        slots = rng.permutation(side * side)[:n_cells]
        self._xl: list[int] = (slots % side).tolist()
        self._yl: list[int] = (slots // side).tolist()
        # netlist: each cell connects to `fanout` random partners
        self.nets = rng.integers(0, n_cells, size=(n_cells, fanout)).astype(np.int32)
        self._netl: list[list[int]] = self.nets.tolist()
        self.temperature = float(side)  # hot start: accept nearly anything
        self.accepted = 0
        self.proposed = 0

    @property
    def x(self) -> np.ndarray:
        """Current cell x coordinates (array view for tests/analysis)."""
        return np.asarray(self._xl, dtype=np.int32)

    @property
    def y(self) -> np.ndarray:
        """Current cell y coordinates (array view for tests/analysis)."""
        return np.asarray(self._yl, dtype=np.int32)

    def _cell_cost(self, c: int) -> int:
        xl, yl = self._xl, self._yl
        xc, yc = xl[c], yl[c]
        total = 0
        for n in self._netl[c]:
            total += abs(xl[n] - xc) + abs(yl[n] - yc)
        return total

    def propose_swap(self, a: int, b: int, rng: np.random.Generator) -> bool:
        """Real Metropolis step: swap positions of cells a and b if the
        wirelength delta passes; returns acceptance."""
        self.proposed += 1
        xl, yl = self._xl, self._yl
        before = self._cell_cost(a) + self._cell_cost(b)
        xl[a], xl[b] = xl[b], xl[a]
        yl[a], yl[b] = yl[b], yl[a]
        delta = (self._cell_cost(a) + self._cell_cost(b)) - before
        if delta <= 0 or rng.random() < math.exp(-delta / max(1e-9, self.temperature)):
            self.accepted += 1
            return True
        # reject: swap back
        xl[a], xl[b] = xl[b], xl[a]
        yl[a], yl[b] = yl[b], yl[a]
        return False

    def cool(self, factor: float = 0.97) -> None:
        self.temperature *= factor


class Pdsa(Workload):
    name = "pdsa"
    default_procs = 12
    uses_presto = True
    cpi = 3.6

    #: per-processor counts at scale=1.0
    CHUNKS = 72  # Presto threads (dispatches)
    MOVES_PER_CHUNK = 6
    COMMITS = 9  # anneal-lock critical sections
    CELLS = 1024
    DISPATCH_WORK = 26  # instructions per scheduler bookkeeping block

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        presto = PrestoRuntime(layout)
        anneal_lock = SharedLock(layout, "pdsa.anneal")
        placement = layout.alloc_shared(self.CELLS * 32)
        netlist = layout.alloc_shared(self.CELLS * 48)
        cost_rec = layout.alloc_shared(64)
        anneal = _Annealing(rng, self.CELLS)
        self._anneal = anneal  # exposed for tests

        chunks = self.scaled(self.CHUNKS)
        commits = self.scaled(self.COMMITS)
        for ctx in ctxs:
            commit_at = set(
                int(i) for i in rng.choice(chunks, size=min(commits, chunks), replace=False)
            )
            for c in range(chunks):
                presto.dispatch(ctx, work_instr=self.DISPATCH_WORK)
                self._move_batch(ctx, placement, netlist, anneal, rng)
                if c in commit_at:
                    # commits double as cooling points of the schedule
                    anneal.cool()
                    self._commit(ctx, anneal_lock, cost_rec, placement, rng)

    def _move_batch(self, ctx: ProcContext, placement, netlist, anneal, rng) -> None:
        cells = rng.integers(0, self.CELLS, size=(self.MOVES_PER_CHUNK, 2)).tolist()
        e_site = ctx.site("pdsa.eval", 34)
        e_cyc = ctx.cycles_for(34)
        m_site = ctx.site("pdsa.metropolis", 18)
        m_cyc = ctx.cycles_for(18)
        s_site = ctx.site("pdsa.swap", 12)
        s_cyc = ctx.cycles_for(12)
        kinds: list[int] = []
        addrs: list[int] = []
        args: list[int] = []
        cycs: list[int] = []
        for a, b in cells:
            if a == b:
                b = (a + 1) % self.CELLS
            pa, pb = placement + a * 32, placement + b * 32
            # read the two cells' positions and their nets, then the cost
            # delta arithmetic + Metropolis test (for real)
            kinds += [IBLOCK, READ, READ, READ, READ, IBLOCK]
            addrs += [e_site, pa, pb, netlist + a * 48, netlist + b * 48, m_site]
            args += [34, 4, 4, 6, 6, 18]
            cycs += [e_cyc, 0, 0, 0, 0, m_cyc]
            if anneal.propose_swap(a, b, rng):
                kinds += [IBLOCK, WRITE, WRITE]
                addrs += [s_site, pa, pb]
                args += [12, 3, 3]
                cycs += [s_cyc, 0, 0]
        ctx.emit_rows(kinds, addrs, args, cycs)

    def _commit(self, ctx: ProcContext, anneal_lock, cost_rec, placement, rng) -> None:
        """Fold the batch's accepted delta into the global annealing
        record (cost, acceptance counts, temperature schedule)."""
        ctx.emit_rows(
            [LOCK, IBLOCK, READ, WRITE, UNLOCK],
            [
                anneal_lock.addr,
                ctx.site("pdsa.commit", 40),
                cost_rec,
                cost_rec,
                anneal_lock.addr,
            ],
            [anneal_lock.lock_id, 40, 4, 4, anneal_lock.lock_id],
            [0, ctx.cycles_for(40), 0, 0, 0],
        )
