"""Pdsa: topological optimization by simulated annealing (Presto).

"Pdsa does topological optimization using simulated annealing." (§2.3)
Like Grav it was "written as part of a ten week seminar" and dispatches
very fine-grained Presto threads, which makes the scheduler lock the
contention hot spot (Table 4: 6.18 waiters at transfer on 12 processors
-- the worst of the suite).

Model: processors repeatedly pull annealing work units (small batches of
proposed moves) from the Presto run queue.  The annealing itself is
*real*: cells live on a 2-D placement grid with a random netlist; a move
swaps two cells, its cost delta is the actual Manhattan-wirelength
change of their nets, and acceptance follows the Metropolis rule under a
geometric temperature schedule.  Accepted swaps write the shared
placement (the trace's shared-write traffic tracks the acceptance rate,
which falls as the system cools -- exactly the phase structure of a real
annealer).  Commits to the global cost/temperature record take the short
*anneal lock* (the few non-runtime lock pairs of Table 2).
"""

from __future__ import annotations

import math

import numpy as np

from ..trace.layout import AddressLayout
from .base import ProcContext, SharedLock, Workload
from .presto import PrestoRuntime

__all__ = ["Pdsa"]


class _Annealing:
    """Shared generation-time annealing state: grid placement, netlist,
    Manhattan wirelength deltas, Metropolis acceptance."""

    def __init__(self, rng: np.random.Generator, n_cells: int, fanout: int = 3) -> None:
        self.n_cells = n_cells
        side = int(math.ceil(math.sqrt(n_cells)))
        self.side = side
        # cell -> (x, y) slot; one cell per slot
        slots = rng.permutation(side * side)[:n_cells]
        self.x = (slots % side).astype(np.int32)
        self.y = (slots // side).astype(np.int32)
        # netlist: each cell connects to `fanout` random partners
        self.nets = rng.integers(0, n_cells, size=(n_cells, fanout)).astype(np.int32)
        self.temperature = float(side)  # hot start: accept nearly anything
        self.accepted = 0
        self.proposed = 0

    def _cell_cost(self, c: int) -> int:
        return int(
            np.abs(self.x[self.nets[c]] - self.x[c]).sum()
            + np.abs(self.y[self.nets[c]] - self.y[c]).sum()
        )

    def propose_swap(self, a: int, b: int, rng: np.random.Generator) -> bool:
        """Real Metropolis step: swap positions of cells a and b if the
        wirelength delta passes; returns acceptance."""
        self.proposed += 1
        before = self._cell_cost(a) + self._cell_cost(b)
        self.x[a], self.x[b] = self.x[b], self.x[a]
        self.y[a], self.y[b] = self.y[b], self.y[a]
        delta = (self._cell_cost(a) + self._cell_cost(b)) - before
        if delta <= 0 or rng.random() < math.exp(-delta / max(1e-9, self.temperature)):
            self.accepted += 1
            return True
        # reject: swap back
        self.x[a], self.x[b] = self.x[b], self.x[a]
        self.y[a], self.y[b] = self.y[b], self.y[a]
        return False

    def cool(self, factor: float = 0.97) -> None:
        self.temperature *= factor


class Pdsa(Workload):
    name = "pdsa"
    default_procs = 12
    uses_presto = True
    cpi = 3.6

    #: per-processor counts at scale=1.0
    CHUNKS = 72  # Presto threads (dispatches)
    MOVES_PER_CHUNK = 6
    COMMITS = 9  # anneal-lock critical sections
    CELLS = 1024
    DISPATCH_WORK = 26  # instructions per scheduler bookkeeping block

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        presto = PrestoRuntime(layout)
        anneal_lock = SharedLock(layout, "pdsa.anneal")
        placement = layout.alloc_shared(self.CELLS * 32)
        netlist = layout.alloc_shared(self.CELLS * 48)
        cost_rec = layout.alloc_shared(64)
        anneal = _Annealing(rng, self.CELLS)
        self._anneal = anneal  # exposed for tests

        chunks = self.scaled(self.CHUNKS)
        commits = self.scaled(self.COMMITS)
        for ctx in ctxs:
            commit_at = set(
                int(i) for i in rng.choice(chunks, size=min(commits, chunks), replace=False)
            )
            for c in range(chunks):
                presto.dispatch(ctx, work_instr=self.DISPATCH_WORK)
                self._move_batch(ctx, placement, netlist, anneal, rng)
                if c in commit_at:
                    # commits double as cooling points of the schedule
                    anneal.cool()
                    self._commit(ctx, anneal_lock, cost_rec, placement, rng)

    def _move_batch(self, ctx: ProcContext, placement, netlist, anneal, rng) -> None:
        cells = rng.integers(0, self.CELLS, size=(self.MOVES_PER_CHUNK, 2))
        for a, b in cells:
            a, b = int(a), int(b)
            if a == b:
                b = (a + 1) % self.CELLS
            # read the two cells' positions and their nets
            ctx.step(
                "pdsa.eval",
                34,
                reads=[
                    (placement + a * 32, 4),
                    (placement + b * 32, 4),
                    (netlist + a * 48, 6),
                    (netlist + b * 48, 6),
                ],
            )
            # cost delta arithmetic + Metropolis test (for real)
            ctx.compute("pdsa.metropolis", 18)
            if anneal.propose_swap(a, b, rng):
                ctx.step(
                    "pdsa.swap",
                    12,
                    writes=[(placement + a * 32, 3), (placement + b * 32, 3)],
                )

    def _commit(self, ctx: ProcContext, anneal_lock, cost_rec, placement, rng) -> None:
        """Fold the batch's accepted delta into the global annealing
        record (cost, acceptance counts, temperature schedule)."""
        ctx.lock(anneal_lock)
        ctx.step(
            "pdsa.commit",
            40,
            reads=[(cost_rec, 4)],
            writes=[(cost_rec, 4)],
        )
        ctx.unlock(anneal_lock)
