"""Synthetic high-contention microbenchmark (extension).

The paper's opening problem statement: "Techniques to efficiently obtain
locks under high contention have been studied in the literature using
artificial programs. ... that research did not deal with real parallel
programs.  It is not clear, therefore, whether the extra hardware and/or
software sophistication is justified."

This workload *is* one of those artificial programs — the classic
Anderson/Graunke–Thakkar style microkernel: every processor loops
{acquire global lock; touch a shared counter; release; think} with a
configurable think time.  It exists so the library can show both halves
of the literature's picture:

* with ``think_instr`` small, contention is total — the lock algorithm
  dominates run-time and queuing locks crush T&T&S (the prior
  literature's result);
* the six *real* benchmark models then calibrate how much of that
  effect survives in practice (the paper's contribution).

See ``examples/synthetic_vs_real.py``.
"""

from __future__ import annotations

import numpy as np

from ..trace.layout import AddressLayout
from ..trace.records import IBLOCK, LOCK, READ, UNLOCK, WRITE
from .base import SharedLock, Workload

__all__ = ["SyntheticContention"]


class SyntheticContention(Workload):
    """The artificial-program lock microkernel.

    Parameters (constructor keywords beyond ``scale``/``seed``):

    ``critical_instr``
        instructions inside the critical section (hold time knob);
    ``think_instr``
        instructions between critical sections (contention knob: 0 means
        back-to-back acquisitions, the literature's worst case);
    ``iterations``
        critical sections per processor at ``scale=1.0``.
    """

    name = "synthetic"
    default_procs = 12
    cpi = 3.0

    ITERATIONS = 200

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 1991,
        critical_instr: int = 20,
        think_instr: int = 40,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        if critical_instr < 1:
            raise ValueError("critical_instr must be >= 1")
        if think_instr < 0:
            raise ValueError("think_instr must be >= 0")
        self.critical_instr = critical_instr
        self.think_instr = think_instr

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        lock = SharedLock(layout, "synthetic.global")
        counter = layout.alloc_shared(64)
        scratch = [layout.alloc_private(ctx.proc, 1024) for ctx in ctxs]

        iters = self.scaled(self.ITERATIONS)
        think = self.think_instr
        for ctx in ctxs:
            # stagger the first acquisition so the queue forms gradually
            ctx.compute("synth.init", 5 + 11 * ctx.proc)
            # the whole acquire/touch/release/think loop is one periodic
            # record pattern; tile it and patch the per-iteration scratch
            # address instead of emitting ~7 records x iters one by one
            crit = ctx.site("synth.critical", self.critical_instr)
            pat_kind = [LOCK, IBLOCK, READ, WRITE, UNLOCK]
            pat_addr = [lock.addr, crit, counter, counter, lock.addr]
            pat_arg = [lock.lock_id, self.critical_instr, 4, 2, lock.lock_id]
            pat_cyc = [0, ctx.cycles_for(self.critical_instr), 0, 0, 0]
            if think:
                pat_kind += [IBLOCK, READ]
                pat_addr += [ctx.site("synth.think", think), 0]
                pat_arg += [think, 2]
                pat_cyc += [ctx.cycles_for(think), 0]
            period = len(pat_kind)
            addr = np.tile(np.asarray(pat_addr, dtype=np.uint64), iters)
            if think:
                addr[period - 1 :: period] = (
                    scratch[ctx.proc]
                    + (np.arange(iters, dtype=np.uint64) % 8) * 64
                )
            ctx.emit_columns(
                np.tile(np.asarray(pat_kind, dtype=np.uint8), iters),
                addr,
                np.tile(np.asarray(pat_arg, dtype=np.uint32), iters),
                np.tile(np.asarray(pat_cyc, dtype=np.uint32), iters),
            )
