"""Synthetic high-contention microbenchmark (extension).

The paper's opening problem statement: "Techniques to efficiently obtain
locks under high contention have been studied in the literature using
artificial programs. ... that research did not deal with real parallel
programs.  It is not clear, therefore, whether the extra hardware and/or
software sophistication is justified."

This workload *is* one of those artificial programs — the classic
Anderson/Graunke–Thakkar style microkernel: every processor loops
{acquire global lock; touch a shared counter; release; think} with a
configurable think time.  It exists so the library can show both halves
of the literature's picture:

* with ``think_instr`` small, contention is total — the lock algorithm
  dominates run-time and queuing locks crush T&T&S (the prior
  literature's result);
* the six *real* benchmark models then calibrate how much of that
  effect survives in practice (the paper's contribution).

See ``examples/synthetic_vs_real.py``.
"""

from __future__ import annotations

import numpy as np

from ..trace.layout import AddressLayout
from .base import SharedLock, Workload

__all__ = ["SyntheticContention"]


class SyntheticContention(Workload):
    """The artificial-program lock microkernel.

    Parameters (constructor keywords beyond ``scale``/``seed``):

    ``critical_instr``
        instructions inside the critical section (hold time knob);
    ``think_instr``
        instructions between critical sections (contention knob: 0 means
        back-to-back acquisitions, the literature's worst case);
    ``iterations``
        critical sections per processor at ``scale=1.0``.
    """

    name = "synthetic"
    default_procs = 12
    cpi = 3.0

    ITERATIONS = 200

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 1991,
        critical_instr: int = 20,
        think_instr: int = 40,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        if critical_instr < 1:
            raise ValueError("critical_instr must be >= 1")
        if think_instr < 0:
            raise ValueError("think_instr must be >= 0")
        self.critical_instr = critical_instr
        self.think_instr = think_instr

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        lock = SharedLock(layout, "synthetic.global")
        counter = layout.alloc_shared(64)
        scratch = [layout.alloc_private(ctx.proc, 1024) for ctx in ctxs]

        iters = self.scaled(self.ITERATIONS)
        for ctx in ctxs:
            # stagger the first acquisition so the queue forms gradually
            ctx.compute("synth.init", 5 + 11 * ctx.proc)
            for i in range(iters):
                ctx.lock(lock)
                ctx.step(
                    "synth.critical",
                    self.critical_instr,
                    reads=[(counter, 4)],
                    writes=[(counter, 2)],
                )
                ctx.unlock(lock)
                if self.think_instr:
                    ctx.step(
                        "synth.think",
                        self.think_instr,
                        reads=[(scratch[ctx.proc] + (i % 8) * 64, 2)],
                    )
