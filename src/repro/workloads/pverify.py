"""Pverify: combinational logic verification (C, no runtime in trace).

"Pverify is a combinational logic verification program which compares
two different circuit implementations to determine whether they are
functionally (Boolean) equivalent." (§2.3)

Its signature in the paper is the *opposite* locking profile to
Grav/Pdsa: few lock pairs (555/processor) held a very long time (3642
ideal cycles, ~36.5 % of execution in locked mode) with essentially
**zero** contention -- "Pverify almost never has two processors wanting
the lock simultaneously" -- which is the paper's key evidence that
percent-of-time-held does not predict contention.

Model: each processor verifies a series of output cones.  A cone is
first evaluated against private scratch structures (the long unlocked
stretch), then its canonical form is installed/compared in a shared
result table that is *partitioned*: each of the many partitions has its
own lock, and a processor holds one partition lock for the whole
installation walk (the long critical section).  With far more partitions
than processors, simultaneous interest in one partition is rare, even
though every processor is inside *some* critical section a third of the
time.
"""

from __future__ import annotations

import numpy as np

from ..trace.layout import AddressLayout
from ..trace.records import IBLOCK, LOCK, READ, UNLOCK, WRITE
from .base import ProcContext, SharedLock, Workload
from .circuit import Circuit

__all__ = ["Pverify"]


class Pverify(Workload):
    name = "pverify"
    default_procs = 12
    uses_presto = False
    cpi = 3.2

    #: per-processor counts at scale=1.0
    CONES = 28
    PARTITIONS = 192
    EVAL_BLOCKS = 44  # unlocked evaluation blocks per cone
    INSTALL_BLOCKS = 22  # blocks inside the partition lock (long hold)

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        part_locks = [
            SharedLock(layout, f"pverify.part{i}") for i in range(self.PARTITIONS)
        ]
        # a real levelized DAG: cone reads below follow its topology
        circuit = Circuit(rng, n_inputs=64, n_gates=1024, n_outputs=96)
        netlist = layout.alloc_shared(circuit.n_gates * 32)  # 32B per gate
        table = layout.alloc_shared(self.PARTITIONS * 512)
        scratch = [
            layout.alloc_private(ctx.proc, 16 * 1024) for ctx in ctxs
        ]
        self._circuit = circuit
        self._netlist = netlist

        cones = self.scaled(self.CONES)
        stripe = self.PARTITIONS // max(1, len(ctxs))
        # both phase patterns are periodic; precompute the column
        # templates once (sites allocate here, in first-use order) and
        # patch the per-cone addresses at emission time
        eval_tmpl = self._eval_template(ctxs[0])
        install_tmpl = self._install_template(ctxs[0], table)
        for ctx in ctxs:
            # The circuit outputs are distributed to processors up front,
            # so each processor's results land mostly in its own stripe of
            # the table -- simultaneous interest in one partition is rare
            # ("Pverify almost never has two processors wanting the lock
            # simultaneously").  A sixth of the cones stray outside the
            # stripe (shared sub-cones), supplying the paper's handful of
            # transfers.
            own = ctx.proc * stripe
            parts = [
                int(own + rng.integers(0, stripe))
                if rng.random() > 1 / 6
                else int(rng.integers(0, self.PARTITIONS))
                for _ in range(cones)
            ]
            outputs = rng.choice(circuit.outputs, size=cones, replace=cones > len(circuit.outputs))
            for c in range(cones):
                part = int(parts[c])
                self._evaluate_cone(
                    ctx, eval_tmpl, netlist, scratch[ctx.proc], rng, circuit,
                    int(outputs[c]),
                )
                self._install_result(
                    ctx, install_tmpl, part_locks[part], table, part
                )

    def _eval_template(self, ctx: ProcContext):
        """Per-block pattern of the unlocked phase: IBLOCK, netlist read,
        scratch read, scratch write.  Addresses at [1::4]/[2::4]/[3::4]
        are patched per cone."""
        n = self.EVAL_BLOCKS
        kind = np.tile(np.asarray([IBLOCK, READ, READ, WRITE], dtype=np.uint8), n)
        addr = np.empty(4 * n, dtype=np.uint64)
        addr[0::4] = ctx.site("pverify.eval", 42)
        arg = np.tile(np.asarray([42, 4, 4, 3], dtype=np.uint32), n)
        cyc = np.tile(
            np.asarray([ctx.cycles_for(42), 0, 0, 0], dtype=np.uint32), n
        )
        return kind, addr, arg, cyc

    def _evaluate_cone(
        self, ctx: ProcContext, tmpl, netlist, scratch, rng, circuit: Circuit,
        output: int,
    ) -> None:
        """Unlocked phase: simulate the cone against private scratch.

        Gate reads follow the real cone of ``output``: the output-side
        gates are exclusive to this cone, while the input-side gates are
        shared with other processors' cones (read-hot lines)."""
        gates = circuit.cone_sample(output, self.EVAL_BLOCKS, rng)
        kind, addr, arg, cyc = tmpl
        idx = np.arange(self.EVAL_BLOCKS)
        gate = np.asarray(gates)[idx % len(gates)]
        off = ((output * 7 + idx) % 128) * 64
        addr = addr.copy()
        addr[1::4] = netlist + gate * 32
        addr[2::4] = scratch + off
        addr[3::4] = scratch + off
        ctx.emit_columns(kind, addr, arg, cyc)

    def _install_template(self, ctx: ProcContext, table):
        """Pattern of the locked phase against partition 0; the slot rows
        (marked in the mask) shift by ``part * 512`` per emission, the
        LOCK/UNLOCK bookends get the partition lock patched in."""
        rows = [(LOCK, 0, 0, 0)]
        mask = [0]
        site = ctx.site("pverify.install", 48)
        cycles = ctx.cycles_for(48)
        for i in range(self.INSTALL_BLOCKS):
            slot = table + (i % 8) * 64
            rows.append((IBLOCK, site, 48, cycles))
            rows.append((READ, slot, 4, 0))
            mask += [0, 1]
            if i % 3 == 0:
                rows.append((WRITE, slot, 1, 0))
                mask.append(1)
        rows.append((UNLOCK, 0, 0, 0))
        mask.append(0)
        cols = list(zip(*rows))
        return (
            np.asarray(cols[0], dtype=np.uint8),
            np.asarray(cols[1], dtype=np.uint64),
            np.asarray(cols[2], dtype=np.uint32),
            np.asarray(cols[3], dtype=np.uint32),
            np.asarray(mask, dtype=np.uint64),
        )

    def _install_result(self, ctx: ProcContext, tmpl, lock, table, part: int) -> None:
        """Locked phase: walk the partition's bucket chain comparing and
        installing the canonical cone -- the 3600-cycle critical section."""
        kind, addr, arg, cyc, mask = tmpl
        addr = addr + mask * np.uint64(part * 512)
        addr[0] = addr[-1] = lock.addr
        arg = arg.copy()
        arg[0] = arg[-1] = lock.lock_id
        ctx.emit_columns(kind, addr, arg, cyc)
