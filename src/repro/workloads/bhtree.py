"""A real Barnes--Hut quadtree for the Grav workload model.

Grav's memory behaviour comes from walking a shared tree; random node
indices would miss the *correlation structure* of real Barnes--Hut
traffic: every insertion touches the root, upper levels are touched by
everyone (heavily shared, cache-hot), and force walks visit a
theta-dependent frontier.  This module builds an actual quadtree over
2-D body positions at generation time, so the trace's node addresses
come from real insertion paths and real opening-criterion traversals.

Only structure is simulated -- no masses or forces are computed (the
simulator only consumes addresses and cycle counts).
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuadTree", "clustered_positions"]


class _Node:
    __slots__ = ("node_id", "cx", "cy", "half", "children", "body", "count")

    def __init__(self, node_id: int, cx: float, cy: float, half: float) -> None:
        self.node_id = node_id
        self.cx = cx
        self.cy = cy
        self.half = half
        self.children: list[_Node | None] | None = None  # None = leaf
        self.body: tuple[float, float] | None = None
        self.count = 0  # bodies in this subtree


class QuadTree:
    """Barnes--Hut quadtree over the unit square.

    ``insert`` returns the node ids touched on the way down (the
    addresses a real insertion would read/write); ``traverse`` returns
    the node ids a force evaluation visits under the standard opening
    criterion ``cell_size / distance > theta``.
    """

    def __init__(self, max_nodes: int = 4096) -> None:
        self.max_nodes = max_nodes
        self._next_id = 0
        self.root = self._new_node(0.5, 0.5, 0.5)

    def _new_node(self, cx: float, cy: float, half: float) -> _Node:
        node = _Node(self._next_id % self.max_nodes, cx, cy, half)
        self._next_id += 1
        return node

    @property
    def n_nodes(self) -> int:
        return self._next_id

    # -- insertion -----------------------------------------------------------
    def insert(self, x: float, y: float, max_depth: int = 12) -> list[int]:
        """Insert a body; returns the path of node ids touched."""
        path = []
        node = self.root
        depth = 0
        while True:
            path.append(node.node_id)
            node.count += 1
            if node.children is None:
                if node.body is None or depth >= max_depth:
                    node.body = (x, y)
                    return path
                # split: push the resident body down, then continue
                old = node.body
                node.body = None
                node.children = [None, None, None, None]
                self._place_child(node, old[0], old[1])
            node = self._descend(node, x, y)
            depth += 1

    def _quadrant(self, node: _Node, x: float, y: float) -> int:
        return (1 if x >= node.cx else 0) | (2 if y >= node.cy else 0)

    def _descend(self, node: _Node, x: float, y: float) -> _Node:
        q = self._quadrant(node, x, y)
        child = node.children[q]
        if child is None:
            h = node.half / 2
            cx = node.cx + (h if q & 1 else -h)
            cy = node.cy + (h if q & 2 else -h)
            child = self._new_node(cx, cy, h)
            node.children[q] = child
        return child

    def _place_child(self, node: _Node, x: float, y: float) -> None:
        child = self._descend(node, x, y)
        child.count += 1
        child.body = (x, y)

    # -- force traversal ----------------------------------------------------
    def traverse(self, x: float, y: float, theta: float = 0.7) -> list[int]:
        """Node ids visited evaluating the force on (x, y)."""
        visited: list[int] = []
        append = visited.append
        stack = [self.root]
        pop = stack.pop
        push = stack.append
        tt = theta * theta
        while stack:
            node = pop()
            if node.count == 0:
                continue
            append(node.node_id)
            children = node.children
            if children is None:
                continue
            dx = node.cx - x
            dy = node.cy - y
            dist2 = dx * dx + dy * dy + 1e-9
            size = 2 * node.half
            if size * size > tt * dist2:
                # too close: open the cell
                for child in children:
                    if child is not None:
                        push(child)
            # else: accept the cell's aggregate -- already counted
        return visited

    # -- test hooks ----------------------------------------------------------
    def depth(self) -> int:
        def d(node: _Node) -> int:
            if node.children is None:
                return 1
            return 1 + max((d(c) for c in node.children if c), default=0)

        return d(self.root)

    def total_bodies(self) -> int:
        return self.root.count


def clustered_positions(rng: np.random.Generator, n: int, clusters: int = 4):
    """Plummer-ish clustered body positions (real N-body inputs cluster,
    which is what gives Barnes-Hut its uneven traversals)."""
    centers = rng.random((clusters, 2)) * 0.8 + 0.1
    which = rng.integers(0, clusters, size=n)
    pos = centers[which] + rng.normal(0, 0.06, size=(n, 2))
    return np.clip(pos, 0.001, 0.999)
