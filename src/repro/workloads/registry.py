"""Workload registry: name -> model, with the paper's processor counts.

The six entries correspond to Table 1's rows.  ``get_workload`` builds a
model instance; ``generate_suite`` produces every trace for a sweep.
"""

from __future__ import annotations

from ..trace.cache import resolve_trace_cache
from ..trace.records import TraceSet
from .base import Workload
from .fullconn import FullConn
from .grav import Grav
from .pdsa import Pdsa
from .pverify import Pverify
from .qsort import Qsort
from .synthetic import SyntheticContention
from .topopt import Topopt

__all__ = [
    "WORKLOADS",
    "BENCHMARK_ORDER",
    "LOCKING_BENCHMARKS",
    "get_workload",
    "generate_trace",
    "generate_suite",
]

WORKLOADS: dict[str, type[Workload]] = {
    "grav": Grav,
    "pdsa": Pdsa,
    "fullconn": FullConn,
    "pverify": Pverify,
    "qsort": Qsort,
    "topopt": Topopt,
    # extension: the prior literature's artificial microbenchmark (not a
    # paper benchmark -- excluded from BENCHMARK_ORDER)
    "synthetic": SyntheticContention,
}

#: Table order used throughout the paper
BENCHMARK_ORDER = ["grav", "pdsa", "fullconn", "pverify", "qsort", "topopt"]

#: benchmarks with at least one lock operation (Tables 4/6/8 rows)
LOCKING_BENCHMARKS = ["grav", "pdsa", "fullconn", "pverify", "qsort"]


def get_workload(name: str, scale: float = 1.0, seed: int = 1991) -> Workload:
    """Instantiate a benchmark model by name."""
    try:
        cls = WORKLOADS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)}"
        ) from None
    return cls(scale=scale, seed=seed)


def generate_trace(
    name: str,
    scale: float = 1.0,
    seed: int = 1991,
    n_procs: int | None = None,
    bulk: bool = True,
    trace_cache=None,
) -> TraceSet:
    """Generate one benchmark's trace set.

    ``trace_cache`` routes the lookup through a content-addressed
    :class:`repro.trace.cache.TraceCache`: a hit loads the stored trace
    (memory-mapped, shared between processes) instead of regenerating.
    Accepts a cache handle, a directory, ``True`` (default directory) or
    ``False`` (off); ``None`` defers to ``$REPRO_TRACE_CACHE``.  Cached
    and fresh tracesets are byte-identical (enforced by
    tests/test_trace_cache.py and ``repro diff-verify``).
    """
    name = name.lower()
    cache = resolve_trace_cache(trace_cache)
    if cache is not None:
        ts = cache.get(name, scale, seed, n_procs)
        if ts is not None:
            return ts
    ts = get_workload(name, scale=scale, seed=seed).generate(n_procs=n_procs, bulk=bulk)
    if cache is not None:
        cache.put(ts, scale=scale, seed=seed, n_procs=n_procs)
    return ts


def generate_suite(
    scale: float = 1.0, seed: int = 1991, trace_cache=None
) -> dict[str, TraceSet]:
    """Generate the whole benchmark suite at one scale."""
    return {
        name: generate_trace(name, scale=scale, seed=seed, trace_cache=trace_cache)
        for name in BENCHMARK_ORDER
    }
