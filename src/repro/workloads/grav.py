"""Grav: Barnes--Hut gravitational N-body simulation (Presto).

"Grav implements the Barnes and Hut clustering algorithm for simulating
the time evolution of large numbers of stars interacting under gravity.
The program trace ran for three timesteps of evolution for a system of
2000 stars."  (§2.3)

Model per timestep and processor:

1. **Tree build**: each processor inserts its share of bodies into the
   shared oct-tree.  Every insertion descends from the root and updates
   node bookkeeping under the *tree lock* -- short, frequent critical
   sections on one global lock.
2. **Force computation**: for each body, a truncated traversal of the
   shared tree (read-only on node data: centers of mass, bounds)
   followed by an acceleration update of the body record.  Body records
   live in the shared heap because Presto's allocator makes everything
   shared.
3. **Position update**: write pass over the processor's bodies.

Work arrives as small Presto threads: the runtime's dispatch (scheduler
lock nesting the run-queue lock) runs before every task chunk.  Grav was
"written as part of a ten week seminar": tasks are fine-grained, so the
scheduler lock is pounded by all ten processors -- this, not the tree
lock, is what drives its Table 3/4 numbers (utilization ~33%, ~96% of
stalls waiting on locks, >5 processors waiting at each transfer).

The tree is a *real* quadtree (:mod:`repro.workloads.bhtree`) built over
clustered 2-D body positions at generation time: insertion reads are the
actual root-to-leaf paths, and force reads are the nodes an actual
opening-criterion traversal visits -- so upper tree levels are touched
by every processor (read-hot, shared) while leaves are touched by few,
as in the original program.
"""

from __future__ import annotations

import numpy as np

from ..trace.layout import AddressLayout
from .base import ProcContext, SharedLock, Workload
from .bhtree import QuadTree, clustered_positions
from .presto import PrestoRuntime

__all__ = ["Grav"]


class Grav(Workload):
    name = "grav"
    default_procs = 10
    uses_presto = True
    cpi = 3.75  # Table 1: ~2.4 cycles/ref at ~36% data refs

    #: per-processor counts at scale=1.0 (~1/20th of the paper's trace)
    TIMESTEPS = 3
    INSERTS_PER_STEP = 7  # tree-lock critical sections per proc per step
    FORCE_CHUNKS_PER_STEP = 42  # Presto threads per proc per step
    BODIES_PER_CHUNK = 2
    NODES_PER_TRAVERSAL = 6
    DISPATCH_WORK = 25  # instructions per scheduler bookkeeping block

    N_TREE_NODES = 512  # node records in the shared tree array

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        n = len(ctxs)
        presto = PrestoRuntime(layout)
        tree_lock = SharedLock(layout, "grav.tree")

        tree = layout.alloc_shared(self.N_TREE_NODES * 64)  # node: 64 bytes
        bodies_per_proc = self.scaled(
            self.TIMESTEPS * self.FORCE_CHUNKS_PER_STEP * self.BODIES_PER_CHUNK
        )
        bodies = [
            layout.alloc_shared(max(1, bodies_per_proc) * 64) for _ in range(n)
        ]  # Presto: "private" bodies are shared anyway
        positions = [
            clustered_positions(rng, max(1, bodies_per_proc)) for _ in range(n)
        ]

        inserts = self.scaled(self.INSERTS_PER_STEP)
        chunks = self.scaled(self.FORCE_CHUNKS_PER_STEP)

        for step in range(self.TIMESTEPS):
            # each timestep rebuilds the tree from scratch, as Barnes-Hut does
            qt = QuadTree(max_nodes=self.N_TREE_NODES)
            for p, ctx in enumerate(ctxs):
                self._tree_build_phase(
                    ctx, presto, tree_lock, tree, qt, positions[p], rng, inserts
                )
            for p, ctx in enumerate(ctxs):
                self._force_phase(
                    ctx, presto, tree, qt, bodies[p], positions[p], chunks
                )
            for p, ctx in enumerate(ctxs):
                self._update_phase(ctx, bodies[p], chunks * self.BODIES_PER_CHUNK)

    # -- phases -------------------------------------------------------------------
    def _tree_build_phase(
        self, ctx: ProcContext, presto, tree_lock, tree, qt, positions, rng, inserts: int
    ) -> None:
        presto.dispatch(ctx, work_instr=self.DISPATCH_WORK)
        for i in range(inserts):
            x, y = positions[i % len(positions)]
            path = qt.insert(float(x), float(y))
            # descend from the root reading real path nodes ...
            ctx.step(
                "grav.descend",
                24,
                reads=[(tree + nid * 64, 4) for nid in path[:3]],
            )
            # ... then splice the body in under the tree lock, updating
            # the leaf and the subtree counts along the path
            ctx.lock(tree_lock)
            leaf = path[-1]
            ctx.step(
                "grav.insert",
                40,
                reads=[tree + leaf * 64, tree],
                writes=[(tree + leaf * 64, 4), tree + 8],
            )
            ctx.unlock(tree_lock)

    def _force_phase(self, ctx, presto, tree, qt, body_base, positions, chunks: int) -> None:
        bi = 0
        for _ in range(chunks):
            presto.dispatch(ctx, work_instr=self.DISPATCH_WORK)
            for b in range(self.BODIES_PER_CHUNK):
                body = body_base + (bi % 64) * 64
                x, y = positions[bi % len(positions)]
                bi += 1
                visited = qt.traverse(float(x), float(y))
                # keep the record budget bounded: read the first visited
                # nodes (root-ward, the shared-hot part) plus the frontier
                if len(visited) > self.NODES_PER_TRAVERSAL:
                    head = visited[: self.NODES_PER_TRAVERSAL - 2]
                    nodes = head + visited[-2:]
                else:
                    nodes = visited
                ctx.step(
                    "grav.traverse",
                    36,
                    reads=[(tree + nid * 64, 5) for nid in nodes],
                )
                # gravity kernel: heavy arithmetic, then acceleration update
                ctx.step(
                    "grav.kernel",
                    52,
                    reads=[(body, 6)],
                    writes=[(body + 32, 3)],
                )

    def _update_phase(self, ctx, body_base, n_bodies: int) -> None:
        for b in range(n_bodies):
            body = body_base + (b % 64) * 64
            ctx.step(
                "grav.update",
                18,
                reads=[(body, 4)],
                writes=[(body, 4)],
            )
