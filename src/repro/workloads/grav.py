"""Grav: Barnes--Hut gravitational N-body simulation (Presto).

"Grav implements the Barnes and Hut clustering algorithm for simulating
the time evolution of large numbers of stars interacting under gravity.
The program trace ran for three timesteps of evolution for a system of
2000 stars."  (§2.3)

Model per timestep and processor:

1. **Tree build**: each processor inserts its share of bodies into the
   shared oct-tree.  Every insertion descends from the root and updates
   node bookkeeping under the *tree lock* -- short, frequent critical
   sections on one global lock.
2. **Force computation**: for each body, a truncated traversal of the
   shared tree (read-only on node data: centers of mass, bounds)
   followed by an acceleration update of the body record.  Body records
   live in the shared heap because Presto's allocator makes everything
   shared.
3. **Position update**: write pass over the processor's bodies.

Work arrives as small Presto threads: the runtime's dispatch (scheduler
lock nesting the run-queue lock) runs before every task chunk.  Grav was
"written as part of a ten week seminar": tasks are fine-grained, so the
scheduler lock is pounded by all ten processors -- this, not the tree
lock, is what drives its Table 3/4 numbers (utilization ~33%, ~96% of
stalls waiting on locks, >5 processors waiting at each transfer).

The tree is a *real* quadtree (:mod:`repro.workloads.bhtree`) built over
clustered 2-D body positions at generation time: insertion reads are the
actual root-to-leaf paths, and force reads are the nodes an actual
opening-criterion traversal visits -- so upper tree levels are touched
by every processor (read-hot, shared) while leaves are touched by few,
as in the original program.
"""

from __future__ import annotations

import numpy as np

from ..trace.layout import AddressLayout
from ..trace.records import IBLOCK, LOCK, READ, UNLOCK, WRITE
from .base import ProcContext, SharedLock, Workload
from .bhtree import QuadTree, clustered_positions
from .presto import PrestoRuntime

__all__ = ["Grav"]


class Grav(Workload):
    name = "grav"
    default_procs = 10
    uses_presto = True
    cpi = 3.75  # Table 1: ~2.4 cycles/ref at ~36% data refs

    #: per-processor counts at scale=1.0 (~1/20th of the paper's trace)
    TIMESTEPS = 3
    INSERTS_PER_STEP = 7  # tree-lock critical sections per proc per step
    FORCE_CHUNKS_PER_STEP = 42  # Presto threads per proc per step
    BODIES_PER_CHUNK = 2
    NODES_PER_TRAVERSAL = 6
    DISPATCH_WORK = 25  # instructions per scheduler bookkeeping block

    N_TREE_NODES = 512  # node records in the shared tree array

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        n = len(ctxs)
        presto = PrestoRuntime(layout)
        tree_lock = SharedLock(layout, "grav.tree")

        tree = layout.alloc_shared(self.N_TREE_NODES * 64)  # node: 64 bytes
        bodies_per_proc = self.scaled(
            self.TIMESTEPS * self.FORCE_CHUNKS_PER_STEP * self.BODIES_PER_CHUNK
        )
        bodies = [
            layout.alloc_shared(max(1, bodies_per_proc) * 64) for _ in range(n)
        ]  # Presto: "private" bodies are shared anyway
        # plain-float pairs: the per-body unpack in the phase loops stays
        # off the numpy-scalar path
        positions = [
            clustered_positions(rng, max(1, bodies_per_proc)).tolist()
            for _ in range(n)
        ]

        inserts = self.scaled(self.INSERTS_PER_STEP)
        chunks = self.scaled(self.FORCE_CHUNKS_PER_STEP)

        for step in range(self.TIMESTEPS):
            # each timestep rebuilds the tree from scratch, as Barnes-Hut does
            qt = QuadTree(max_nodes=self.N_TREE_NODES)
            for p, ctx in enumerate(ctxs):
                self._tree_build_phase(
                    ctx, presto, tree_lock, tree, qt, positions[p], rng, inserts
                )
            for p, ctx in enumerate(ctxs):
                self._force_phase(
                    ctx, presto, tree, qt, bodies[p], positions[p], chunks
                )
            for p, ctx in enumerate(ctxs):
                self._update_phase(ctx, bodies[p], chunks * self.BODIES_PER_CHUNK)

    # -- phases -------------------------------------------------------------------
    def _tree_build_phase(
        self, ctx: ProcContext, presto, tree_lock, tree, qt, positions, rng, inserts: int
    ) -> None:
        presto.dispatch(ctx, work_instr=self.DISPATCH_WORK)
        d_site = ctx.site("grav.descend", 24)
        d_cyc = ctx.cycles_for(24)
        i_site = ctx.site("grav.insert", 40)
        i_cyc = ctx.cycles_for(40)
        la, lid = tree_lock.addr, tree_lock.lock_id
        kinds: list[int] = []
        addrs: list[int] = []
        args: list[int] = []
        cycs: list[int] = []
        for i in range(inserts):
            x, y = positions[i % len(positions)]
            path = qt.insert(float(x), float(y))
            # descend from the root reading real path nodes ...
            kinds.append(IBLOCK)
            addrs.append(d_site)
            args.append(24)
            cycs.append(d_cyc)
            for nid in path[:3]:
                kinds.append(READ)
                addrs.append(tree + nid * 64)
                args.append(4)
                cycs.append(0)
            # ... then splice the body in under the tree lock, updating
            # the leaf and the subtree counts along the path
            leaf = tree + path[-1] * 64
            kinds += [LOCK, IBLOCK, READ, READ, WRITE, WRITE, UNLOCK]
            addrs += [la, i_site, leaf, tree, leaf, tree + 8, la]
            args += [lid, 40, 1, 1, 4, 1, lid]
            cycs += [0, i_cyc, 0, 0, 0, 0, 0]
        ctx.emit_rows(kinds, addrs, args, cycs)

    def _force_phase(self, ctx, presto, tree, qt, body_base, positions, chunks: int) -> None:
        t_site = None
        bi = 0
        for _ in range(chunks):
            presto.dispatch(ctx, work_instr=self.DISPATCH_WORK)
            if t_site is None:
                t_site = ctx.site("grav.traverse", 36)
                t_cyc = ctx.cycles_for(36)
                k_site = ctx.site("grav.kernel", 52)
                k_cyc = ctx.cycles_for(52)
            kinds: list[int] = []
            addrs: list[int] = []
            args: list[int] = []
            cycs: list[int] = []
            for b in range(self.BODIES_PER_CHUNK):
                body = body_base + (bi % 64) * 64
                x, y = positions[bi % len(positions)]
                bi += 1
                visited = qt.traverse(float(x), float(y))
                # keep the record budget bounded: read the first visited
                # nodes (root-ward, the shared-hot part) plus the frontier
                if len(visited) > self.NODES_PER_TRAVERSAL:
                    head = visited[: self.NODES_PER_TRAVERSAL - 2]
                    nodes = head + visited[-2:]
                else:
                    nodes = visited
                kinds.append(IBLOCK)
                addrs.append(t_site)
                args.append(36)
                cycs.append(t_cyc)
                for nid in nodes:
                    kinds.append(READ)
                    addrs.append(tree + nid * 64)
                    args.append(5)
                    cycs.append(0)
                # gravity kernel: heavy arithmetic, then acceleration update
                kinds += [IBLOCK, READ, WRITE]
                addrs += [k_site, body, body + 32]
                args += [52, 6, 3]
                cycs += [k_cyc, 0, 0]
            ctx.emit_rows(kinds, addrs, args, cycs)

    def _update_phase(self, ctx, body_base, n_bodies: int) -> None:
        site = ctx.site("grav.update", 18)
        body = body_base + (np.arange(n_bodies, dtype=np.uint64) % 64) * 64
        addr = np.empty(3 * n_bodies, dtype=np.uint64)
        addr[0::3] = site
        addr[1::3] = body
        addr[2::3] = body
        ctx.emit_columns(
            np.tile(np.asarray([IBLOCK, READ, WRITE], dtype=np.uint8), n_bodies),
            addr,
            np.tile(np.asarray([18, 4, 4], dtype=np.uint32), n_bodies),
            np.tile(
                np.asarray([ctx.cycles_for(18), 0, 0], dtype=np.uint32), n_bodies
            ),
        )
