"""Qsort: parallel quicksort of random integers (C).

"Qsort is a quicksort program run on 1,000,000 random integers. ...
it provides some useful insight as long as one keeps these limitations
in mind." (§2.3)  Its paper profile: very few lock pairs (212/processor,
the shared range-queue), short holds (~52 ideal cycles), utilization
pulled down to ~68 % almost entirely by *read misses* -- "its processor
utilization is low because of a large number of read misses due to the
magnitude of the data set being sorted", with reads almost always
preceding the exchanges of the same lines (hence a ~99 % write-hit
ratio).

Model: the classic work-queue parallel quicksort.  A shared deque of
(lo, hi) ranges; each worker loops: pop a range under the queue lock,
partition it with a sequential scan (reads of every element, exchange
writes on ~a third of them, hitting lines the reads just fetched), and
push the two sub-ranges back under the lock.  Ranges below the threshold
are finished locally with two scan passes (a stand-in for the recursion
tail).  Workers run coordinated at generation time so the range
distribution across processors matches a real self-scheduling run:
ranges migrate between processors every level, so each level's first
touch of a line is a coherence/capacity miss.

The array (by default 24,576 ints -- scaled down with the trace, see
DESIGN.md) deliberately exceeds a single 64 KB cache, as the paper's
4 MB array exceeded its machine's.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..trace.layout import AddressLayout
from .base import ProcContext, SharedLock, Workload, run_coordinated

__all__ = ["Qsort"]


class Qsort(Workload):
    name = "qsort"
    default_procs = 12
    uses_presto = False
    cpi = 3.0

    #: array size at scale=1.0; scales with the trace
    N_INTS = 32768
    THRESHOLD = 384  # ranges at or below this are sorted locally

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        n_ints = self.scaled(self.N_INTS, minimum=64)
        threshold = max(16, self.THRESHOLD if n_ints >= self.N_INTS else n_ints // 64)
        array = layout.alloc_shared(n_ints * 4)
        qlock = SharedLock(layout, "qsort.queue")
        qdata = layout.alloc_shared(256)

        queue: deque[tuple[int, int]] = deque([(0, n_ints)])
        state = {"active": 0}

        workers = [
            self._worker(ctx, array, qlock, qdata, queue, state, threshold, rng)
            for ctx in ctxs
        ]
        run_coordinated(workers)
        if queue or state["active"]:
            raise RuntimeError("qsort generation ended with unsorted ranges")

    # -- the worker generator --------------------------------------------------------
    def _worker(self, ctx, array, qlock, qdata, queue, state, threshold, rng):
        while True:
            yield
            if not queue:
                if state["active"] == 0:
                    return
                continue  # another worker is still producing ranges
            # LIFO pop: a worker preferentially continues with the range
            # it just produced (depth-first), which keeps sub-ranges in
            # the cache that partitioned them -- exchanges then hit lines
            # in M/E state, as in the original program.
            lo, hi = queue.pop()
            state["active"] += 1
            self._pop_range(ctx, qlock, qdata)
            if hi - lo <= threshold:
                self._local_sort(ctx, array, lo, hi)
            else:
                mid = self._partition(ctx, array, lo, hi, rng)
                queue.append((lo, mid))
                queue.append((mid, hi))
                self._push_ranges(ctx, qlock, qdata)
            state["active"] -= 1

    # -- traced operations --------------------------------------------------------
    def _pop_range(self, ctx: ProcContext, qlock, qdata) -> None:
        ctx.lock(qlock)
        ctx.step("qsort.pop", 14, reads=[qdata, qdata + 16], writes=[qdata])
        ctx.unlock(qlock)

    def _push_ranges(self, ctx: ProcContext, qlock, qdata) -> None:
        ctx.lock(qlock)
        ctx.step(
            "qsort.push", 16, reads=[qdata], writes=[qdata, qdata + 16, qdata + 32]
        )
        ctx.unlock(qlock)

    def _partition(self, ctx: ProcContext, array, lo: int, hi: int, rng) -> int:
        """Sequential partition scan: read every element (4 per record via
        the repetition encoding), exchange roughly a third in place."""
        ctx.step("qsort.pivot", 12, reads=[array + lo * 4, array + (hi - 1) * 4])
        i = lo
        while i < hi:
            chunk = min(4, hi - i)
            a = array + i * 4
            # ~15 instructions per 4 elements: compare/branch/index updates
            writes = [(a, chunk)] if (i // 4) % 3 == 0 else []
            ctx.step("qsort.scan", 8, reads=[(a, chunk)], writes=writes)
            i += chunk
        split = int(rng.integers(35, 65)) / 100.0
        mid = lo + max(1, min(hi - lo - 1, int((hi - lo) * split)))
        return mid

    def _local_sort(self, ctx: ProcContext, array, lo: int, hi: int) -> None:
        """Finish a small range in place: two scan passes standing in for
        the recursion tail + insertion sort."""
        for _pass in range(2):
            i = lo
            while i < hi:
                chunk = min(4, hi - i)
                a = array + i * 4
                ctx.step(
                    "qsort.local", 9, reads=[(a, chunk)], writes=[(a, chunk)]
                )
                i += chunk
