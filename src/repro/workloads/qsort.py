"""Qsort: parallel quicksort of random integers (C).

"Qsort is a quicksort program run on 1,000,000 random integers. ...
it provides some useful insight as long as one keeps these limitations
in mind." (§2.3)  Its paper profile: very few lock pairs (212/processor,
the shared range-queue), short holds (~52 ideal cycles), utilization
pulled down to ~68 % almost entirely by *read misses* -- "its processor
utilization is low because of a large number of read misses due to the
magnitude of the data set being sorted", with reads almost always
preceding the exchanges of the same lines (hence a ~99 % write-hit
ratio).

Model: the classic work-queue parallel quicksort.  A shared deque of
(lo, hi) ranges; each worker loops: pop a range under the queue lock,
partition it with a sequential scan (reads of every element, exchange
writes on ~a third of them, hitting lines the reads just fetched), and
push the two sub-ranges back under the lock.  Ranges below the threshold
are finished locally with two scan passes (a stand-in for the recursion
tail).  Workers run coordinated at generation time so the range
distribution across processors matches a real self-scheduling run:
ranges migrate between processors every level, so each level's first
touch of a line is a coherence/capacity miss.

The array (by default 24,576 ints -- scaled down with the trace, see
DESIGN.md) deliberately exceeds a single 64 KB cache, as the paper's
4 MB array exceeded its machine's.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..trace.layout import AddressLayout
from ..trace.records import IBLOCK, READ, WRITE
from .base import ProcContext, SharedLock, Workload, run_coordinated

__all__ = ["Qsort"]


class Qsort(Workload):
    name = "qsort"
    default_procs = 12
    uses_presto = False
    cpi = 3.0

    #: array size at scale=1.0; scales with the trace
    N_INTS = 32768
    THRESHOLD = 384  # ranges at or below this are sorted locally

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        n_ints = self.scaled(self.N_INTS, minimum=64)
        threshold = max(16, self.THRESHOLD if n_ints >= self.N_INTS else n_ints // 64)
        array = layout.alloc_shared(n_ints * 4)
        qlock = SharedLock(layout, "qsort.queue")
        qdata = layout.alloc_shared(256)

        queue: deque[tuple[int, int]] = deque([(0, n_ints)])
        state = {"active": 0}

        workers = [
            self._worker(ctx, array, qlock, qdata, queue, state, threshold, rng)
            for ctx in ctxs
        ]
        run_coordinated(workers)
        if queue or state["active"]:
            raise RuntimeError("qsort generation ended with unsorted ranges")

    # -- the worker generator --------------------------------------------------------
    def _worker(self, ctx, array, qlock, qdata, queue, state, threshold, rng):
        while True:
            yield
            if not queue:
                if state["active"] == 0:
                    return
                continue  # another worker is still producing ranges
            # LIFO pop: a worker preferentially continues with the range
            # it just produced (depth-first), which keeps sub-ranges in
            # the cache that partitioned them -- exchanges then hit lines
            # in M/E state, as in the original program.
            lo, hi = queue.pop()
            state["active"] += 1
            self._pop_range(ctx, qlock, qdata)
            if hi - lo <= threshold:
                self._local_sort(ctx, array, lo, hi)
            else:
                mid = self._partition(ctx, array, lo, hi, rng)
                queue.append((lo, mid))
                queue.append((mid, hi))
                self._push_ranges(ctx, qlock, qdata)
            state["active"] -= 1

    # -- traced operations --------------------------------------------------------
    def _pop_range(self, ctx: ProcContext, qlock, qdata) -> None:
        ctx.lock(qlock)
        ctx.step("qsort.pop", 14, reads=[qdata, qdata + 16], writes=[qdata])
        ctx.unlock(qlock)

    def _push_ranges(self, ctx: ProcContext, qlock, qdata) -> None:
        ctx.lock(qlock)
        ctx.step(
            "qsort.push", 16, reads=[qdata], writes=[qdata, qdata + 16, qdata + 32]
        )
        ctx.unlock(qlock)

    def _partition(self, ctx: ProcContext, array, lo: int, hi: int, rng) -> int:
        """Sequential partition scan: read every element (4 per record via
        the repetition encoding), exchange roughly a third in place.

        The scan is one IBLOCK + read (+ exchange write on every third
        chunk) per 4-element chunk; the whole range's columns are built
        with a prefix-sum over the per-chunk record counts and emitted in
        one run (~15 instructions per 4 elements: compare/branch/index
        updates).
        """
        ctx.step("qsort.pivot", 12, reads=[array + lo * 4, array + (hi - 1) * 4])
        scan_site = ctx.site("qsort.scan", 8)
        scan_cyc = ctx.cycles_for(8)
        m = (hi - lo + 3) // 4
        i = lo + 4 * np.arange(m)
        chunk = np.minimum(4, hi - i)
        a = (array + i * 4).astype(np.uint64)
        hasw = (i // 4) % 3 == 0
        reps = 2 + hasw  # records per chunk: IBLOCK, READ, optional WRITE
        starts = np.cumsum(reps) - reps
        total = int(starts[-1] + reps[-1])
        widx = starts[hasw] + 2
        kind = np.full(total, READ, dtype=np.uint8)
        kind[starts] = IBLOCK
        kind[widx] = WRITE
        addr = np.empty(total, dtype=np.uint64)
        addr[starts] = scan_site
        addr[starts + 1] = a
        addr[widx] = a[hasw]
        arg = np.empty(total, dtype=np.uint32)
        arg[starts] = 8
        arg[starts + 1] = chunk
        arg[widx] = chunk[hasw]
        cyc = np.zeros(total, dtype=np.uint32)
        cyc[starts] = scan_cyc
        ctx.emit_columns(kind, addr, arg, cyc)
        split = int(rng.integers(35, 65)) / 100.0
        mid = lo + max(1, min(hi - lo - 1, int((hi - lo) * split)))
        return mid

    def _local_sort(self, ctx: ProcContext, array, lo: int, hi: int) -> None:
        """Finish a small range in place: two scan passes standing in for
        the recursion tail + insertion sort."""
        site = ctx.site("qsort.local", 9)
        m = (hi - lo + 3) // 4
        i = lo + 4 * np.arange(m)
        chunk = np.minimum(4, hi - i).astype(np.uint32)
        a = (array + i * 4).astype(np.uint64)
        kind = np.tile(np.asarray([IBLOCK, READ, WRITE], dtype=np.uint8), m)
        addr = np.empty(3 * m, dtype=np.uint64)
        addr[0::3] = site
        addr[1::3] = a
        addr[2::3] = a
        arg = np.empty(3 * m, dtype=np.uint32)
        arg[0::3] = 9
        arg[1::3] = chunk
        arg[2::3] = chunk
        cyc = np.zeros(3 * m, dtype=np.uint32)
        cyc[0::3] = ctx.cycles_for(9)
        # both passes emit the identical record run
        ctx.emit_columns(kind, addr, arg, cyc)
        ctx.emit_columns(kind, addr, arg, cyc)
