"""Topopt: topological compaction of MOS circuits (C).

"Topopt does topological compaction of MOS circuits using dynamic
windowing and partitioning techniques.  It is based upon a simulated
annealing algorithm for its topological optimizations." (§2.3)

Topopt is the suite's lock-free control: Table 2 records **zero** lock
pairs, and Table 3 gives it the highest utilization (99.3 %) with every
stall a cache miss.  Its trace is also the longest, and "there is one
processor whose trace has a much higher average CPI although it has the
same length in references", which skews the simulated run-time relative
to the ideal work cycles -- we reproduce that by giving processor 0 a
higher cycles-per-instruction weight.

Model: each processor owns a sequence of windows.  Per window it reads
the relevant slice of the shared (read-only) circuit description, runs
annealing moves against a private window buffer (the bulk of the
references, cache-resident), and writes the compacted rows back to its
private result area.  No synchronization whatsoever.
"""

from __future__ import annotations

import numpy as np

from ..trace.layout import AddressLayout
from ..trace.records import IBLOCK, READ, RECORD_DTYPE, WRITE
from .base import ProcContext, Workload

__all__ = ["Topopt"]


class Topopt(Workload):
    name = "topopt"
    default_procs = 9
    uses_presto = False
    cpi = 3.3
    #: the skewed processor's CPI multiplier (the "much higher average CPI")
    SKEW_CPI = 1.6

    #: per-processor counts at scale=1.0
    WINDOWS = 40
    MOVES_PER_WINDOW = 28
    CIRCUIT_CELLS = 2048

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        circuit = layout.alloc_shared(self.CIRCUIT_CELLS * 32)
        window_buf = [layout.alloc_private(ctx.proc, 8 * 1024) for ctx in ctxs]
        results = [layout.alloc_private(ctx.proc, 16 * 1024) for ctx in ctxs]

        windows = self.scaled(self.WINDOWS)
        for ctx in ctxs:
            if ctx.proc == 0:
                ctx.cpi = self.cpi * self.SKEW_CPI
            # the per-window record patterns are fixed per processor
            # (annealing move indices are deterministic; only the load
            # slice moves with the rng) -- precompute them once and
            # reuse across all windows
            load = self._load_columns(ctx, circuit, window_buf[ctx.proc])
            anneal = self._anneal_records(ctx, window_buf[ctx.proc])
            store = self._store_rows(ctx, results[ctx.proc])
            for w in range(windows):
                self._load_window(ctx, load, rng)
                ctx.emit_records(anneal)
                self._store_window(ctx, store, w)

    def _load_columns(self, ctx: ProcContext, circuit, buf):
        """Precompute the 12-step load pattern; the read addresses get
        the window's base cell added per emission."""
        idx = np.arange(12, dtype=np.uint64)
        kind = np.tile(np.asarray([IBLOCK, READ, WRITE], dtype=np.uint8), 12)
        addr = np.empty(36, dtype=np.uint64)
        addr[0::3] = ctx.site("topopt.load", 20)
        addr[1::3] = circuit + idx * 4 * 32  # + cell*32 per window
        addr[2::3] = buf + (idx % 32) * 64
        arg = np.tile(np.asarray([20, 8, 4], dtype=np.uint32), 12)
        cyc = np.tile(
            np.asarray([ctx.cycles_for(20), 0, 0], dtype=np.uint32), 12
        )
        return kind, addr, arg, cyc

    def _load_window(self, ctx: ProcContext, load, rng) -> None:
        """Read a slice of the shared circuit into the private window.

        Dynamic windowing keeps each processor inside its own partition
        of the circuit, so the read-shared slices stay cache-resident --
        the source of Topopt's 99+% utilization.
        """
        span = self.CIRCUIT_CELLS // 16
        region = (ctx.proc % 16) * span
        cell = region + int(rng.integers(0, max(1, span - 64)))
        kind, addr, arg, cyc = load
        addr = addr.copy()
        addr[1::3] += cell * 32
        ctx.emit_columns(kind, addr, arg, cyc)

    def _anneal_records(self, ctx: ProcContext, buf) -> np.ndarray:
        """Annealing moves entirely within the private window buffer --
        one fixed record chunk per processor."""
        rows: list[tuple[int, int, int, int]] = []
        move_s = ctx.site("topopt.move", 44)
        cost_s = ctx.site("topopt.cost", 22)
        move_c, cost_c = ctx.cycles_for(44), ctx.cycles_for(22)
        commit_s = commit_c = None
        for m in range(self.MOVES_PER_WINDOW):
            a = (m * 7) % 120
            b = (m * 13 + 5) % 120
            rows += [
                (IBLOCK, move_s, 44, move_c),
                (READ, buf + a * 64, 4, 0),
                (READ, buf + b * 64, 4, 0),
                (IBLOCK, cost_s, 22, cost_c),
            ]
            if m % 3 != 0:
                if commit_s is None:
                    commit_s = ctx.site("topopt.commit", 10)
                    commit_c = ctx.cycles_for(10)
                rows += [
                    (IBLOCK, commit_s, 10, commit_c),
                    (WRITE, buf + a * 64, 2, 0),
                    (WRITE, buf + b * 64, 2, 0),
                ]
        return np.array(rows, dtype=RECORD_DTYPE)

    def _store_rows(self, ctx: ProcContext, results):
        """Precompute the 4-step store pattern against the w=0 base;
        per-window emission shifts the write addresses."""
        store_s = ctx.site("topopt.store", 16)
        store_c = ctx.cycles_for(16)
        kinds = [IBLOCK, WRITE] * 4
        addrs = [a for i in range(4) for a in (store_s, results + i * 64)]
        args = [a for _ in range(4) for a in (16, 8)]
        cycs = [c for _ in range(4) for c in (store_c, 0)]
        return kinds, addrs, args, cycs

    def _store_window(self, ctx: ProcContext, store, w: int) -> None:
        off = (w % 64) * 256
        kinds, addrs, args, cycs = store
        ctx.emit_rows(
            kinds, [a + off if i % 2 else a for i, a in enumerate(addrs)], args, cycs
        )
