"""Topopt: topological compaction of MOS circuits (C).

"Topopt does topological compaction of MOS circuits using dynamic
windowing and partitioning techniques.  It is based upon a simulated
annealing algorithm for its topological optimizations." (§2.3)

Topopt is the suite's lock-free control: Table 2 records **zero** lock
pairs, and Table 3 gives it the highest utilization (99.3 %) with every
stall a cache miss.  Its trace is also the longest, and "there is one
processor whose trace has a much higher average CPI although it has the
same length in references", which skews the simulated run-time relative
to the ideal work cycles -- we reproduce that by giving processor 0 a
higher cycles-per-instruction weight.

Model: each processor owns a sequence of windows.  Per window it reads
the relevant slice of the shared (read-only) circuit description, runs
annealing moves against a private window buffer (the bulk of the
references, cache-resident), and writes the compacted rows back to its
private result area.  No synchronization whatsoever.
"""

from __future__ import annotations

import numpy as np

from ..trace.layout import AddressLayout
from .base import ProcContext, Workload

__all__ = ["Topopt"]


class Topopt(Workload):
    name = "topopt"
    default_procs = 9
    uses_presto = False
    cpi = 3.3
    #: the skewed processor's CPI multiplier (the "much higher average CPI")
    SKEW_CPI = 1.6

    #: per-processor counts at scale=1.0
    WINDOWS = 40
    MOVES_PER_WINDOW = 28
    CIRCUIT_CELLS = 2048

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        circuit = layout.alloc_shared(self.CIRCUIT_CELLS * 32)
        window_buf = [layout.alloc_private(ctx.proc, 8 * 1024) for ctx in ctxs]
        results = [layout.alloc_private(ctx.proc, 16 * 1024) for ctx in ctxs]

        windows = self.scaled(self.WINDOWS)
        for ctx in ctxs:
            if ctx.proc == 0:
                ctx.cpi = self.cpi * self.SKEW_CPI
            for w in range(windows):
                self._load_window(ctx, circuit, window_buf[ctx.proc], rng)
                self._anneal_window(ctx, window_buf[ctx.proc], rng)
                self._store_window(ctx, results[ctx.proc], w)

    def _load_window(self, ctx: ProcContext, circuit, buf, rng) -> None:
        """Read a slice of the shared circuit into the private window.

        Dynamic windowing keeps each processor inside its own partition
        of the circuit, so the read-shared slices stay cache-resident --
        the source of Topopt's 99+% utilization.
        """
        span = self.CIRCUIT_CELLS // 16
        region = (ctx.proc % 16) * span
        cell = region + int(rng.integers(0, max(1, span - 64)))
        for i in range(12):
            ctx.step(
                "topopt.load",
                20,
                reads=[(circuit + (cell + i * 4) * 32, 8)],
                writes=[(buf + (i % 32) * 64, 4)],
            )

    def _anneal_window(self, ctx: ProcContext, buf, rng) -> None:
        """Annealing moves entirely within the private window buffer."""
        for m in range(self.MOVES_PER_WINDOW):
            a = (m * 7) % 120
            b = (m * 13 + 5) % 120
            ctx.step(
                "topopt.move",
                44,
                reads=[(buf + a * 64, 4), (buf + b * 64, 4)],
            )
            ctx.compute("topopt.cost", 22)
            if m % 3 != 0:
                ctx.step(
                    "topopt.commit",
                    10,
                    writes=[(buf + a * 64, 2), (buf + b * 64, 2)],
                )

    def _store_window(self, ctx: ProcContext, results, w: int) -> None:
        base = results + (w % 64) * 256
        for i in range(4):
            ctx.step(
                "topopt.store",
                16,
                writes=[(base + i * 64, 8)],
            )
