"""A combinational-circuit model for the Pverify workload.

Pverify "compares two different circuit implementations to determine
whether they are functionally (Boolean) equivalent", cone by cone.  A
cone is the transitive fan-in of one output.  Random gate indices would
miss the real structure: cones overlap heavily near the primary inputs
(read-shared, cache-hot across processors) and own their upper gates
exclusively.  This module generates a levelized random DAG and computes
real cones, so the trace's netlist reads follow genuine circuit
topology.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Circuit"]


class Circuit:
    """Levelized random combinational circuit.

    Gates are numbered 0..n_gates-1; the first ``n_inputs`` are primary
    inputs.  Every later gate draws 2 fan-ins from earlier gates, biased
    toward nearby levels (as synthesized logic is).  The last
    ``n_outputs`` gates are the primary outputs whose cones Pverify
    compares.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        n_inputs: int = 64,
        n_gates: int = 1024,
        n_outputs: int = 48,
    ) -> None:
        if n_gates <= n_inputs:
            raise ValueError("need more gates than inputs")
        if n_outputs > n_gates - n_inputs:
            raise ValueError("too many outputs")
        self.n_inputs = n_inputs
        self.n_gates = n_gates
        self.n_outputs = n_outputs
        # fanin[i] = (a, b) with a, b < i
        self.fanin = np.zeros((n_gates, 2), dtype=np.int32)
        for g in range(n_inputs, n_gates):
            # bias toward recent gates: locality of synthesized netlists
            lo = max(0, g - 96)
            a = int(rng.integers(lo, g)) if rng.random() < 0.7 else int(rng.integers(0, g))
            b = int(rng.integers(lo, g)) if rng.random() < 0.7 else int(rng.integers(0, g))
            self.fanin[g] = (a, b)
        self.outputs = list(range(n_gates - n_outputs, n_gates))
        self._cone_cache: dict[int, list[int]] = {}

    def cone(self, output: int) -> list[int]:
        """Transitive fan-in of ``output`` (includes the output gate),
        in reverse-topological discovery order."""
        cached = self._cone_cache.get(output)
        if cached is not None:
            return cached
        seen = set()
        order: list[int] = []
        stack = [output]
        while stack:
            g = stack.pop()
            if g in seen:
                continue
            seen.add(g)
            order.append(g)
            if g >= self.n_inputs:
                a, b = self.fanin[g]
                stack.append(int(a))
                stack.append(int(b))
        self._cone_cache[output] = order
        return order

    def cone_sample(self, output: int, k: int, rng: np.random.Generator) -> list[int]:
        """``k`` gates of the cone for trace emission: the output-side
        gates (exclusive to this cone) plus a sample of the input-side
        (shared with other cones)."""
        gates = self.cone(output)
        if len(gates) <= k:
            return gates
        head = gates[: k // 2]
        tail_pool = gates[k // 2 :]
        idx = rng.choice(len(tail_pool), size=k - len(head), replace=False)
        return head + [tail_pool[int(i)] for i in sorted(idx)]

    def overlap(self, out_a: int, out_b: int) -> float:
        """Jaccard overlap of two cones (tests use this to confirm the
        shared-near-inputs structure)."""
        a, b = set(self.cone(out_a)), set(self.cone(out_b))
        return len(a & b) / len(a | b)
