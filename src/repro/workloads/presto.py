"""Model of the Presto user-level thread runtime.

Presto [Bershad, Lazowska & Levy 1988] schedules C++ threads entirely at
user level, so "the instructions that perform the thread management are
in the trace" (§2.3).  Two runtime locks matter for the paper:

* the **scheduler lock**, taken around every dispatch decision, and
* the **thread (run-)queue lock**, nested *inside* the scheduler lock
  when a thread is removed from the run queue -- this is the sole source
  of nested locks in Table 2.  The queue lock is also "sometimes held
  when the outer one is not held" (thread enqueue on spawn/unblock).

Because every processor dispatches from the same run queue under the
same scheduler lock, a Presto program whose thread granularity is small
serializes on the scheduler -- which is exactly why Grav and Pdsa, with
their frequent dispatches, show waiters-at-transfer above half the
machine while FullConn (coarse threads, written by someone who knew
Presto's internals) does not.

Additionally, "Due to the allocation scheme used in Presto most data is
allocated as shared even when it need not be": workload models built on
this runtime allocate their nominally-private scratch data from the
shared heap via :meth:`PrestoRuntime.alloc_thread_data`.
"""

from __future__ import annotations

from ..trace.layout import AddressLayout
from ..trace.records import IBLOCK, LOCK, READ, UNLOCK, WRITE
from .base import ProcContext, SharedLock

__all__ = ["PrestoRuntime"]


class PrestoRuntime:
    """Shared runtime state (locks + scheduler data structures) for one
    traced program; per-processor emission via the ``dispatch`` /
    ``enqueue`` methods."""

    def __init__(self, layout: AddressLayout) -> None:
        self.layout = layout
        self.sched_lock = SharedLock(layout, "presto.scheduler")
        self.queue_lock = SharedLock(layout, "presto.runqueue")
        # scheduler state: ready-queue head/tail/length + per-proc slots
        self._sched_data = layout.alloc_shared(256)
        self._queue_data = layout.alloc_shared(256)
        self._thread_brk = layout.alloc_shared(0)
        # dispatch/enqueue emit fixed record patterns (all addresses are
        # runtime state); cache the column rows per (work_instr, cpi)
        self._dispatch_cache: dict[tuple[int, float], tuple] = {}
        self._enqueue_cache: dict[tuple[int, float], tuple] = {}

    # -- allocation under Presto's shared-everything allocator ----------------------
    def alloc_thread_data(self, nbytes: int) -> int:
        """Thread-local data that Presto nevertheless allocates shared."""
        return self.layout.alloc_shared(nbytes)

    # -- traced runtime operations --------------------------------------------------
    def dispatch(self, ctx: ProcContext, work_instr: int = 14) -> None:
        """Pull the next thread off the run queue.

        Emits the nested-lock pattern of Table 2: scheduler lock held
        across the thread-queue lock, with the scheduler's shared state
        touched under both.  ``work_instr`` sizes the bookkeeping blocks
        (it controls the ideal hold time of the scheduler lock).
        """
        key = (work_instr, ctx.cpi)
        rows = self._dispatch_cache.get(key)
        if rows is None:
            rows = self._dispatch_cache[key] = self._dispatch_rows(
                ctx, work_instr
            )
        ctx.emit_rows(*rows)

    def _dispatch_rows(self, ctx: ProcContext, work_instr: int) -> tuple:
        sd, qd = self._sched_data, self._queue_data
        sl, ql = self.sched_lock, self.queue_lock
        w = work_instr
        wc = ctx.cycles_for(w)
        rows = [
            (LOCK, sl.addr, sl.lock_id, 0),
            # scheduler bookkeeping: policy check, current-thread save
            (IBLOCK, ctx.site("presto.sched.enter", w), w, wc),
            (READ, sd, 1, 0),
            (READ, sd + 32, 1, 0),
            (WRITE, sd + 64, 1, 0),
            (LOCK, ql.addr, ql.lock_id, 0),
            # dequeue: head pointer, thread control block, length update
            (IBLOCK, ctx.site("presto.queue.pop", w), w, wc),
            (READ, qd, 1, 0),
            (READ, qd + 16, 1, 0),
            (WRITE, qd, 1, 0),
            (WRITE, qd + 32, 1, 0),
            (UNLOCK, ql.addr, ql.lock_id, 0),
            # context switch bookkeeping before the scheduler lock drops
            (IBLOCK, ctx.site("presto.sched.switch", w), w, wc),
            (READ, sd + 96, 1, 0),
            (WRITE, sd + 64, 1, 0),
            (WRITE, sd + 96, 1, 0),
            # policy epilogue: a stretch of pure compute between the last
            # store and the unlock, long enough for the buffered write to
            # perform (the reason the paper finds the cache-bus buffers
            # "almost never" non-empty at synchronization points)
            (IBLOCK, ctx.site("presto.sched.exit", 8), 8, ctx.cycles_for(8)),
            (UNLOCK, sl.addr, sl.lock_id, 0),
            # register restore / stack switch outside any lock
            (IBLOCK, ctx.site("presto.switch.tail", 10), 10, ctx.cycles_for(10)),
        ]
        kinds, addrs, args, cycs = (list(col) for col in zip(*rows))
        return kinds, addrs, args, cycs

    def enqueue(self, ctx: ProcContext, work_instr: int = 8) -> None:
        """Make a thread runnable: the queue lock alone (the inner lock
        held while the outer is not)."""
        key = (work_instr, ctx.cpi)
        rows = self._enqueue_cache.get(key)
        if rows is None:
            qd = self._queue_data
            ql = self.queue_lock
            w = work_instr
            rows = self._enqueue_cache[key] = (
                [LOCK, IBLOCK, READ, WRITE, WRITE, UNLOCK],
                [
                    ql.addr,
                    ctx.site("presto.queue.push", w),
                    qd + 16,
                    qd + 16,
                    qd + 48,
                    ql.addr,
                ],
                [ql.lock_id, w, 1, 1, 1, ql.lock_id],
                [0, ctx.cycles_for(w), 0, 0, 0, 0],
            )
        ctx.emit_rows(*rows)

    def spawn(self, ctx: ProcContext, work_instr: int = 20) -> None:
        """Thread creation: allocate + initialize the control block from
        the shared heap, then enqueue."""
        tcb = self.alloc_thread_data(128)
        ctx.step(
            "presto.spawn",
            work_instr,
            reads=[tcb],
            writes=[(tcb, 8)],
        )
        self.enqueue(ctx)
