"""Model of the Presto user-level thread runtime.

Presto [Bershad, Lazowska & Levy 1988] schedules C++ threads entirely at
user level, so "the instructions that perform the thread management are
in the trace" (§2.3).  Two runtime locks matter for the paper:

* the **scheduler lock**, taken around every dispatch decision, and
* the **thread (run-)queue lock**, nested *inside* the scheduler lock
  when a thread is removed from the run queue -- this is the sole source
  of nested locks in Table 2.  The queue lock is also "sometimes held
  when the outer one is not held" (thread enqueue on spawn/unblock).

Because every processor dispatches from the same run queue under the
same scheduler lock, a Presto program whose thread granularity is small
serializes on the scheduler -- which is exactly why Grav and Pdsa, with
their frequent dispatches, show waiters-at-transfer above half the
machine while FullConn (coarse threads, written by someone who knew
Presto's internals) does not.

Additionally, "Due to the allocation scheme used in Presto most data is
allocated as shared even when it need not be": workload models built on
this runtime allocate their nominally-private scratch data from the
shared heap via :meth:`PrestoRuntime.alloc_thread_data`.
"""

from __future__ import annotations

from ..trace.layout import AddressLayout
from .base import ProcContext, SharedLock

__all__ = ["PrestoRuntime"]


class PrestoRuntime:
    """Shared runtime state (locks + scheduler data structures) for one
    traced program; per-processor emission via the ``dispatch`` /
    ``enqueue`` methods."""

    def __init__(self, layout: AddressLayout) -> None:
        self.layout = layout
        self.sched_lock = SharedLock(layout, "presto.scheduler")
        self.queue_lock = SharedLock(layout, "presto.runqueue")
        # scheduler state: ready-queue head/tail/length + per-proc slots
        self._sched_data = layout.alloc_shared(256)
        self._queue_data = layout.alloc_shared(256)
        self._thread_brk = layout.alloc_shared(0)

    # -- allocation under Presto's shared-everything allocator ----------------------
    def alloc_thread_data(self, nbytes: int) -> int:
        """Thread-local data that Presto nevertheless allocates shared."""
        return self.layout.alloc_shared(nbytes)

    # -- traced runtime operations --------------------------------------------------
    def dispatch(self, ctx: ProcContext, work_instr: int = 14) -> None:
        """Pull the next thread off the run queue.

        Emits the nested-lock pattern of Table 2: scheduler lock held
        across the thread-queue lock, with the scheduler's shared state
        touched under both.  ``work_instr`` sizes the bookkeeping blocks
        (it controls the ideal hold time of the scheduler lock).
        """
        sd, qd = self._sched_data, self._queue_data
        ctx.lock(self.sched_lock)
        # scheduler bookkeeping: policy check, current-thread save
        ctx.step(
            "presto.sched.enter",
            work_instr,
            reads=[sd, sd + 32],
            writes=[sd + 64],
        )
        ctx.lock(self.queue_lock)
        # dequeue: head pointer, thread control block, length update
        ctx.step(
            "presto.queue.pop",
            work_instr,
            reads=[qd, qd + 16],
            writes=[qd, qd + 32],
        )
        ctx.unlock(self.queue_lock)
        # context switch bookkeeping before the scheduler lock drops
        ctx.step(
            "presto.sched.switch",
            work_instr,
            reads=[sd + 96],
            writes=[sd + 64, sd + 96],
        )
        # policy epilogue: a stretch of pure compute between the last
        # store and the unlock, long enough for the buffered write to
        # perform (the reason the paper finds the cache-bus buffers
        # "almost never" non-empty at synchronization points)
        ctx.compute("presto.sched.exit", 8)
        ctx.unlock(self.sched_lock)
        # register restore / stack switch outside any lock
        ctx.compute("presto.switch.tail", 10)

    def enqueue(self, ctx: ProcContext, work_instr: int = 8) -> None:
        """Make a thread runnable: the queue lock alone (the inner lock
        held while the outer is not)."""
        qd = self._queue_data
        ctx.lock(self.queue_lock)
        ctx.step(
            "presto.queue.push",
            work_instr,
            reads=[qd + 16],
            writes=[qd + 16, qd + 48],
        )
        ctx.unlock(self.queue_lock)

    def spawn(self, ctx: ProcContext, work_instr: int = 20) -> None:
        """Thread creation: allocate + initialize the control block from
        the shared heap, then enqueue."""
        tcb = self.alloc_thread_data(128)
        ctx.step(
            "presto.spawn",
            work_instr,
            reads=[tcb],
            writes=[(tcb, 8)],
        )
        self.enqueue(ctx)
