"""Differential verification of the trace-interpreter fast path.

The machine's private-window fast path (:mod:`repro.machine.fastpath`)
claims to be *metric-neutral*: for any traceset and configuration, a run
with ``fast_path=True`` must produce a :class:`~repro.machine.metrics.
RunResult` that serializes byte-for-byte identically to a run with the
reference record-by-record interpreter.  This module checks that claim
the only way it can be checked -- by running both and comparing every
serialized field.

:func:`differential_check` sweeps the paper's six workloads under the
lock-scheme grid and both consistency models (72 cells at default
scale: six workloads x six schemes x two models) and
reports, per cell, whether the two runs agree and how much work the fast
path actually retired.  :func:`dict_diff` renders any disagreement as a
readable per-field report (shared with the golden-result regression
test, which has the same problem: "two result dicts differ -- where?").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..consistency import get_model
from ..machine.config import MachineConfig
from ..machine.system import System
from ..runner.serialize import result_to_dict
from ..sync import get_lock_manager
from ..trace.records import TraceSet

__all__ = [
    "SUITE_PROGRAMS",
    "LOCK_SCHEMES",
    "MODELS",
    "CellReport",
    "dict_diff",
    "run_cell",
    "differential_check",
]

#: the paper's six benchmarks (Table 1 order)
SUITE_PROGRAMS = ("grav", "pdsa", "fullconn", "pverify", "qsort", "topopt")
#: the lock-scheme axis of the differential grid: the paper's two
#: schemes plus the extension lock zoo (exact-queuing and tas are
#: behavioural near-duplicates of queuing and ttas and stay out of the
#: default grid; pass ``lock_schemes=sorted(repro.sync.LOCK_SCHEMES)``
#: to sweep every registered scheme)
LOCK_SCHEMES = ("queuing", "ttas", "mcs", "clh", "ticket", "backoff")
MODELS = ("sc", "wo")


def dict_diff(expected, got, path: str = "", limit: int = 40) -> list[str]:
    """Readable per-field differences between two JSON-like values.

    Returns one line per leaf difference, e.g.::

        proc_metrics[3].refs_processed: expected 10242, got 10178
        meta.bus_grants: expected 5511, got 5512

    Containers of mismatched type or length are reported at the
    container, then element-wise up to ``limit`` total lines.
    """
    diffs: list[str] = []
    _diff_into(expected, got, path, diffs)
    if len(diffs) > limit:
        dropped = len(diffs) - limit
        diffs = diffs[:limit]
        diffs.append(f"... and {dropped} more difference(s)")
    return diffs


def _diff_into(expected, got, path: str, out: list[str]) -> None:
    here = path or "<root>"
    if type(expected) is not type(got) and not (
        isinstance(expected, (int, float)) and isinstance(got, (int, float))
    ):
        out.append(
            f"{here}: expected {type(expected).__name__} "
            f"({expected!r}), got {type(got).__name__} ({got!r})"
        )
        return
    if isinstance(expected, dict):
        for k in expected.keys() | got.keys():
            sub = f"{path}.{k}" if path else str(k)
            if k not in got:
                out.append(f"{sub}: missing (expected {expected[k]!r})")
            elif k not in expected:
                out.append(f"{sub}: unexpected (got {got[k]!r})")
            else:
                _diff_into(expected[k], got[k], sub, out)
    elif isinstance(expected, list):
        if len(expected) != len(got):
            out.append(
                f"{here}: length {len(expected)} expected, got {len(got)}"
            )
        for i, (e, g) in enumerate(zip(expected, got)):
            _diff_into(e, g, f"{path}[{i}]", out)
    elif expected != got:
        out.append(f"{here}: expected {expected!r}, got {got!r}")


@dataclass
class CellReport:
    """Outcome of one differential cell (one workload/lock/model run)."""

    program: str
    lock_scheme: str
    consistency: str
    equal: bool
    #: per-field differences (empty when ``equal``)
    diffs: list[str] = field(default_factory=list)
    #: fast-path coverage: windows retired, records and elementary
    #: references retired through them, total references of the run
    fp_windows: int = 0
    fp_records: int = 0
    fp_refs: int = 0
    total_refs: int = 0
    #: segment-kernel coverage of the fast run: machine-quiet segments
    #: collapsed and records retired columnar (repro.machine.kernel)
    kernel_segments: int = 0
    kernel_records: int = 0
    #: spin-phase coverage of the fast run: lock-wait phases collapsed
    #: with certified waiters (repro.machine.spinphase)
    spin_segments: int = 0
    #: invariant violations found by the runtime auditor (audited cells
    #: only; see repro.audit) and the number of checks it evaluated
    violations: int = 0
    audit_checks: int = 0

    @property
    def label(self) -> str:
        return f"{self.program}/{self.lock_scheme}/{self.consistency}"

    @property
    def coverage(self) -> float:
        """Fraction of elementary references retired by the fast path."""
        return self.fp_refs / self.total_refs if self.total_refs else 0.0

    def summary(self) -> str:
        verdict = "ok" if self.equal else "MISMATCH"
        line = (
            f"{self.label:28s} {verdict:8s} "
            f"fp: {self.fp_windows:7d} windows, "
            f"{self.fp_records:8d} records, "
            f"{100.0 * self.coverage:5.1f}% of refs"
        )
        if self.kernel_segments:
            line += (
                f", kernel: {self.kernel_segments} segments, "
                f"{self.kernel_records} records"
            )
        if self.spin_segments:
            line += f", spin: {self.spin_segments} phases"
        if self.audit_checks:
            line += f", audit: {self.violations}/{self.audit_checks} checks failed"
        return line


def _canonical(result) -> dict:
    """The serialized result, through a JSON round-trip so comparison
    happens on exactly what ``to_json`` would persist."""
    return json.loads(json.dumps(result_to_dict(result), sort_keys=True))


#: the configuration knobs a differential cell toggles between its fast
#: and reference runs: the private-window interpreter fast path, the
#: contended-path bus fast path, the columnar segment-retirement
#: kernel, and the spin-phase collapse kernel.  The default varies all
#: four together, so the fully-optimized simulator is checked against
#: the fully-reference one (which subsumes each knob alone when the
#: others are byte-neutral).
VARY_ALL = ("fast_path", "bus_fast_path", "segment_kernel", "spin_kernel")


def run_cell(
    traceset: TraceSet,
    lock_scheme: str = "queuing",
    consistency: str = "sc",
    program: str = "",
    config: MachineConfig | None = None,
    engine_factory=None,
    audit: bool = False,
    vary: tuple[str, ...] = VARY_ALL,
) -> CellReport:
    """Run one traceset through both simulator paths and compare.

    ``config`` (if given) supplies everything but the ``vary`` knobs
    (default: ``fast_path`` and ``bus_fast_path``), which this function
    overrides in both directions.  ``engine_factory`` is forwarded to
    :class:`System` (e.g. ``HeapEngine`` to also cross-check the
    event-queue implementation).

    With ``audit=True`` a collect-mode runtime invariant auditor (see
    :mod:`repro.audit`) rides along on the fast run only: the cell then
    simultaneously proves the run invariant-clean and -- because the
    unaudited reference run must still serialize identically -- that
    auditing is observation-only.
    """
    from dataclasses import replace

    base = config or MachineConfig(n_procs=traceset.n_procs)
    if base.audit:  # run_cell manages attachment itself
        base = replace(base, audit=False)
        audit = True
    if not vary:
        raise ValueError("vary must name at least one configuration knob")
    canon = {}
    fp_stats = (0, 0, 0)
    kernel_stats = (0, 0)
    spin_segments = 0
    total_refs = 0
    violations = 0
    audit_checks = 0
    for fast in (True, False):
        system = System(
            traceset,
            replace(base, **{knob: fast for knob in vary}),
            get_lock_manager(lock_scheme),
            get_model(consistency),
            engine_factory=engine_factory,
        )
        if audit and fast and system.audit is None:
            from ..audit import SystemAuditor

            SystemAuditor.attach(system, mode="collect")
        result = system.run()
        canon[fast] = _canonical(result)
        if fast:
            if system.audit is not None:
                rep = system.audit.report
                violations = len(rep.violations)
                audit_checks = sum(rep.checks.values())
            fp_stats = (
                sum(p.fp_windows for p in system.procs),
                sum(p.fp_records for p in system.procs),
                sum(p.fp_refs for p in system.procs),
            )
            total_refs = sum(m.refs_processed for m in result.proc_metrics)
            if system.kernel is not None:
                kernel_stats = (
                    system.kernel.segments,
                    system.kernel.records,
                )
                spin_segments = getattr(system.kernel, "spin_segments", 0)
    equal = canon[True] == canon[False]
    return CellReport(
        program=program or traceset.program,
        lock_scheme=lock_scheme,
        consistency=consistency,
        equal=equal,
        diffs=[] if equal else dict_diff(canon[False], canon[True]),
        fp_windows=fp_stats[0],
        fp_records=fp_stats[1],
        fp_refs=fp_stats[2],
        total_refs=total_refs,
        kernel_segments=kernel_stats[0],
        kernel_records=kernel_stats[1],
        spin_segments=spin_segments,
        violations=violations,
        audit_checks=audit_checks,
    )


def differential_check(
    programs=SUITE_PROGRAMS,
    lock_schemes=LOCK_SCHEMES,
    models=MODELS,
    scale: float = 1.0,
    seed: int = 1991,
    progress=None,
    audit: bool = False,
    vary: tuple[str, ...] = VARY_ALL,
    trace_cache=None,
) -> list[CellReport]:
    """Differentially verify every (program, lock, model) cell.

    Tracesets are generated once per program and shared across that
    program's cells; ``trace_cache`` routes that generation through a
    :class:`repro.trace.cache.TraceCache` (cached and fresh traces are
    byte-identical, so the verdicts are too -- running this both cold
    and warm is itself a check of that claim).  ``progress`` (if given)
    is called with each :class:`CellReport` as it completes.  Returns
    all reports; the run passed iff ``all(r.equal for r in reports)``.
    """
    from ..workloads import generate_trace

    reports: list[CellReport] = []
    for program in programs:
        traceset = generate_trace(
            program, scale=scale, seed=seed, trace_cache=trace_cache
        )
        for lock_scheme in lock_schemes:
            for model in models:
                report = run_cell(
                    traceset,
                    lock_scheme=lock_scheme,
                    consistency=model,
                    program=program,
                    audit=audit,
                    vary=vary,
                )
                reports.append(report)
                if progress is not None:
                    progress(report)
    return reports
