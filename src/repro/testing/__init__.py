"""Verification harnesses that are part of the library, not the test suite.

The test suite exercises these, but they are importable production code:
the CLI's ``diff-verify`` subcommand and external scripts use them to
check that optimized execution paths are observationally identical to
their reference implementations.
"""

from .differential import (
    CellReport,
    LOCK_SCHEMES,
    MODELS,
    SUITE_PROGRAMS,
    VARY_ALL,
    dict_diff,
    differential_check,
    run_cell,
)

__all__ = [
    "CellReport",
    "LOCK_SCHEMES",
    "MODELS",
    "SUITE_PROGRAMS",
    "VARY_ALL",
    "dict_diff",
    "differential_check",
    "run_cell",
]
