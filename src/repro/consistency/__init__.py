"""Memory consistency models: sequential consistency and weak ordering
(the paper's two), plus total store ordering as an extension."""

from .base import ConsistencyModel
from .sequential import SEQUENTIAL, SequentialConsistency
from .tso import TSO, TotalStoreOrdering
from .weak import WEAK, WeakOrdering

__all__ = [
    "ConsistencyModel",
    "SEQUENTIAL",
    "SequentialConsistency",
    "TSO",
    "TotalStoreOrdering",
    "WEAK",
    "WeakOrdering",
    "MODEL_NAMES",
    "get_model",
]

_MODELS = {
    "sc": SEQUENTIAL,
    "wo": WEAK,
    "sequential": SEQUENTIAL,
    "weak": WEAK,
    "tso": TSO,
    "pc": TSO,
}

#: every accepted model name (for CLI validation/help)
MODEL_NAMES = sorted(_MODELS)


def get_model(name: str) -> ConsistencyModel:
    """Look up a consistency model by name ('sc'/'sequential' or 'wo'/'weak')."""
    try:
        return _MODELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown consistency model {name!r}; expected one of {sorted(set(_MODELS))}"
        ) from None
