"""Weak ordering (Dubois, Scheurich & Briggs), as modeled in §4.1.

The paper's weakly ordered machine gains exactly one mechanism over the
sequentially consistent one: *bypassing in the cache--bus buffers*.  Any
reference whose miss would stall the processor (loads and instruction
fetches) may be placed at the front of its bus-access buffer, ahead of
buffered writes, write-backs and invalidation signals; writes and
upgrades no longer stall the processor at all -- they are buffered and
performed when they reach the bus.

The three rules of weak ordering are honoured at synchronization
operations: before a lock/unlock issues, the processor stalls until
every buffered or in-flight access has performed (all fetched lines are
installed in the cache), and no later access issues until the
synchronization completes.

Deliberately *not* modeled, as in the paper: prefetching, out-of-order
issue/completion, and delayed invalidation signals (impossible with
multi-word lines without losing writes under false sharing -- §4.1).
"""

from __future__ import annotations

from .base import ConsistencyModel

__all__ = ["WeakOrdering", "WEAK"]


class WeakOrdering(ConsistencyModel):
    def __init__(self) -> None:
        super().__init__(
            name="wo",
            stall_on_write_miss=False,
            stall_on_upgrade=False,
            bypass_reads=True,
            drain_at_sync=True,
        )


WEAK = WeakOrdering()
