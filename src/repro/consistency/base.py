"""Memory consistency models (§4).

A consistency model, for this simulator, is a small policy object the
processor consults at each reference:

* must the processor stall on a write miss, or may the write (an RFO,
  since the caches write-allocate) sit in the cache--bus buffer while
  execution continues?
* must a write hit on a SHARED line stall until its invalidation signal
  completes, or may the invalidation be buffered?
* may loads and instruction fetches *bypass* buffered writes,
  write-backs and invalidations to the front of the buffer?
* must the processor drain all buffered/outstanding accesses before a
  synchronization operation issues (rules 2 and 3 of weak ordering)?

Reads that miss always stall the issuing processor -- the paper models
blocking loads in both systems; the consistency model only controls what
the load may jump over in the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConsistencyModel"]


@dataclass(frozen=True)
class ConsistencyModel:
    """Base policy record.  Instantiate the concrete subclasses in
    :mod:`repro.consistency.sequential` / :mod:`repro.consistency.weak`."""

    name: str
    stall_on_write_miss: bool
    stall_on_upgrade: bool
    bypass_reads: bool
    drain_at_sync: bool

    def __str__(self) -> str:
        return self.name
