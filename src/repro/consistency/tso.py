"""Total store ordering / processor consistency (extension).

The paper evaluates the two ends of the spectrum -- sequential
consistency and weak ordering.  The commercially dominant middle point
(SPARC TSO, x86-style processor consistency) buffers stores in FIFO
order and lets loads bypass them, but needs **no drain at
synchronization points**: because the store buffer preserves order, a
lock release's store cannot pass the critical section's stores, so
synchronization is correct by construction.

In this machine model that means the TSO configuration is exactly weak
ordering minus the stall-and-drain: writes and upgrades buffer, loads
and ifetches bypass, and lock operations simply queue *behind* the
buffered stores (FIFO), paying bus-order delay instead of a stall.
Given the paper's §4.2 finding that drains are nearly free on this
machine, TSO should match weak ordering almost exactly -- the extension
benchmark checks that, which is itself a statement the paper's data
implies but never tests.
"""

from __future__ import annotations

from .base import ConsistencyModel

__all__ = ["TotalStoreOrdering", "TSO"]


class TotalStoreOrdering(ConsistencyModel):
    def __init__(self) -> None:
        super().__init__(
            name="tso",
            stall_on_write_miss=False,
            stall_on_upgrade=False,
            bypass_reads=True,
            drain_at_sync=False,
        )


TSO = TotalStoreOrdering()
