"""Sequential consistency (Lamport): "the result of any execution is the
same as if the operations of all the processors were executed in some
sequential order, and the operations of each individual processor appear
in this sequence in the order specified by its program."

Operationally in this machine model: every miss -- read, ifetch or write
-- stalls the issuing processor until the access performs; a write hit on
a SHARED line stalls until the invalidation signal completes; the
cache--bus buffer is strictly FIFO (only write-backs of evicted lines,
which are not program accesses, trail behind).  Synchronization points
need no special drain because nothing is ever outstanding.
"""

from __future__ import annotations

from .base import ConsistencyModel

__all__ = ["SequentialConsistency", "SEQUENTIAL"]


class SequentialConsistency(ConsistencyModel):
    def __init__(self) -> None:
        super().__init__(
            name="sc",
            stall_on_write_miss=True,
            stall_on_upgrade=True,
            bypass_reads=False,
            drain_at_sync=False,
        )


SEQUENTIAL = SequentialConsistency()
