"""Vectorized per-trace summary statistics.

These are the "ideal" statistics of the paper's §2.3: what the program
would do with no cache misses, no bus, and no lock contention.  They are
computed straight from the trace with numpy reductions (plus a short
Python pass over the lock events, which are rare), and feed Tables 1
and 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .layout import PRIVATE_BASE, SHARED_BASE
from .records import IBLOCK, LOCK, READ, UNLOCK, WRITE, Trace

__all__ = ["TraceStats", "LockHold", "compute_trace_stats", "lock_holds"]


@dataclass(frozen=True)
class LockHold:
    """One ideal lock-held interval on one processor."""

    lock_id: int
    start: int  # ideal cycle of the acquire program point
    end: int  # ideal cycle of the release program point
    nested: bool  # acquired while another lock was already held

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class TraceStats:
    """Ideal statistics of a single processor's trace (Tables 1 and 2)."""

    proc: int
    work_cycles: int
    all_refs: int
    data_refs: int
    shared_refs: int
    lock_pairs: int
    nested_locks: int
    avg_held: float  # mean ideal lock-held duration (cycles)
    total_held: int  # length of the union of held intervals (cycles)

    @property
    def pct_time_held(self) -> float:
        """Percent of ideal execution time spent holding at least one lock."""
        if self.work_cycles == 0:
            return 0.0
        return 100.0 * self.total_held / self.work_cycles


def _cycle_positions(trace: Trace) -> np.ndarray:
    """Ideal cycle at which each record *begins* (exclusive prefix sum)."""
    cyc = trace.records["cycles"].astype(np.int64)
    pos = np.empty(len(cyc), dtype=np.int64)
    if len(cyc):
        np.cumsum(cyc, out=pos)
        pos -= cyc  # exclusive
    return pos


def lock_holds(trace: Trace) -> list[LockHold]:
    """Pair up lock/unlock records into ideal held intervals.

    The trace builder guarantees each processor's acquires/releases are
    well formed (no re-acquire while held, no release of an unheld lock),
    so pairing is a single pass over the lock events.
    """
    kinds = trace.records["kind"]
    lock_mask = (kinds == LOCK) | (kinds == UNLOCK)
    idx = np.flatnonzero(lock_mask)
    if len(idx) == 0:
        return []
    pos = _cycle_positions(trace)
    holds: list[LockHold] = []
    open_at: dict[int, tuple[int, bool]] = {}  # lock_id -> (start, nested)
    for i in idx:
        rec = trace.records[i]
        lid = int(rec["arg"])
        if rec["kind"] == LOCK:
            nested = len(open_at) > 0
            if lid in open_at:
                raise ValueError(f"lock {lid} acquired twice without release")
            open_at[lid] = (int(pos[i]), nested)
        else:
            if lid not in open_at:
                raise ValueError(f"lock {lid} released while not held")
            start, nested = open_at.pop(lid)
            holds.append(LockHold(lid, start, int(pos[i]), nested))
    if open_at:
        raise ValueError(f"trace ended with locks held: {sorted(open_at)}")
    return holds


def _union_length(intervals: list[tuple[int, int]]) -> int:
    """Total length covered by a set of possibly-overlapping intervals."""
    if not intervals:
        return 0
    intervals.sort()
    total = 0
    cur_start, cur_end = intervals[0]
    for s, e in intervals[1:]:
        if s > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = s, e
        else:
            cur_end = max(cur_end, e)
    total += cur_end - cur_start
    return total


def compute_trace_stats(trace: Trace) -> TraceStats:
    """Compute the full ideal-statistics record for one processor."""
    rec = trace.records
    kinds = rec["kind"]
    args = rec["arg"].astype(np.int64)
    addrs = rec["addr"]

    iblock = kinds == IBLOCK
    data = (kinds == READ) | (kinds == WRITE)

    work_cycles = int(rec["cycles"].astype(np.int64).sum())
    ifetches = int(args[iblock].sum())
    data_refs = int(args[data].sum())
    shared = data & (addrs >= SHARED_BASE) & (addrs < PRIVATE_BASE)
    shared_refs = int(args[shared].sum())

    holds = lock_holds(trace)
    lock_pairs = len(holds)
    nested = sum(1 for h in holds if h.nested)
    avg_held = float(np.mean([h.duration for h in holds])) if holds else 0.0
    total_held = _union_length([(h.start, h.end) for h in holds])

    return TraceStats(
        proc=trace.proc,
        work_cycles=work_cycles,
        all_refs=ifetches + data_refs,
        data_refs=data_refs,
        shared_refs=shared_refs,
        lock_pairs=lock_pairs,
        nested_locks=nested,
        avg_held=avg_held,
        total_held=total_held,
    )
