"""Structural validation of traces.

The builder enforces these invariants during generation; this module
re-checks them on arbitrary traces (e.g. ones loaded from disk or built
by external tools) and is the oracle for the property-based tests.
"""

from __future__ import annotations

import numpy as np

from .layout import CODE_BASE, SHARED_BASE, AddressLayout
from .records import BARRIER, IBLOCK, LOCK, READ, UNLOCK, WRITE, Trace, TraceSet

__all__ = ["TraceValidationError", "validate_trace", "validate_traceset"]

_VALID_KINDS = frozenset({IBLOCK, READ, WRITE, LOCK, UNLOCK, BARRIER})


class TraceValidationError(ValueError):
    """A trace violates a structural invariant."""


def validate_trace(trace: Trace) -> None:
    """Raise :class:`TraceValidationError` unless ``trace`` is well formed.

    Checks:

    * every record kind is known;
    * basic blocks have >= 1 instruction and >= 1 cycle; data records
      have ``reps >= 1``; non-IBLOCK records carry zero cycles;
    * IBLOCK addresses are code addresses; LOCK/UNLOCK addresses are lock
      addresses; data addresses are never code or lock addresses;
    * lock/unlock events pair up (no re-acquire while held, no release of
      an unheld lock, nothing held at end of trace), and each lock id
      maps to a single address.
    """
    rec = trace.records
    kinds = rec["kind"]
    unknown = set(np.unique(kinds)) - _VALID_KINDS
    if unknown:
        raise TraceValidationError(f"unknown record kinds: {sorted(unknown)}")

    iblock = kinds == IBLOCK
    if np.any(rec["arg"][iblock] < 1):
        raise TraceValidationError("basic block with zero instructions")
    if np.any(rec["cycles"][iblock] < 1):
        raise TraceValidationError("basic block with zero cycles")
    if np.any(rec["cycles"][~iblock] != 0):
        raise TraceValidationError("non-IBLOCK record carries cycles")

    data = (kinds == READ) | (kinds == WRITE)
    if np.any(rec["arg"][data] < 1):
        raise TraceValidationError("data record with zero repetitions")

    addrs = rec["addr"].astype(np.int64)
    in_code = (addrs >= CODE_BASE) & (addrs < SHARED_BASE)
    bad = iblock & ~in_code
    if bad.any():
        i = int(np.argmax(bad))
        raise TraceValidationError(
            f"record {i}: IBLOCK address {addrs[i]:#x} outside code region"
        )
    bad = data & in_code
    if bad.any():
        i = int(np.argmax(bad))
        raise TraceValidationError(f"record {i}: data reference into code region")

    sync_idx = np.flatnonzero((kinds == LOCK) | (kinds == UNLOCK))
    held: dict[int, int] = {}
    lock_addr: dict[int, int] = {}
    # pre-extract to plain Python values: per-element structured-array
    # indexing dominates validation time on sync-heavy traces
    for i, k, lid, a in zip(
        sync_idx.tolist(),
        kinds[sync_idx].tolist(),
        rec["arg"][sync_idx].tolist(),
        addrs[sync_idx].tolist(),
    ):
        if not AddressLayout.is_lock_addr(a):
            raise TraceValidationError(
                f"record {i}: lock {lid} at non-lock address {a:#x}"
            )
        prev = lock_addr.setdefault(lid, a)
        if prev != a:
            raise TraceValidationError(f"lock {lid} has two addresses")
        if k == LOCK:
            if lid in held:
                raise TraceValidationError(
                    f"record {i}: lock {lid} re-acquired while held"
                )
            held[lid] = i
        else:
            if lid not in held:
                raise TraceValidationError(
                    f"record {i}: lock {lid} released while not held"
                )
            del held[lid]
    if held:
        raise TraceValidationError(f"trace ends holding locks {sorted(held)}")


def validate_traceset(ts: TraceSet) -> None:
    """Validate every per-processor trace plus cross-processor invariants.

    Cross-processor checks: processor indices are ``0..n-1`` exactly once;
    a lock id used by several processors must resolve to the same address
    on all of them; private references stay in the owning processor's
    region; every processor that locks a barrier... (barriers, if used,
    must be reached by all processors the same number of times).
    """
    procs = sorted(t.proc for t in ts.traces)
    if procs != list(range(ts.n_procs)):
        raise TraceValidationError(f"processor indices not contiguous: {procs}")

    global_lock_addr: dict[int, int] = {}
    barrier_counts: list[dict[int, int]] = []
    for t in ts.traces:
        validate_trace(t)
        rec = t.records
        kinds = rec["kind"]
        sync_idx = np.flatnonzero((kinds == LOCK) | (kinds == UNLOCK))
        for lid, a in zip(
            rec["arg"][sync_idx].tolist(), rec["addr"][sync_idx].tolist()
        ):
            prev = global_lock_addr.setdefault(lid, a)
            if prev != a:
                raise TraceValidationError(
                    f"lock {lid} has address {prev:#x} on one processor "
                    f"and {a:#x} on proc {t.proc}"
                )
        data = (kinds == READ) | (kinds == WRITE)
        addrs = rec["addr"][data].astype(np.int64)
        priv = addrs[addrs >= 0x8000_0000]
        for a in np.unique(priv // 0x0100_0000):
            owner = int(a) - (0x8000_0000 // 0x0100_0000)
            if owner != t.proc:
                raise TraceValidationError(
                    f"proc {t.proc} references proc {owner}'s private region"
                )
        counts: dict[int, int] = {}
        for bid in rec["arg"][kinds == BARRIER].tolist():
            counts[bid] = counts.get(bid, 0) + 1
        barrier_counts.append(counts)

    if any(barrier_counts):
        first = barrier_counts[0]
        for p, counts in enumerate(barrier_counts[1:], start=1):
            if counts != first:
                raise TraceValidationError(
                    f"barrier arrival counts differ between proc 0 ({first}) "
                    f"and proc {p} ({counts}); barriers would deadlock"
                )
