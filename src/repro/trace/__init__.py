"""MPTrace-like trace substrate: record model, address layout, builders,
statistics, (de)serialisation and validation."""

from .builder import TraceBuildError, TraceBuilder
from .cache import (
    TraceCache,
    TraceCacheStats,
    default_trace_cache_dir,
    resolve_trace_cache,
    trace_key,
)
from .encode import (
    FORMAT_VERSION,
    dumps_traceset,
    load_traceset,
    loads_traceset,
    save_traceset,
)
from .footprint import (
    ProcFootprint,
    SharingProfile,
    proc_footprint,
    sharing_profile,
)
from .inspect import dump_records, lock_event_log, summarize_traceset
from .layout import LINE_SIZE, AddressLayout
from .records import (
    BARRIER,
    IBLOCK,
    KIND_NAMES,
    LOCK,
    READ,
    RECORD_DTYPE,
    REP_STRIDE,
    UNLOCK,
    WRITE,
    Trace,
    TraceSet,
)
from .stats import LockHold, TraceStats, compute_trace_stats, lock_holds
from .validate import TraceValidationError, validate_trace, validate_traceset

__all__ = [
    "AddressLayout",
    "BARRIER",
    "FORMAT_VERSION",
    "IBLOCK",
    "KIND_NAMES",
    "LINE_SIZE",
    "LOCK",
    "LockHold",
    "ProcFootprint",
    "READ",
    "SharingProfile",
    "proc_footprint",
    "sharing_profile",
    "RECORD_DTYPE",
    "REP_STRIDE",
    "Trace",
    "TraceBuildError",
    "TraceBuilder",
    "TraceCache",
    "TraceCacheStats",
    "TraceSet",
    "TraceStats",
    "TraceValidationError",
    "UNLOCK",
    "WRITE",
    "compute_trace_stats",
    "default_trace_cache_dir",
    "dump_records",
    "dumps_traceset",
    "lock_event_log",
    "resolve_trace_cache",
    "summarize_traceset",
    "load_traceset",
    "loads_traceset",
    "lock_holds",
    "save_traceset",
    "trace_key",
    "validate_trace",
    "validate_traceset",
]
